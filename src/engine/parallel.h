// Morsel-driven parallel execution (Umbra-style) on a pool of simulated VCPU workers.
//
// Pipelines whose source is a table scan are split into morsels and scheduled by one of two
// policies. The default NUMA-aware work-stealing scheduler partitions the morsels up-front onto
// per-worker deques by the home node of their rows (the range partition the NumaMap assigns to
// the table's columns); each worker pops its own deque LIFO (cache-warm end) and, when it runs
// dry, steals FIFO from the back of the richest deque (ties to the lowest victim id), paying a
// fixed steal cost and carrying a steal flag into every sample taken during the stolen morsel.
// The legacy central policy dispatches morsels in table order to the worker whose clock is
// lowest (greedy earliest-finish, ties to the lowest id); order-sensitive pipelines (bare
// LIMIT, whose result is "the first N produced") always use it so results stay well-defined.
// Either way the schedule is a deterministic function of the query and the configuration.
// Every worker owns a full core model — its own TSC, cache hierarchy, branch predictor, shadow
// call stack, tag register, and PEBS-like sample buffer — and is pinned to a NUMA node of the
// run's topology (worker id modulo node count), so cross-node accesses are counted per worker
// and pay the remote-DRAM penalty. Host steps (hash-table creation, buffer allocation, sorting)
// and pipelines without a scannable source run on worker 0 while the others idle at a barrier.
// After the run the per-worker sample streams are merged by TSC into one stream whose samples
// carry `worker_id`, so every report works unchanged on parallel runs.
//
// Because the simulator interleaves workers at morsel granularity and each morsel runs to
// completion, all memory effects are serialized; results differ from sequential execution only
// in row order (stealing permutes which morsel appends output first), which every consumer
// treats as equivalent, and repeated runs are bit-identical. Only the simulated clocks (and
// therefore profiles and speedups) differ between the policies.
//
// The executor itself is exposed as the incremental ParallelRun below: QueryEngine's
// ExecuteParallel drives one run to completion, while the query service (src/service/)
// interleaves Step() calls of several runs to multiplex concurrent sessions over one pool.
#ifndef DFP_SRC_ENGINE_PARALLEL_H_
#define DFP_SRC_ENGINE_PARALLEL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/engine/exec_plan.h"
#include "src/engine/result.h"
#include "src/pmu/pmu.h"
#include "src/vcpu/cache.h"
#include "src/vcpu/cpu.h"
#include "src/vcpu/numa.h"

namespace dfp {

class Database;
struct PlanSlack;  // src/critpath/slack.h — expected-slack profile of one fingerprint.
struct StepSlack;

// How scan morsels are assigned to workers. See the file comment for the two policies.
enum class SchedulerPolicy : uint8_t {
  kCentral,       // Table-order dispatch to the earliest-free worker (locality-blind).
  kWorkStealing,  // Node-local deques, LIFO own pops, FIFO steals from the richest deque.
};

struct ParallelConfig {
  uint32_t workers = 4;
  // Tuples per morsel. 0 (the default) derives the size per pipeline from the optimizer's
  // cardinality estimate and the fixed per-morsel dispatch cost (see ResolveMorselRows);
  // a non-zero value forces that fixed size (Umbra uses adaptive sizes; we size per query).
  uint64_t morsel_rows = 0;
  SchedulerPolicy scheduler = SchedulerPolicy::kWorkStealing;
  // NUMA nodes of the simulated topology. 0 (the default) gives every worker its own node —
  // the most adversarial placement, and the one that makes locality visible at any pool size.
  // Values above `workers` are clamped so every node has at least one worker.
  uint32_t numa_nodes = 0;
  // Service shard this pool belongs to (1-based; 0 = unsharded). Stamped into every sample the
  // pool's workers take so fan-out attribution survives the coordinator's merge (stream v7).
  uint32_t shard_id = 0;
};

// Modeled fixed cost of dispatching one morsel (function call, cursor reload, scheduling).
// Used by the morsel sizing heuristic only; the simulator charges the real call costs.
inline constexpr uint64_t kMorselDispatchCycles = 600;

// Modeled fixed cost of one successful steal: the CAS on the victim's deque plus the cold
// cursor handoff. Charged to the thief on top of the morsel's own cycles.
inline constexpr uint64_t kMorselStealCycles = 150;

// Lower bound of the morsel size clamp, and the floor of endgame splitting: once fewer morsels
// remain pending than workers, each taken morsel is halved (remainder returned to its deque)
// until the pieces drop below twice this, so the scan's tail imbalance is bounded by ~one
// minimum-size morsel instead of one full-size morsel.
inline constexpr uint64_t kMinMorselRows = 64;

// Picks the morsel size for one scan pipeline: the configured fixed size if non-zero, otherwise
// large enough that the per-morsel dispatch cost stays ~1% of the estimated morsel work (cheap
// scans get chunkier morsels) but small enough that every worker still sees several morsels.
uint64_t ResolveMorselRows(const ParallelConfig& config, const PipelineArtifact& artifact,
                           uint64_t scan_rows, uint32_t workers);

// Counters of the slack-directed scheduling policy (zero when no slack profile is supplied,
// i.e. under plain FIFO-deal deques). Exposed per run and rolled into bench_service JSON.
struct SchedStats {
  uint64_t slack_ordered_scans = 0;  // Scans whose deques were ordered by an expected-slack hint.
  uint64_t slack_hits = 0;           // Dealt morsels that found a populated hint bucket.
  uint64_t deferred_morsels = 0;     // Morsels pushed toward the steal end (above-min slack).
  uint64_t slack_steals = 0;         // Steals whose victim was chosen by least head-morsel slack.
};

// Per-worker execution metrics of the most recent ExecuteParallel().
struct WorkerMetrics {
  uint32_t worker_id = 0;
  uint8_t node = 0;          // NUMA node this worker is pinned to.
  uint64_t busy_cycles = 0;  // Cycles spent executing morsels/host steps.
  uint64_t idle_cycles = 0;  // Cycles spent waiting at barriers.
  uint64_t morsels = 0;      // Work items executed (morsels + sequential pipeline runs).
  uint64_t steals = 0;       // Morsels this worker stole from another worker's deque.
  uint64_t samples = 0;      // PMU samples taken on this worker.
  // Measured cost of this worker's sample buffer (capture + flush cycles actually charged to
  // its clock) — what the adaptive sampling governor reads.
  SamplingOverhead sampling_overhead;
  PmuCounters counters;
  CacheStats cache_stats;
  CpuStats cpu_stats;
  NumaStats numa_stats;
};

// Scratch regions a run allocates from. QueryEngine::ExecuteParallel passes the database's
// shared regions; the query service passes a session's private region set so concurrent
// sessions never interfere through memory.
struct ScratchRegions {
  uint32_t hashtables = 0;
  uint32_t state = 0;
  uint32_t output = 0;
};

// One morsel-driven execution of a compiled parallel query, advanced one work unit at a time.
// A work unit is a host step, one morsel, a sequential pipeline run, or a sort; barriers are
// applied when an exec step completes. The unit sequence and every worker's clock depend only
// on the query, the configuration, and the region contents — not on how Step() calls are
// interleaved with other runs, which is what makes service sessions profile-isolated.
class ParallelRun {
 public:
  // `sampling` may be null (no PMU sampling). `session_id` is stamped into every sample taken
  // by this run's workers (see Sample::session_id). `slack` may be null (FIFO deques); when
  // set, it is the fingerprint's expected-slack profile from prior executions and the run
  // orders its deques and picks steal victims by it — zero-slack (critical-path) morsels run
  // first, high-slack work is deferred to thieves. The profile only permutes the schedule,
  // never the morsel set, so results stay byte-identical to the unhinted run.
  ParallelRun(Database& db, CompiledQuery& query, const ParallelConfig& config,
              ScratchRegions regions, const SamplingConfig* sampling, uint32_t session_id = 0,
              const PlanSlack* slack = nullptr);
  ~ParallelRun();

  bool done() const { return step_idx_ >= query_.exec_steps.size(); }

  // Executes the next work unit. Returns the worker it ran on and its duration in cycles
  // (0 cycles when only bookkeeping happened, e.g. an empty scan was skipped).
  struct Unit {
    uint32_t worker = 0;
    uint64_t cycles = 0;
  };
  Unit Step();

  // Simulated wall clock so far: the maximum TSC across the pool.
  uint64_t WallCycles() const;

  // After done(): reads the result rows and tuple counters back and computes the merged
  // metrics. Must be called exactly once.
  Result Finish();

  // Valid after Finish().
  const std::vector<WorkerMetrics>& worker_metrics() const { return worker_metrics_; }
  const PmuCounters& merged_counters() const { return merged_counters_; }
  const CacheStats& merged_cache_stats() const { return merged_cache_stats_; }
  const CpuStats& merged_cpu_stats() const { return merged_cpu_stats_; }
  const NumaStats& merged_numa_stats() const { return merged_numa_stats_; }
  // Measured sampling cost summed over all worker buffers, and the pool's total busy cycles —
  // the measured-overhead-per-executed-cycle pair the sampling governor regulates on.
  const SamplingOverhead& merged_sampling_overhead() const { return merged_sampling_overhead_; }
  uint64_t total_busy_cycles() const { return total_busy_cycles_; }
  // Topology of this run (valid from construction).
  const NumaMap& numa_map() const { return numa_; }
  // The per-worker sample streams merged by (tsc, worker id); empty without sampling.
  std::vector<Sample> TakeMergedSamples() { return std::move(merged_samples_); }

  // Task-boundary records of every work unit executed so far, in execution order, with
  // per-task PMU counter deltas — the substrate the critical-path subsystem (src/critpath/)
  // builds its DAG from, and what v5 sample streams serialize as `task` lines. Collected
  // unconditionally: the records are a byproduct of the schedule, not of sampling.
  const std::vector<TaskBoundary>& task_boundaries() const { return task_boundaries_; }
  std::vector<TaskBoundary> TakeTaskBoundaries() { return std::move(task_boundaries_); }

  // Slack-policy counters of this run (all zero when constructed without a slack profile).
  const SchedStats& sched_stats() const { return sched_stats_; }

 private:
  struct Worker;
  struct Morsel {
    uint64_t begin = 0;
    uint64_t end = 0;
  };

  Worker& NextWorker();
  void Barrier();
  // Runs `body` on `w` as one task: re-arms the worker's sampling period for the task's
  // pipeline, charges the elapsed cycles to its busy time, and records a TaskBoundary (with
  // PMU counter deltas) into `task_boundaries_`. `boundary` arrives with kind/step/pipeline/
  // morsel/stolen prefilled; timestamps, worker id, and counters are filled here.
  template <typename Body>
  Unit RunOn(Worker& w, TaskBoundary boundary, const Body& body);
  void BeginScan(const PipelineArtifact& artifact, const PipelineStep& source);
  // Pops the next morsel for `thief` under work stealing: its own deque LIFO, otherwise the
  // richest victim FIFO. Returns false when every deque is empty.
  bool TakeMorsel(uint32_t thief, Morsel* morsel, bool* stolen);

  Database& db_;
  CompiledQuery& query_;
  ParallelConfig config_;
  ScratchRegions regions_;
  NumaMap numa_;
  std::vector<std::unique_ptr<Worker>> workers_;
  VAddr state_ = 0;
  uint32_t kernel_exec_ = 0;

  // Cursor over the execution schedule.
  size_t step_idx_ = 0;
  bool in_scan_ = false;
  bool scan_stealing_ = false;  // This scan uses the deques (vs central table-order dispatch).
  const PlanSlack* slack_ = nullptr;       // Whole-plan profile (may be null).
  const StepSlack* scan_slack_ = nullptr;  // Current scan's hint; null = FIFO deal order.
  SchedStats sched_stats_;
  uint64_t scan_rows_ = 0;
  uint64_t scan_next_ = 0;
  uint64_t scan_morsel_rows_ = 0;
  std::vector<std::deque<Morsel>> deques_;  // One per worker; filled at scan entry.
  uint64_t pending_morsels_ = 0;
  std::vector<uint32_t> node_rr_;  // Round-robin cursor per node for deque filling.

  std::vector<WorkerMetrics> worker_metrics_;
  PmuCounters merged_counters_;
  CacheStats merged_cache_stats_;
  CpuStats merged_cpu_stats_;
  NumaStats merged_numa_stats_;
  SamplingOverhead merged_sampling_overhead_;
  uint64_t total_busy_cycles_ = 0;
  std::vector<Sample> merged_samples_;
  std::vector<TaskBoundary> task_boundaries_;
  // Per-pipeline sampling periods (from SamplingConfig::pipeline_periods) and the uniform
  // fallback period, applied per task in RunOn.
  std::vector<uint64_t> pipeline_periods_;
  uint64_t base_period_ = 0;
  bool sampling_enabled_ = false;
  bool finished_ = false;
};

}  // namespace dfp

#endif  // DFP_SRC_ENGINE_PARALLEL_H_
