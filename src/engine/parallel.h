// Morsel-driven parallel execution (Umbra-style) on a pool of simulated VCPU workers.
//
// Pipelines whose source is a table scan are split into fixed-size morsels; each morsel is
// dispatched to the worker whose simulated clock is lowest (greedy earliest-finish scheduling,
// ties broken by worker id), so the schedule is a deterministic function of the query and the
// configuration. Every worker owns a full core model — its own TSC, cache hierarchy, branch
// predictor, shadow call stack, tag register, and PEBS-like sample buffer — and runs the same
// compiled machine code over its morsels. Host steps (hash-table creation, buffer allocation,
// sorting) and pipelines without a scannable source run on worker 0 while the others idle at a
// barrier. After the run the per-worker sample streams are merged by TSC into one stream whose
// samples carry `worker_id`, so every report works unchanged on parallel runs.
//
// Because the simulator interleaves workers at morsel granularity and morsels are dispatched in
// table order, all memory effects are serialized in the same order a single-threaded run
// produces: results are bit-identical to sequential execution and repeated runs are
// deterministic. Only the simulated clocks (and therefore profiles and speedups) differ.
#ifndef DFP_SRC_ENGINE_PARALLEL_H_
#define DFP_SRC_ENGINE_PARALLEL_H_

#include <cstdint>

#include "src/pmu/pmu.h"
#include "src/vcpu/cache.h"
#include "src/vcpu/cpu.h"

namespace dfp {

struct ParallelConfig {
  uint32_t workers = 4;
  uint64_t morsel_rows = 1024;  // Tuples per morsel (Umbra uses adaptive sizes; we use fixed).
};

// Per-worker execution metrics of the most recent ExecuteParallel().
struct WorkerMetrics {
  uint32_t worker_id = 0;
  uint64_t busy_cycles = 0;  // Cycles spent executing morsels/host steps.
  uint64_t idle_cycles = 0;  // Cycles spent waiting at barriers.
  uint64_t morsels = 0;      // Work items executed (morsels + sequential pipeline runs).
  uint64_t samples = 0;      // PMU samples taken on this worker.
  PmuCounters counters;
  CacheStats cache_stats;
  CpuStats cpu_stats;
};

}  // namespace dfp

#endif  // DFP_SRC_ENGINE_PARALLEL_H_
