// Materialized query results, read back host-side from the output buffer.
#ifndef DFP_SRC_ENGINE_RESULT_H_
#define DFP_SRC_ENGINE_RESULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/plan/physical.h"
#include "src/storage/stringheap.h"

namespace dfp {

class Result {
 public:
  Result() = default;
  Result(std::vector<OutputColumn> schema, std::vector<std::vector<int64_t>> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const std::vector<OutputColumn>& schema() const { return schema_; }
  const std::vector<std::vector<int64_t>>& rows() const { return rows_; }
  size_t row_count() const { return rows_.size(); }

  // Cell payload.
  int64_t at(size_t row, size_t column) const { return rows_[row][column]; }

  // Renders the cell using its column type ("12.34", "1995-04-01", interned string bytes).
  std::string CellToString(const StringHeap& strings, size_t row, size_t column) const;

  // Renders up to `max_rows` rows as an aligned table.
  std::string ToString(const StringHeap& strings, size_t max_rows = 20) const;

  // Order-sensitive or order-insensitive comparison with tolerance for doubles. On mismatch
  // returns false and describes the difference in `diff` (if non-null).
  static bool Equivalent(const Result& a, const Result& b, bool ordered, std::string* diff);

 private:
  std::vector<OutputColumn> schema_;
  std::vector<std::vector<int64_t>> rows_;
};

}  // namespace dfp

#endif  // DFP_SRC_ENGINE_RESULT_H_
