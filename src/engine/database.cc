#include "src/engine/database.h"

#include "src/util/check.h"

namespace dfp {
namespace {

uint64_t TotalBytes(const DatabaseConfig& config) {
  return config.columns_bytes + config.strings_bytes + config.hashtables_bytes +
         config.state_bytes + config.output_bytes + config.extra_bytes +
         (1 << 16) /* reserved head room */;
}

}  // namespace

Database::Database(DatabaseConfig config) : config_(config), mem_(TotalBytes(config)) {
  columns_region_ = mem_.CreateRegion("columns", config.columns_bytes);
  strings_region_ = mem_.CreateRegion("strings", config.strings_bytes);
  hashtables_region_ = mem_.CreateRegion("hashtables", config.hashtables_bytes);
  state_region_ = mem_.CreateRegion("state", config.state_bytes);
  output_region_ = mem_.CreateRegion("output", config.output_bytes);
  strings_ = std::make_unique<StringHeap>(&mem_, strings_region_);
  runtime_ = std::make_unique<Runtime>(&mem_, &code_map_, hashtables_region_);
}

void Database::AddTable(Table table) {
  std::string name = table.name();
  DFP_CHECK(tables_.emplace(std::move(name), std::move(table)).second);
  ++catalog_version_;
}

const Table& Database::table(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw Error("unknown table: '" + name + "'");
  }
  return it->second;
}

void Database::ResetScratch() {
  mem_.ResetRegion(hashtables_region_);
  mem_.ResetRegion(state_region_);
  mem_.ResetRegion(output_region_);
}

}  // namespace dfp
