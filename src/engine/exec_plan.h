// Pipelines of tasks (lowering step 1) and the execution schedule of a compiled query.
//
// The dataflow graph is split at its tuple materialization points into pipelines; each operator
// contributes one or more tasks to the pipelines it participates in (a join contributes a Build
// task to one pipeline and a Probe task to another). Task creation populates the Tagging
// Dictionary's Log A through the operator Abstraction Tracker.
#ifndef DFP_SRC_ENGINE_EXEC_PLAN_H_
#define DFP_SRC_ENGINE_EXEC_PLAN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/backend/compiler.h"
#include "src/backend/emitter.h"
#include "src/ir/instr.h"
#include "src/ir/printer.h"
#include "src/plan/physical.h"
#include "src/profiling/tagging_dictionary.h"

namespace dfp {

struct PipelineStep {
  enum class Role : uint8_t {
    kScanSource,
    kFilter,
    kMap,
    kBuild,              // Hash join build side.
    kProbe,              // Hash join probe (inner/semi/anti via op->join_type).
    kGroupByAggregate,   // Group-by input side: lookup-or-insert + aggregate update.
    kGroupScanSource,    // Group-by output side: scan the hash table.
    kGroupJoinBuild,     // GroupJoin build side: insert groups.
    kGroupJoinProbe,     // GroupJoin probe side: lookup + aggregate update.
    kGroupJoinScanSource,
    kSortMaterialize,
    kSortScanSource,
    kLimit,
    kOutput,             // ResultSink materialization.
  };

  Role role = Role::kScanSource;
  PhysicalOp* op = nullptr;
  TaskId task = kNoTask;
  // GroupJoin probe only: the aggregation section's task (the probe section uses `task`);
  // this is how the fused operator's sections stay distinguishable (paper Section 5.4).
  TaskId task2 = kNoTask;
};

struct Pipeline {
  uint32_t id = 0;
  std::string name;
  std::vector<PipelineStep> steps;  // steps[0] is the source.
};

// Purposes of per-operator state slots (8 bytes each, in the query state block).
enum class StateSlot : uint8_t {
  kHashTable,    // Hash table address (join/group-by/groupjoin).
  kBufferBase,   // Sort buffer base.
  kBufferCount,  // Sort buffer row count.
  kLimitCounter,
  kOutBase,   // Result buffer base.
  kOutCount,  // Result row count.
};

// One host-driver action of the execution schedule.
struct ExecStep {
  enum class Kind : uint8_t { kCreateHashTable, kAllocBuffer, kRunPipeline, kSort };

  Kind kind = Kind::kRunPipeline;
  const PhysicalOp* op = nullptr;
  uint32_t pipeline = 0;  // kRunPipeline.
  // kCreateHashTable.
  uint64_t ht_capacity = 0;
  uint64_t ht_payload_bytes = 0;
  // kAllocBuffer.
  uint64_t buffer_bytes = 0;
  // kSort.
  uint32_t sort_spec = 0;
  // State slot offsets this step writes/reads.
  uint32_t state_offset0 = 0;  // HT addr / buffer base.
  uint32_t state_offset1 = 0;  // Buffer count.
};

// Everything produced by compiling one query.
struct PipelineArtifact {
  Pipeline pipeline;
  uint32_t function = 0;  // Global function id of the compiled pipeline.
  uint32_t segment = 0;
  IrFunction ir;  // Optimized VIR, retained for annotated listings (Figure 6b).
  IrListing listing;
  CompileStats stats;
  // Relocation table for literal-parameterized reuse (filled when compiled with
  // CodegenOptions::literals): every machine-code position holding a plan literal.
  std::vector<LiteralSite> literal_sites;

  explicit PipelineArtifact(IrFunction ir_function) : ir(std::move(ir_function)) {}
};

class ProfilingSession;

struct CompiledQuery {
  PhysicalOpPtr plan;
  std::vector<PipelineArtifact> pipelines;
  std::vector<ExecStep> exec_steps;
  uint64_t state_bytes = 0;
  std::vector<OutputColumn> output_schema;
  uint64_t output_row_size = 0;
  uint64_t output_bound_rows = 0;
  uint32_t out_base_offset = 0;
  uint32_t out_count_offset = 0;
  ProfilingSession* session = nullptr;  // Borrowed; may be null.
  std::string name;
  // Compiled in morsel-parallel mode (CodegenOptions::parallel): pipeline functions take
  // (state, morsel_begin, morsel_end) and must run through QueryEngine::ExecuteParallel.
  bool parallel = false;

  // Per-task tuple counter state slots (filled when compiled with count_tuples) and the counts
  // read back after the most recent execution.
  std::vector<std::pair<TaskId, uint32_t>> tuple_count_slots;
  std::unordered_map<TaskId, uint64_t> tuple_counts;

  // Total generated VIR instructions (storage experiment, Section 6.2).
  uint64_t TotalIrInstrs() const {
    uint64_t total = 0;
    for (const PipelineArtifact& artifact : pipelines) {
      total += artifact.stats.ir_instrs;
    }
    return total;
  }
};

}  // namespace dfp

#endif  // DFP_SRC_ENGINE_EXEC_PLAN_H_
