// Morsel-driven parallel execution: QueryEngine::ExecuteParallel and the worker pool.
#include <algorithm>
#include <memory>
#include <vector>

#include "src/engine/query_engine.h"
#include "src/runtime/hashtable.h"
#include "src/util/check.h"
#include "src/vcpu/cpu.h"

namespace dfp {
namespace {

// One simulated core: its own PMU (sample buffer, counters) and CPU (TSC, caches, predictor,
// shadow call stack, tag register), sharing the database's memory and code map.
struct Worker {
  Worker(Database& db, uint32_t id) : pmu(db.pmu_costs()), cpu(db.mem(), db.code_map(), pmu) {
    cpu.set_worker_id(id);
  }

  Pmu pmu;
  Cpu cpu;
  uint64_t busy_cycles = 0;
  uint64_t work_items = 0;
};

}  // namespace

Result QueryEngine::ExecuteParallel(CompiledQuery& query, const ParallelConfig& config) {
  DFP_CHECK(query.parallel);  // Must be compiled with CodegenOptions::parallel.
  DFP_CHECK(config.workers >= 1 && config.workers <= 64);
  DFP_CHECK(config.morsel_rows >= 1);

  db_->ResetScratch();
  ProfilingSession* session = query.session;

  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(config.workers);
  for (uint32_t i = 0; i < config.workers; ++i) {
    workers.push_back(std::make_unique<Worker>(*db_, i));
    if (session != nullptr) {
      workers.back()->pmu.Configure(session->MakeSamplingConfig());
    }
  }

  VMem& mem = db_->mem();
  const VAddr state = mem.Alloc(db_->state_region(), std::max<uint64_t>(8, query.state_bytes));
  const uint32_t kernel_exec = db_->runtime().kernel_exec_segment();

  // Runs `fn` on `w`, charging the elapsed cycles to its busy time.
  auto run_on = [](Worker& w, auto&& body) {
    const uint64_t before = w.cpu.tsc();
    body(w);
    w.busy_cycles += w.cpu.tsc() - before;
    ++w.work_items;
  };
  // The worker that would start new work earliest; ties go to the lowest id, which makes the
  // morsel schedule deterministic.
  auto next_worker = [&]() -> Worker& {
    Worker* best = workers[0].get();
    for (const auto& w : workers) {
      if (w->cpu.tsc() < best->cpu.tsc()) {
        best = w.get();
      }
    }
    return *best;
  };
  // Synchronizes all workers to the slowest clock (idle wait at a pipeline barrier).
  auto barrier = [&] {
    uint64_t max_tsc = 0;
    for (const auto& w : workers) {
      max_tsc = std::max(max_tsc, w->cpu.tsc());
    }
    for (const auto& w : workers) {
      w->cpu.AddCycles(max_tsc - w->cpu.tsc());
    }
  };

  for (const ExecStep& step : query.exec_steps) {
    switch (step.kind) {
      case ExecStep::Kind::kCreateHashTable: {
        run_on(*workers[0], [&](Worker& w) {
          VAddr table = CreateHashTable(mem, db_->hashtables_region(), step.ht_capacity,
                                        step.ht_payload_bytes);
          mem.Write<uint64_t>(state + step.state_offset0, table);
          w.cpu.HostWork(kernel_exec, 200 + step.ht_capacity / 16);
        });
        break;
      }
      case ExecStep::Kind::kAllocBuffer: {
        run_on(*workers[0], [&](Worker& w) {
          VAddr buffer = mem.Alloc(db_->output_region(), step.buffer_bytes);
          mem.Write<uint64_t>(state + step.state_offset0, buffer);
          mem.Write<uint64_t>(state + step.state_offset1, 0);
          w.cpu.HostWork(kernel_exec, 100 + step.buffer_bytes / 4096);
        });
        break;
      }
      case ExecStep::Kind::kRunPipeline: {
        const PipelineArtifact& artifact = query.pipelines[step.pipeline];
        const PipelineStep& source = artifact.pipeline.steps[0];
        if (source.role == PipelineStep::Role::kScanSource) {
          // Split the scan into morsels; dispatch in table order to the earliest-free worker.
          // Dispatch order serializes the morsels' memory effects identically to a sequential
          // scan, so results match single-threaded execution exactly.
          const uint64_t rows = source.op->table->row_count();
          for (uint64_t begin = 0; begin < rows; begin += config.morsel_rows) {
            const uint64_t end = std::min(rows, begin + config.morsel_rows);
            run_on(next_worker(), [&](Worker& w) {
              const uint64_t args[] = {state, begin, end};
              w.cpu.CallFunction(artifact.function, args);
            });
          }
        } else {
          // Pipelines over intermediate results (group scans, sort scans) run sequentially.
          run_on(*workers[0], [&](Worker& w) {
            const uint64_t args[] = {state, 0, 0};
            w.cpu.CallFunction(artifact.function, args);
          });
        }
        break;
      }
      case ExecStep::Kind::kSort: {
        run_on(*workers[0], [&](Worker& w) {
          const uint64_t buffer = mem.Read<uint64_t>(state + step.state_offset0);
          const uint64_t rows = mem.Read<uint64_t>(state + step.state_offset1);
          const uint64_t args[] = {buffer, rows, step.sort_spec};
          w.cpu.CallFunction(db_->runtime().sort_fn(), args);
        });
        break;
      }
    }
    barrier();
  }

  // Read the result rows back host-side (same layout as the sequential engine).
  const VAddr out_base = mem.Read<uint64_t>(state + query.out_base_offset);
  const uint64_t out_count = mem.Read<uint64_t>(state + query.out_count_offset);
  const size_t columns = query.output_schema.size();
  std::vector<std::vector<int64_t>> rows;
  rows.reserve(out_count);
  for (uint64_t r = 0; r < out_count; ++r) {
    std::vector<int64_t> row(columns);
    for (size_t c = 0; c < columns; ++c) {
      row[c] = mem.Read<int64_t>(out_base + r * query.output_row_size + c * 8);
    }
    rows.push_back(std::move(row));
  }

  query.tuple_counts.clear();
  for (const auto& [task, offset] : query.tuple_count_slots) {
    query.tuple_counts[task] = mem.Read<uint64_t>(state + offset);
  }

  // Aggregate metrics: wall clock is the slowest worker (all equal after the final barrier);
  // counters and traffic are summed across the pool.
  last_cycles_ = workers[0]->cpu.tsc();
  last_counters_ = PmuCounters();
  last_cache_stats_ = CacheStats();
  last_cpu_stats_ = CpuStats();
  last_worker_metrics_.clear();
  std::vector<Sample> merged;
  for (uint32_t i = 0; i < config.workers; ++i) {
    Worker& w = *workers[i];
    WorkerMetrics metrics;
    metrics.worker_id = i;
    metrics.busy_cycles = w.busy_cycles;
    metrics.idle_cycles = w.cpu.tsc() - w.busy_cycles;
    metrics.morsels = w.work_items;
    metrics.samples = w.pmu.samples().size();
    metrics.counters = w.pmu.counters();
    metrics.cache_stats = w.cpu.cache().stats();
    metrics.cpu_stats = w.cpu.stats();
    for (int e = 0; e < kPmuEventCount; ++e) {
      last_counters_.values[e] += metrics.counters.values[e];
    }
    last_cache_stats_.accesses += metrics.cache_stats.accesses;
    last_cache_stats_.l1_misses += metrics.cache_stats.l1_misses;
    last_cache_stats_.l2_misses += metrics.cache_stats.l2_misses;
    last_cache_stats_.l3_misses += metrics.cache_stats.l3_misses;
    last_cpu_stats_.instructions += metrics.cpu_stats.instructions;
    last_cpu_stats_.calls += metrics.cpu_stats.calls;
    last_cpu_stats_.max_stack_depth =
        std::max(last_cpu_stats_.max_stack_depth, metrics.cpu_stats.max_stack_depth);
    last_worker_metrics_.push_back(metrics);
    if (session != nullptr) {
      std::vector<Sample> samples = w.pmu.TakeSamples();
      merged.insert(merged.end(), std::make_move_iterator(samples.begin()),
                    std::make_move_iterator(samples.end()));
    }
  }
  if (session != nullptr) {
    // Merge the per-worker streams into one timeline; each stream is already TSC-sorted, so
    // a stable sort by TSC keeps ties ordered by worker id.
    std::stable_sort(merged.begin(), merged.end(), [](const Sample& a, const Sample& b) {
      return a.tsc != b.tsc ? a.tsc < b.tsc : a.worker_id < b.worker_id;
    });
    session->RecordExecution(std::move(merged), last_cycles_, last_counters_, config.workers);
  }
  return Result(query.output_schema, std::move(rows));
}

}  // namespace dfp
