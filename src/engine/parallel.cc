// Morsel-driven parallel execution: the incremental ParallelRun executor and
// QueryEngine::ExecuteParallel driving it to completion.
#include <algorithm>
#include <memory>
#include <vector>

#include "src/critpath/slack.h"
#include "src/engine/query_engine.h"
#include "src/runtime/hashtable.h"
#include "src/util/check.h"
#include "src/vcpu/cpu.h"

namespace dfp {

uint64_t ResolveMorselRows(const ParallelConfig& config, const PipelineArtifact& artifact,
                           uint64_t scan_rows, uint32_t workers) {
  if (config.morsel_rows != 0) {
    return config.morsel_rows;
  }
  // The optimizer's estimate sizes the morsels; the true row count only bounds them below.
  const double estimated = artifact.pipeline.steps[0].op->estimated_rows;
  const uint64_t est_rows =
      estimated > 0 ? static_cast<uint64_t>(estimated) : std::max<uint64_t>(1, scan_rows);
  // Per-row work proxy: the pipeline function is almost entirely its row loop, so its machine
  // instruction count approximates the per-row path length in cycles.
  const uint64_t per_row_cycles = std::max<uint64_t>(8, artifact.stats.machine_instrs / 2);
  // Large enough that the fixed dispatch cost stays ~1% of the morsel's work...
  const uint64_t amortize = kMorselDispatchCycles * 100 / per_row_cycles;
  // ...and small enough that each worker sees a healthy number of morsels to balance over.
  const uint64_t balance = std::max<uint64_t>(1, est_rows / (16ull * workers));
  uint64_t rows = std::max(amortize, balance);
  // Guarantee several morsels per worker even when amortization asks for chunkier ones: the
  // tail imbalance of a scan is about one morsel, so ~8 morsels/worker bounds it near 1/8.
  rows = std::min(rows, std::max<uint64_t>(1, est_rows / (8ull * workers)));
  return std::clamp<uint64_t>(rows, kMinMorselRows, 1ull << 16);
}

namespace {

// The NUMA topology of one run: nodes default to one per worker and never exceed the pool size,
// so every node has at least one worker to own its deque.
NumaConfig MakeNumaConfig(const ParallelConfig& config) {
  NumaConfig numa;
  numa.nodes = config.numa_nodes != 0 ? config.numa_nodes : config.workers;
  numa.nodes = std::min(numa.nodes, config.workers);
  return numa;
}

// Bare LIMIT pipelines produce "the first N tuples the scan emits": their result depends on
// morsel completion order, so they must keep the table-order central dispatch. (LIMIT under a
// sort runs on a sequential sort-scan pipeline and never reaches the morsel scheduler.)
bool OrderSensitive(const PipelineArtifact& artifact) {
  for (const PipelineStep& step : artifact.pipeline.steps) {
    if (step.role == PipelineStep::Role::kLimit) {
      return true;
    }
  }
  return false;
}


}  // namespace

// One simulated core: its own PMU (sample buffer, counters) and CPU (TSC, caches, predictor,
// shadow call stack, tag register), sharing the database's memory and code map.
struct ParallelRun::Worker {
  Worker(Database& db, uint32_t id, uint32_t session_id)
      : pmu(db.pmu_costs()), cpu(db.mem(), db.code_map(), pmu) {
    cpu.set_worker_id(id);
    cpu.set_session_id(session_id);
  }

  Pmu pmu;
  Cpu cpu;
  uint64_t busy_cycles = 0;
  uint64_t work_items = 0;
  uint64_t steals = 0;
};

ParallelRun::ParallelRun(Database& db, CompiledQuery& query, const ParallelConfig& config,
                         ScratchRegions regions, const SamplingConfig* sampling,
                         uint32_t session_id, const PlanSlack* slack)
    : db_(db), query_(query), config_(config), regions_(regions),
      numa_(MakeNumaConfig(config)), slack_(slack) {
  DFP_CHECK(query.parallel);  // Must be compiled with CodegenOptions::parallel.
  DFP_CHECK(config.workers >= 1 && config.workers <= 64);

  // Overlay the node map: base table columns are range-partitioned (first-touch placement of
  // morsel-driven loading), this run's scratch regions are chunk-interleaved per-node stripes.
  numa_.AddPartitionedExtents(db.mem());
  for (uint32_t region : {regions_.hashtables, regions_.state, regions_.output}) {
    const MemRegion& r = db.mem().region(region);
    numa_.AddInterleaved(r.base, r.size);
  }
  numa_.Seal();

  workers_.reserve(config.workers);
  for (uint32_t i = 0; i < config.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(db, i, session_id));
    workers_.back()->cpu.set_shard_id(config.shard_id);
    workers_.back()->cpu.ConfigureNuma(&numa_, static_cast<uint8_t>(i % numa_.nodes()));
    if (sampling != nullptr) {
      workers_.back()->pmu.Configure(*sampling);
    }
  }
  deques_.resize(config.workers);
  node_rr_.resize(numa_.nodes(), 0);
  if (sampling != nullptr && sampling->enabled) {
    sampling_enabled_ = true;
    base_period_ = sampling->period;
    pipeline_periods_ = sampling->pipeline_periods;
  }
  state_ = db.mem().Alloc(regions_.state, std::max<uint64_t>(8, query.state_bytes));
  kernel_exec_ = db.runtime().kernel_exec_segment();
}

ParallelRun::~ParallelRun() = default;

// The worker that would start new work earliest; ties go to the lowest id, which makes the
// morsel schedule deterministic.
ParallelRun::Worker& ParallelRun::NextWorker() {
  Worker* best = workers_[0].get();
  for (const auto& w : workers_) {
    if (w->cpu.tsc() < best->cpu.tsc()) {
      best = w.get();
    }
  }
  return *best;
}

// Synchronizes all workers to the slowest clock (idle wait at a pipeline barrier).
void ParallelRun::Barrier() {
  uint64_t max_tsc = 0;
  for (const auto& w : workers_) {
    max_tsc = std::max(max_tsc, w->cpu.tsc());
  }
  for (const auto& w : workers_) {
    w->cpu.AddCycles(max_tsc - w->cpu.tsc());
  }
}

// Runs `body` on `w` as one task, charging the elapsed cycles to its busy time and recording
// the task's boundary with PMU counter deltas (see the declaration comment).
template <typename Body>
ParallelRun::Unit ParallelRun::RunOn(Worker& w, TaskBoundary boundary, const Body& body) {
  if (sampling_enabled_ && !pipeline_periods_.empty()) {
    // Per-pipeline periods: pipeline tasks use their pipeline's entry (0 = keep the base),
    // host steps and sorts sample at the base period.
    uint64_t period = base_period_;
    if (boundary.pipeline != kNoPipeline && boundary.pipeline < pipeline_periods_.size() &&
        pipeline_periods_[boundary.pipeline] != 0) {
      period = pipeline_periods_[boundary.pipeline];
    }
    w.pmu.set_period(period);
  }
  const PmuCounters before_counters = w.pmu.counters();
  const uint64_t before = w.cpu.tsc();
  body(w);
  const uint64_t elapsed = w.cpu.tsc() - before;
  w.busy_cycles += elapsed;
  ++w.work_items;
  boundary.start_tsc = before;
  boundary.end_tsc = w.cpu.tsc();
  boundary.worker_id = w.cpu.worker_id();
  const PmuCounters& after = w.pmu.counters();
  auto delta = [&](PmuEvent e) { return after[e] - before_counters[e]; };
  boundary.instructions = delta(PmuEvent::kInstrRetired);
  boundary.loads = delta(PmuEvent::kLoads);
  boundary.l1_misses = delta(PmuEvent::kL1Miss);
  boundary.l2_misses = delta(PmuEvent::kL2Miss);
  boundary.l3_misses = delta(PmuEvent::kL3Miss);
  boundary.remote_dram = delta(PmuEvent::kRemoteDram);
  task_boundaries_.push_back(boundary);
  Unit unit;
  unit.worker = w.cpu.worker_id();
  unit.cycles = elapsed;
  return unit;
}

uint64_t ParallelRun::WallCycles() const {
  uint64_t max_tsc = 0;
  for (const auto& w : workers_) {
    max_tsc = std::max(max_tsc, w->cpu.tsc());
  }
  return max_tsc;
}

// Opens a scan: sizes its morsels and, under work stealing, deals them onto the deques of the
// workers pinned to each morsel's home node. The home node of a morsel is the node its first
// row's column data lives on (the same `row * nodes / rows` range partition NumaMap applies to
// the column arrays), so popping the own deque touches only local memory. Nodes with several
// workers deal round-robin among them; the cursor persists across scans so repeated small scans
// don't always load the node's first worker.
void ParallelRun::BeginScan(const PipelineArtifact& artifact, const PipelineStep& source) {
  in_scan_ = true;
  scan_rows_ = source.op->table->row_count();
  scan_next_ = 0;
  scan_morsel_rows_ = ResolveMorselRows(config_, artifact, scan_rows_, config_.workers);
  scan_stealing_ =
      config_.scheduler == SchedulerPolicy::kWorkStealing && !OrderSensitive(artifact);
  scan_slack_ = nullptr;
  if (!scan_stealing_) {
    return;
  }
  pending_morsels_ = 0;
  const uint32_t nodes = numa_.nodes();
  // The deal rule is the canonical range partition regardless of any placement override: a
  // repair moves DATA toward the workers that consume it, it never moves the consumers. If the
  // deal chased the placement map, any consistently-applied map — including a deliberately bad
  // one — would realign consumption with the data and measure as local, hiding regressions
  // from the guard.
  for (uint64_t begin = 0; begin < scan_rows_; begin += scan_morsel_rows_) {
    const uint64_t end = std::min(scan_rows_, begin + scan_morsel_rows_);
    const uint32_t node = static_cast<uint32_t>(begin * nodes / scan_rows_);
    // Workers pinned to `node` are {node, node + nodes, node + 2*nodes, ...}.
    const uint32_t on_node = (config_.workers - node - 1) / nodes + 1;
    const uint32_t owner = node + (node_rr_[node]++ % on_node) * nodes;
    deques_[owner].push_back(Morsel{begin, end});
    ++pending_morsels_;
  }
  // Slack-directed ordering: sort each deque by expected slack descending, so the back — the
  // end the owner pops LIFO — holds the least-slack (critical-path) morsels and the front —
  // the steal end — holds the deferrable high-slack work. Under contention the thieves absorb
  // exactly the work whose delay the prior runs' DAGs say the barrier can afford. stable_sort
  // keeps equal-slack morsels in deal order, so the schedule stays deterministic even when the
  // profile is flat.
  if (slack_ == nullptr) {
    return;
  }
  const uint32_t pipeline = query_.exec_steps[step_idx_].pipeline;
  const StepSlack* hint = slack_->FindStep(static_cast<uint32_t>(step_idx_), pipeline);
  if (hint == nullptr) {
    return;
  }
  scan_slack_ = hint;
  ++sched_stats_.slack_ordered_scans;
  for (std::deque<Morsel>& deque : deques_) {
    if (deque.empty()) {
      continue;
    }
    std::stable_sort(deque.begin(), deque.end(), [&](const Morsel& a, const Morsel& b) {
      return hint->SlackAt(a.begin) > hint->SlackAt(b.begin);
    });
    uint64_t min_slack = UINT64_MAX;
    for (const Morsel& m : deque) {
      min_slack = std::min(min_slack, hint->SlackAt(m.begin));
    }
    for (const Morsel& m : deque) {
      const uint64_t s = hint->SlackAt(m.begin);
      if (s != UINT64_MAX) {
        ++sched_stats_.slack_hits;
      }
      if (min_slack != UINT64_MAX && s > min_slack) {
        ++sched_stats_.deferred_morsels;
      }
    }
  }
}

bool ParallelRun::TakeMorsel(uint32_t thief, Morsel* morsel, bool* stolen) {
  if (pending_morsels_ == 0) {
    return false;
  }
  std::deque<Morsel>& own = deques_[thief];
  uint32_t source = thief;
  bool from_front = false;
  if (!own.empty()) {
    *morsel = own.back();  // LIFO: the most recently dealt end stays cache-warm.
    own.pop_back();
    *stolen = false;
  } else {
    uint32_t victim = config_.workers;
    if (scan_slack_ != nullptr) {
      // Slack policy: steal from the victim whose head (steal-end) morsel has the least
      // expected slack — the most urgent deferred work anywhere in the pool — tie-broken to a
      // victim on the thief's own node (the stolen rows stay local), then to the lowest id.
      const uint32_t thief_node = thief % numa_.nodes();
      uint64_t best_slack = 0;
      uint32_t best_remote = 0;
      for (uint32_t i = 0; i < config_.workers; ++i) {
        if (deques_[i].empty()) {
          continue;
        }
        const uint64_t s = scan_slack_->SlackAt(deques_[i].front().begin);
        const uint32_t remote = (i % numa_.nodes()) == thief_node ? 0 : 1;
        if (victim == config_.workers || s < best_slack ||
            (s == best_slack && remote < best_remote)) {
          victim = i;
          best_slack = s;
          best_remote = remote;
        }
      }
      ++sched_stats_.slack_steals;
    } else {
      // Steal from the richest victim (ties to the lowest id) so load drains evenly; take the
      // front — the morsel the victim would reach last, and the coldest in its caches.
      size_t best = 0;
      for (uint32_t i = 0; i < config_.workers; ++i) {
        if (deques_[i].size() > best) {
          best = deques_[i].size();
          victim = i;
        }
      }
    }
    DFP_CHECK(victim < config_.workers);
    *morsel = deques_[victim].front();
    deques_[victim].pop_front();
    *stolen = true;
    source = victim;
    from_front = true;
  }
  --pending_morsels_;
  // Endgame splitting: once fewer morsels remain than workers, halve each taken morsel and
  // return the remainder to the deque it came from. The granularity shrinks geometrically to
  // kMinMorselRows, so the scan's final imbalance is bounded by one minimum-size morsel — a
  // full-size last morsel landing on the worker that also runs the sequential pipeline tail
  // would otherwise stretch the critical path by the whole morsel.
  if (pending_morsels_ < config_.workers && morsel->end - morsel->begin >= 2 * kMinMorselRows) {
    const uint64_t mid = morsel->begin + (morsel->end - morsel->begin) / 2;
    if (from_front) {
      deques_[source].push_front(Morsel{mid, morsel->end});
    } else {
      deques_[source].push_back(Morsel{mid, morsel->end});
    }
    morsel->end = mid;
    ++pending_morsels_;
  }
  return true;
}

ParallelRun::Unit ParallelRun::Step() {
  VMem& mem = db_.mem();
  while (!done()) {
    const ExecStep& step = query_.exec_steps[step_idx_];
    switch (step.kind) {
      case ExecStep::Kind::kCreateHashTable: {
        TaskBoundary boundary;
        boundary.kind = TaskKind::kHostStep;
        boundary.step = static_cast<uint32_t>(step_idx_);
        Unit unit = RunOn(*workers_[0], boundary, [&](Worker& w) {
          VAddr table = CreateHashTable(mem, regions_.hashtables, step.ht_capacity,
                                        step.ht_payload_bytes);
          mem.Write<uint64_t>(state_ + step.state_offset0, table);
          // Directory set-up cost (zeroing is modeled, the memory itself is pre-zeroed).
          w.cpu.HostWork(kernel_exec_, 200 + step.ht_capacity / 16);
        });
        Barrier();
        ++step_idx_;
        return unit;
      }
      case ExecStep::Kind::kAllocBuffer: {
        TaskBoundary boundary;
        boundary.kind = TaskKind::kHostStep;
        boundary.step = static_cast<uint32_t>(step_idx_);
        Unit unit = RunOn(*workers_[0], boundary, [&](Worker& w) {
          VAddr buffer = mem.Alloc(regions_.output, step.buffer_bytes);
          mem.Write<uint64_t>(state_ + step.state_offset0, buffer);
          mem.Write<uint64_t>(state_ + step.state_offset1, 0);
          w.cpu.HostWork(kernel_exec_, 100 + step.buffer_bytes / 4096);
        });
        Barrier();
        ++step_idx_;
        return unit;
      }
      case ExecStep::Kind::kRunPipeline: {
        const PipelineArtifact& artifact = query_.pipelines[step.pipeline];
        const PipelineStep& source = artifact.pipeline.steps[0];
        if (source.role != PipelineStep::Role::kScanSource) {
          // Pipelines over intermediate results (group scans, sort scans) run sequentially.
          TaskBoundary boundary;
          boundary.kind = TaskKind::kSequentialPipeline;
          boundary.step = static_cast<uint32_t>(step_idx_);
          boundary.pipeline = step.pipeline;
          Unit unit = RunOn(*workers_[0], boundary, [&](Worker& w) {
            const uint64_t args[] = {state_, 0, 0};
            w.cpu.CallFunction(artifact.function, args);
          });
          Barrier();
          ++step_idx_;
          return unit;
        }
        // Split the scan into morsels and schedule them by the configured policy.
        if (!in_scan_) {
          BeginScan(artifact, source);
        }
        if (scan_stealing_) {
          // The earliest-free worker pops its own deque (node-local rows) or, empty-handed,
          // steals; samples taken inside a stolen morsel carry the steal flag so its remote
          // traffic stays attributable to the steal.
          Morsel morsel;
          bool stolen = false;
          Worker& next = NextWorker();
          if (TakeMorsel(next.cpu.worker_id(), &morsel, &stolen)) {
            TaskBoundary boundary;
            boundary.kind = TaskKind::kMorsel;
            boundary.step = static_cast<uint32_t>(step_idx_);
            boundary.pipeline = step.pipeline;
            boundary.morsel_begin = morsel.begin;
            boundary.morsel_end = morsel.end;
            boundary.stolen = stolen;
            return RunOn(next, boundary, [&](Worker& w) {
              if (stolen) {
                ++w.steals;
                w.cpu.AddCycles(kMorselStealCycles);
                w.cpu.set_stolen_work(true);
              }
              const uint64_t args[] = {state_, morsel.begin, morsel.end};
              w.cpu.CallFunction(artifact.function, args);
              w.cpu.set_stolen_work(false);
            });
          }
        } else if (scan_next_ < scan_rows_) {
          // Central: dispatch in table order to the earliest-free worker. Serializes the
          // morsels' memory effects identically to a sequential scan, so output row order
          // matches single-threaded execution exactly (required by bare-LIMIT pipelines).
          const uint64_t begin = scan_next_;
          const uint64_t end = std::min(scan_rows_, begin + scan_morsel_rows_);
          scan_next_ = end;
          TaskBoundary boundary;
          boundary.kind = TaskKind::kMorsel;
          boundary.step = static_cast<uint32_t>(step_idx_);
          boundary.pipeline = step.pipeline;
          boundary.morsel_begin = begin;
          boundary.morsel_end = end;
          return RunOn(NextWorker(), boundary, [&](Worker& w) {
            const uint64_t args[] = {state_, begin, end};
            w.cpu.CallFunction(artifact.function, args);
          });
        }
        // Scan exhausted (or empty): close the pipeline and look for the next unit.
        in_scan_ = false;
        scan_slack_ = nullptr;
        Barrier();
        ++step_idx_;
        continue;
      }
      case ExecStep::Kind::kSort: {
        TaskBoundary boundary;
        boundary.kind = TaskKind::kSort;
        boundary.step = static_cast<uint32_t>(step_idx_);
        Unit unit = RunOn(*workers_[0], boundary, [&](Worker& w) {
          const uint64_t buffer = mem.Read<uint64_t>(state_ + step.state_offset0);
          const uint64_t rows = mem.Read<uint64_t>(state_ + step.state_offset1);
          const uint64_t args[] = {buffer, rows, step.sort_spec};
          w.cpu.CallFunction(db_.runtime().sort_fn(), args);
        });
        Barrier();
        ++step_idx_;
        return unit;
      }
    }
  }
  return Unit();
}

Result ParallelRun::Finish() {
  DFP_CHECK(done() && !finished_);
  finished_ = true;
  VMem& mem = db_.mem();

  // Read the result rows back host-side (same layout as the sequential engine).
  const VAddr out_base = mem.Read<uint64_t>(state_ + query_.out_base_offset);
  const uint64_t out_count = mem.Read<uint64_t>(state_ + query_.out_count_offset);
  const size_t columns = query_.output_schema.size();
  std::vector<std::vector<int64_t>> rows;
  rows.reserve(out_count);
  for (uint64_t r = 0; r < out_count; ++r) {
    std::vector<int64_t> row(columns);
    for (size_t c = 0; c < columns; ++c) {
      row[c] = mem.Read<int64_t>(out_base + r * query_.output_row_size + c * 8);
    }
    rows.push_back(std::move(row));
  }

  query_.tuple_counts.clear();
  for (const auto& [task, offset] : query_.tuple_count_slots) {
    query_.tuple_counts[task] = mem.Read<uint64_t>(state_ + offset);
  }

  // Aggregate metrics: wall clock is the slowest worker (all equal after the final barrier);
  // counters and traffic are summed across the pool.
  merged_counters_ = PmuCounters();
  merged_cache_stats_ = CacheStats();
  merged_cpu_stats_ = CpuStats();
  merged_numa_stats_ = NumaStats();
  merged_sampling_overhead_ = SamplingOverhead();
  total_busy_cycles_ = 0;
  worker_metrics_.clear();
  merged_samples_.clear();
  for (uint32_t i = 0; i < config_.workers; ++i) {
    Worker& w = *workers_[i];
    WorkerMetrics metrics;
    metrics.worker_id = i;
    metrics.node = w.cpu.node_id();
    metrics.busy_cycles = w.busy_cycles;
    metrics.idle_cycles = w.cpu.tsc() - w.busy_cycles;
    metrics.morsels = w.work_items;
    metrics.steals = w.steals;
    metrics.samples = w.pmu.samples().size();
    metrics.sampling_overhead = w.pmu.overhead();
    metrics.counters = w.pmu.counters();
    metrics.cache_stats = w.cpu.cache().stats();
    metrics.cpu_stats = w.cpu.stats();
    metrics.numa_stats = w.cpu.numa_stats();
    for (int e = 0; e < kPmuEventCount; ++e) {
      merged_counters_.values[e] += metrics.counters.values[e];
    }
    merged_cache_stats_.accesses += metrics.cache_stats.accesses;
    merged_cache_stats_.l1_misses += metrics.cache_stats.l1_misses;
    merged_cache_stats_.l2_misses += metrics.cache_stats.l2_misses;
    merged_cache_stats_.l3_misses += metrics.cache_stats.l3_misses;
    merged_cpu_stats_.instructions += metrics.cpu_stats.instructions;
    merged_cpu_stats_.calls += metrics.cpu_stats.calls;
    merged_cpu_stats_.max_stack_depth =
        std::max(merged_cpu_stats_.max_stack_depth, metrics.cpu_stats.max_stack_depth);
    merged_numa_stats_.local_accesses += metrics.numa_stats.local_accesses;
    merged_numa_stats_.remote_accesses += metrics.numa_stats.remote_accesses;
    merged_numa_stats_.remote_dram += metrics.numa_stats.remote_dram;
    merged_sampling_overhead_ += metrics.sampling_overhead;
    total_busy_cycles_ += metrics.busy_cycles;
    worker_metrics_.push_back(metrics);
    std::vector<Sample> samples = w.pmu.TakeSamples();
    merged_samples_.insert(merged_samples_.end(), std::make_move_iterator(samples.begin()),
                           std::make_move_iterator(samples.end()));
  }
  // Merge the per-worker streams into one timeline; each stream is already TSC-sorted, so a
  // stable sort by TSC keeps ties ordered by worker id.
  std::stable_sort(merged_samples_.begin(), merged_samples_.end(),
                   [](const Sample& a, const Sample& b) {
                     return a.tsc != b.tsc ? a.tsc < b.tsc : a.worker_id < b.worker_id;
                   });
  return Result(query_.output_schema, std::move(rows));
}

Result QueryEngine::ExecuteParallel(CompiledQuery& query, const ParallelConfig& config,
                                    const PlanSlack* slack) {
  db_->ResetScratch();
  ProfilingSession* session = query.session;
  SamplingConfig sampling;
  if (session != nullptr) {
    sampling = session->MakeSamplingConfig();
  }
  ScratchRegions regions;
  regions.hashtables = db_->hashtables_region();
  regions.state = db_->state_region();
  regions.output = db_->output_region();

  ParallelRun run(*db_, query, config, regions, session != nullptr ? &sampling : nullptr,
                  /*session_id=*/0, slack);
  while (!run.done()) {
    run.Step();
  }
  Result result = run.Finish();

  last_cycles_ = run.WallCycles();
  last_sched_stats_ = run.sched_stats();
  last_counters_ = run.merged_counters();
  last_cache_stats_ = run.merged_cache_stats();
  last_cpu_stats_ = run.merged_cpu_stats();
  last_sampling_overhead_ = run.merged_sampling_overhead();
  last_worker_metrics_ = run.worker_metrics();
  last_task_boundaries_ = run.TakeTaskBoundaries();
  if (session != nullptr) {
    session->RecordExecution(run.TakeMergedSamples(), last_cycles_, last_counters_,
                             config.workers);
  }
  return result;
}

}  // namespace dfp
