#include "src/engine/result.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/util/date.h"
#include "src/util/decimal.h"
#include "src/util/str.h"
#include "src/util/table_printer.h"

namespace dfp {

std::string Result::CellToString(const StringHeap& strings, size_t row, size_t column) const {
  const int64_t payload = rows_[row][column];
  switch (schema_[column].type) {
    case ColumnType::kInt64:
      return StrFormat("%lld", static_cast<long long>(payload));
    case ColumnType::kDecimal:
      return DecimalToString(payload);
    case ColumnType::kDate:
      return DateToString(static_cast<int32_t>(payload));
    case ColumnType::kString:
      return std::string(strings.Get(static_cast<uint64_t>(payload)));
    case ColumnType::kDouble:
      return StrFormat("%.4f", std::bit_cast<double>(payload));
    case ColumnType::kBool:
      return payload != 0 ? "true" : "false";
  }
  return "?";
}

std::string Result::ToString(const StringHeap& strings, size_t max_rows) const {
  std::vector<std::string> header;
  for (const OutputColumn& column : schema_) {
    header.push_back(column.name);
  }
  TablePrinter printer(std::move(header));
  for (size_t c = 0; c < schema_.size(); ++c) {
    printer.SetRightAlign(c, schema_[c].type != ColumnType::kString);
  }
  const size_t shown = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> cells;
    for (size_t c = 0; c < schema_.size(); ++c) {
      cells.push_back(CellToString(strings, r, c));
    }
    printer.AddRow(std::move(cells));
  }
  std::string out = printer.Render();
  if (shown < rows_.size()) {
    out += StrFormat("... (%zu rows total)\n", rows_.size());
  } else {
    out += StrFormat("(%zu rows)\n", rows_.size());
  }
  return out;
}

namespace {

bool CellsEqual(ColumnType type, int64_t a, int64_t b) {
  if (type == ColumnType::kDouble) {
    const double da = std::bit_cast<double>(a);
    const double db = std::bit_cast<double>(b);
    if (std::isnan(da) && std::isnan(db)) {
      return true;
    }
    const double tolerance = 1e-9 * std::max({1.0, std::fabs(da), std::fabs(db)});
    return std::fabs(da - db) <= tolerance;
  }
  return a == b;
}

}  // namespace

bool Result::Equivalent(const Result& a, const Result& b, bool ordered, std::string* diff) {
  auto fail = [&](std::string message) {
    if (diff != nullptr) {
      *diff = std::move(message);
    }
    return false;
  };
  if (a.schema_.size() != b.schema_.size()) {
    return fail("column count differs");
  }
  if (a.rows_.size() != b.rows_.size()) {
    return fail(StrFormat("row count differs: %zu vs %zu", a.rows_.size(), b.rows_.size()));
  }
  std::vector<size_t> order_a(a.rows_.size());
  std::vector<size_t> order_b(b.rows_.size());
  for (size_t i = 0; i < a.rows_.size(); ++i) {
    order_a[i] = i;
    order_b[i] = i;
  }
  if (!ordered) {
    auto lexicographic = [](const std::vector<std::vector<int64_t>>& rows) {
      return [&rows](size_t lhs, size_t rhs) { return rows[lhs] < rows[rhs]; };
    };
    std::sort(order_a.begin(), order_a.end(), lexicographic(a.rows_));
    std::sort(order_b.begin(), order_b.end(), lexicographic(b.rows_));
  }
  for (size_t i = 0; i < a.rows_.size(); ++i) {
    const std::vector<int64_t>& row_a = a.rows_[order_a[i]];
    const std::vector<int64_t>& row_b = b.rows_[order_b[i]];
    for (size_t c = 0; c < a.schema_.size(); ++c) {
      if (!CellsEqual(a.schema_[c].type, row_a[c], row_b[c])) {
        return fail(StrFormat("row %zu column %zu differs (%lld vs %lld)", i, c,
                              static_cast<long long>(row_a[c]),
                              static_cast<long long>(row_b[c])));
      }
    }
  }
  return true;
}

}  // namespace dfp
