// The Database: composition root owning memory, code map, runtime, string heap, and tables.
//
// Constructing a Database is "engine start-up": the shared runtime functions are built in VIR
// and compiled, and the kernel/system-library host segments are registered. Queries compiled
// against a Database add their own generated-code segments.
#ifndef DFP_SRC_ENGINE_DATABASE_H_
#define DFP_SRC_ENGINE_DATABASE_H_

#include <map>
#include <memory>
#include <string>

#include "src/pmu/pmu.h"
#include "src/runtime/runtime.h"
#include "src/storage/stringheap.h"
#include "src/storage/table.h"
#include "src/vcpu/code_map.h"
#include "src/vcpu/vmem.h"

namespace dfp {

struct DatabaseConfig {
  uint64_t columns_bytes = 192ull << 20;
  uint64_t strings_bytes = 24ull << 20;
  uint64_t hashtables_bytes = 160ull << 20;
  uint64_t state_bytes = 1ull << 20;
  uint64_t output_bytes = 128ull << 20;
  // Extra arena head room for regions created after start-up (the query service carves its
  // per-session scratch regions out of this; 0 means no service sessions can be hosted).
  uint64_t extra_bytes = 0;
  PmuCosts pmu_costs;
};

class Database {
 public:
  explicit Database(DatabaseConfig config = DatabaseConfig());

  VMem& mem() { return mem_; }
  CodeMap& code_map() { return code_map_; }
  Runtime& runtime() { return *runtime_; }
  StringHeap& strings() { return *strings_; }
  const PmuCosts& pmu_costs() const { return config_.pmu_costs; }

  uint32_t columns_region() const { return columns_region_; }
  uint32_t strings_region() const { return strings_region_; }
  uint32_t hashtables_region() const { return hashtables_region_; }
  uint32_t state_region() const { return state_region_; }
  uint32_t output_region() const { return output_region_; }

  // Creates a builder whose Finish() result should be registered with AddTable.
  TableBuilder CreateTableBuilder(TableSchema schema) {
    return TableBuilder(std::move(schema), &mem_, columns_region_, strings_.get());
  }

  void AddTable(Table table);
  const Table& table(const std::string& name) const;
  bool HasTable(const std::string& name) const { return tables_.count(name) != 0; }

  // Monotonic version of the catalog (tables + schemas). Bumped by AddTable; compiled-plan
  // caches mix it into plan fingerprints and drop entries when it moves.
  uint64_t catalog_version() const { return catalog_version_; }

  // Carves an additional region out of the arena's `extra_bytes` head room (per-session scratch
  // for the query service). Aborts when the arena is exhausted — size the DatabaseConfig for the
  // intended session count.
  uint32_t CreateScratchRegion(const std::string& name, uint64_t size) {
    return mem_.CreateRegion(name, size);
  }

  // Releases per-query scratch memory (hash tables, state, output buffers). Base table data and
  // strings are untouched.
  void ResetScratch();

 private:
  DatabaseConfig config_;
  VMem mem_;
  CodeMap code_map_;
  uint32_t columns_region_;
  uint32_t strings_region_;
  uint32_t hashtables_region_;
  uint32_t state_region_;
  uint32_t output_region_;
  std::unique_ptr<StringHeap> strings_;
  std::unique_ptr<Runtime> runtime_;
  std::map<std::string, Table> tables_;
  uint64_t catalog_version_ = 0;
};

}  // namespace dfp

#endif  // DFP_SRC_ENGINE_DATABASE_H_
