// The query engine facade: compile physical plans, execute them on the VCPU, read back results.
#ifndef DFP_SRC_ENGINE_QUERY_ENGINE_H_
#define DFP_SRC_ENGINE_QUERY_ENGINE_H_

#include <string>
#include <vector>

#include "src/engine/codegen.h"
#include "src/engine/database.h"
#include "src/engine/parallel.h"
#include "src/engine/result.h"
#include "src/profiling/session.h"
#include "src/vcpu/cpu.h"

namespace dfp {

class QueryEngine {
 public:
  explicit QueryEngine(Database* db) : db_(db) {}

  // Compiles `plan` (ownership transferred). When `session` is non-null, the compilation
  // populates the session's Tagging Dictionary and emits Register Tagging as configured.
  CompiledQuery Compile(PhysicalOpPtr plan, ProfilingSession* session = nullptr,
                        std::string name = "query",
                        const CodegenOptions& options = CodegenOptions());

  // Runs a compiled query on a fresh VCPU. Per-query scratch memory is reset first, so results
  // of previous executions must be read back before re-executing. When the query was compiled
  // with a profiling session, the PMU is armed with the session's sampling configuration and the
  // collected samples are handed to the session afterwards. The query must not have been
  // compiled with CodegenOptions::parallel (use ExecuteParallel for those).
  Result Execute(CompiledQuery& query);

  // Runs a query compiled with CodegenOptions::parallel on a pool of simulated VCPU workers
  // (see src/engine/parallel.h). Results are identical to single-threaded execution; the
  // session — when attached — receives the merged per-worker sample stream. `slack` (optional)
  // is an expected-slack profile from prior executions (src/critpath/slack.h): the run orders
  // its deques and picks steal victims by it, changing only the schedule, never the results.
  Result ExecuteParallel(CompiledQuery& query, const ParallelConfig& config = ParallelConfig(),
                         const PlanSlack* slack = nullptr);

  // Convenience: compile and execute in one step.
  Result Run(PhysicalOpPtr plan, ProfilingSession* session = nullptr,
             std::string name = "query");

  Database& db() { return *db_; }

  // Metrics of the most recent Execute()/ExecuteParallel(). After a parallel run, cycles are
  // the simulated wall clock (max over workers), counters and cache stats are summed across
  // workers, and last_worker_metrics() has the per-worker breakdown (empty after Execute()).
  uint64_t last_cycles() const { return last_cycles_; }
  const PmuCounters& last_counters() const { return last_counters_; }
  const CacheStats& last_cache_stats() const { return last_cache_stats_; }
  const CpuStats& last_cpu_stats() const { return last_cpu_stats_; }
  const std::vector<WorkerMetrics>& last_worker_metrics() const { return last_worker_metrics_; }
  // Measured sampling cost of the most recent execution (capture + flush cycles the PMU
  // actually charged; summed across workers after ExecuteParallel). Zero without sampling.
  const SamplingOverhead& last_sampling_overhead() const { return last_sampling_overhead_; }
  // Task-boundary records of the most recent ExecuteParallel(), in execution order — the input
  // to the critical-path subsystem (src/critpath/). Empty after Execute().
  const std::vector<TaskBoundary>& last_task_boundaries() const { return last_task_boundaries_; }
  // Slack-policy counters of the most recent ExecuteParallel() (all zero without a profile).
  const SchedStats& last_sched_stats() const { return last_sched_stats_; }

 private:
  Database* db_;
  uint64_t last_cycles_ = 0;
  PmuCounters last_counters_;
  CacheStats last_cache_stats_;
  CpuStats last_cpu_stats_;
  SamplingOverhead last_sampling_overhead_;
  std::vector<WorkerMetrics> last_worker_metrics_;
  std::vector<TaskBoundary> last_task_boundaries_;
  SchedStats last_sched_stats_;
};

}  // namespace dfp

#endif  // DFP_SRC_ENGINE_QUERY_ENGINE_H_
