#include "src/engine/query_engine.h"

#include "src/runtime/hashtable.h"
#include "src/util/check.h"
#include "src/vcpu/cpu.h"

namespace dfp {

CompiledQuery QueryEngine::Compile(PhysicalOpPtr plan, ProfilingSession* session,
                                   std::string name, const CodegenOptions& options) {
  return CompileQuery(*db_, std::move(plan), session, std::move(name), options);
}

Result QueryEngine::Execute(CompiledQuery& query) {
  // Parallel-compiled pipelines expect morsel bounds in the argument registers.
  DFP_CHECK(!query.parallel);
  db_->ResetScratch();
  last_worker_metrics_.clear();
  last_task_boundaries_.clear();
  Pmu pmu(db_->pmu_costs());
  ProfilingSession* session = query.session;
  if (session != nullptr) {
    pmu.Configure(session->MakeSamplingConfig());
  }
  Cpu cpu(db_->mem(), db_->code_map(), pmu);
  VMem& mem = db_->mem();

  const VAddr state = mem.Alloc(db_->state_region(), std::max<uint64_t>(8, query.state_bytes));
  const uint32_t kernel_exec = db_->runtime().kernel_exec_segment();

  for (const ExecStep& step : query.exec_steps) {
    switch (step.kind) {
      case ExecStep::Kind::kCreateHashTable: {
        VAddr table = CreateHashTable(mem, db_->hashtables_region(), step.ht_capacity,
                                      step.ht_payload_bytes);
        mem.Write<uint64_t>(state + step.state_offset0, table);
        // Directory set-up cost (zeroing is modeled, the memory itself is pre-zeroed).
        cpu.HostWork(kernel_exec, 200 + step.ht_capacity / 16);
        break;
      }
      case ExecStep::Kind::kAllocBuffer: {
        VAddr buffer = mem.Alloc(db_->output_region(), step.buffer_bytes);
        mem.Write<uint64_t>(state + step.state_offset0, buffer);
        mem.Write<uint64_t>(state + step.state_offset1, 0);
        cpu.HostWork(kernel_exec, 100 + step.buffer_bytes / 4096);
        break;
      }
      case ExecStep::Kind::kRunPipeline: {
        const uint64_t args[] = {state};
        cpu.CallFunction(query.pipelines[step.pipeline].function, args);
        break;
      }
      case ExecStep::Kind::kSort: {
        const uint64_t buffer = mem.Read<uint64_t>(state + step.state_offset0);
        const uint64_t rows = mem.Read<uint64_t>(state + step.state_offset1);
        const uint64_t args[] = {buffer, rows, step.sort_spec};
        cpu.CallFunction(db_->runtime().sort_fn(), args);
        break;
      }
    }
  }

  // Read the result rows back host-side.
  const VAddr out_base = mem.Read<uint64_t>(state + query.out_base_offset);
  const uint64_t out_count = mem.Read<uint64_t>(state + query.out_count_offset);
  const size_t columns = query.output_schema.size();
  std::vector<std::vector<int64_t>> rows;
  rows.reserve(out_count);
  for (uint64_t r = 0; r < out_count; ++r) {
    std::vector<int64_t> row(columns);
    for (size_t c = 0; c < columns; ++c) {
      row[c] = mem.Read<int64_t>(out_base + r * query.output_row_size + c * 8);
    }
    rows.push_back(std::move(row));
  }

  // EXPLAIN-ANALYZE-style tuple counters, when compiled in.
  query.tuple_counts.clear();
  for (const auto& [task, offset] : query.tuple_count_slots) {
    query.tuple_counts[task] = mem.Read<uint64_t>(state + offset);
  }

  last_cycles_ = cpu.tsc();
  last_counters_ = pmu.counters();
  last_cache_stats_ = cpu.cache().stats();
  last_cpu_stats_ = cpu.stats();
  last_sampling_overhead_ = pmu.overhead();
  if (session != nullptr) {
    session->RecordExecution(pmu.TakeSamples(), cpu.tsc(), pmu.counters());
  }
  return Result(query.output_schema, std::move(rows));
}

Result QueryEngine::Run(PhysicalOpPtr plan, ProfilingSession* session, std::string name) {
  CompiledQuery query = Compile(std::move(plan), session, std::move(name));
  return Execute(query);
}

}  // namespace dfp
