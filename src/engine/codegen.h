// Query code generation: lowers a physical plan through pipelines of tasks into VIR and machine
// code (lowering steps 1-3 of Figure 8 in the paper).
//
// Profiling integration happens here: task registration populates the Tagging Dictionary's
// Log A via the operator Abstraction Tracker, every generated VIR instruction is linked to its
// task (Log B) via the task Abstraction Tracker hooked into the IRBuilder observer, and calls to
// shared runtime functions are framed with Register Tagging instructions.
#ifndef DFP_SRC_ENGINE_CODEGEN_H_
#define DFP_SRC_ENGINE_CODEGEN_H_

#include "src/engine/database.h"
#include "src/engine/exec_plan.h"
#include "src/profiling/session.h"
#include "src/tiering/literals.h"

namespace dfp {

struct CodegenOptions {
  bool optimize_ir = true;
  // Reserve r15 even without a Register Tagging session: isolates the cost of losing one
  // register from the cost of the tag writes (Section 6.2 ablation).
  bool force_reserve_tag_register = false;
  // Emit per-task tuple counters into the generated code (EXPLAIN-ANALYZE-style statistics,
  // which the paper contrasts with sampled time in Section 6.1). Requires a profiling session
  // (counters are keyed by task). Adds per-tuple work, so it is off by default.
  bool count_tuples = false;
  // Morsel-driven parallel mode: pipeline functions take (state, morsel_begin, morsel_end)
  // instead of (state), table scans iterate the given morsel, and all cross-morsel cursors
  // (output slots, sort buffer slots, limit counters, tuple counters) live in the shared state
  // block instead of being hoisted into registers. Hash-table builds go through the
  // lock-striped insert. Queries compiled this way run via QueryEngine::ExecuteParallel.
  bool parallel = false;
  // Literal parameterization (src/tiering/): when set (borrowed; must cover the compiled plan
  // and outlive the call), plan literals lower as slot-tagged immediates, the optimizer leaves
  // them unfolded, and each PipelineArtifact carries the emitter's relocation table so the
  // cached code can later be re-bound to new literals by patching.
  const PlanLiterals* literals = nullptr;
};

// Compiles `plan` (taking ownership) against `db`. `session` may be null (no profiling).
CompiledQuery CompileQuery(Database& db, PhysicalOpPtr plan, ProfilingSession* session,
                           std::string name, const CodegenOptions& options = CodegenOptions());

}  // namespace dfp

#endif  // DFP_SRC_ENGINE_CODEGEN_H_
