#include "src/engine/codegen.h"

#include <bit>
#include <functional>
#include <optional>

#include "src/ir/builder.h"
#include "src/profiling/validation.h"
#include "src/runtime/hashtable.h"
#include "src/util/check.h"
#include "src/util/decimal.h"
#include "src/util/hash.h"
#include "src/util/str.h"

namespace dfp {
namespace {

// ---------------------------------------------------------------------------------------------
// Small helpers shared by the emitters.
// ---------------------------------------------------------------------------------------------

uint64_t SlotKey(OperatorId op, StateSlot purpose) {
  return static_cast<uint64_t>(op) * 16 + static_cast<uint64_t>(purpose);
}

// A value flowing through the pipeline: an IR value plus its column type.
struct SlotVal {
  Value value;
  ColumnType type = ColumnType::kInt64;
};

// The current tuple during code generation: lazy per-slot loaders with caching, the core of
// data-centric produce/consume code generation (columns are only loaded when first used).
class TupleContext {
 public:
  using Loader = std::function<SlotVal()>;

  explicit TupleContext(std::vector<Loader> loaders)
      : loaders_(std::move(loaders)), cache_(loaders_.size()) {}

  SlotVal Get(int slot) {
    DFP_CHECK(slot >= 0 && static_cast<size_t>(slot) < loaders_.size());
    std::optional<SlotVal>& cached = cache_[static_cast<size_t>(slot)];
    if (!cached.has_value()) {
      cached = loaders_[static_cast<size_t>(slot)]();
    }
    return *cached;
  }

  void Append(Loader loader) {
    loaders_.push_back(std::move(loader));
    cache_.emplace_back();
  }

  void AppendValue(SlotVal value) {
    loaders_.push_back([value] { return value; });
    cache_.push_back(value);
  }

  void Replace(std::vector<Loader> loaders) {
    loaders_ = std::move(loaders);
    cache_.assign(loaders_.size(), std::nullopt);
  }

  // Drops slots appended after `size` (leaving a nested scope such as a join match block).
  void Truncate(size_t size) {
    DFP_CHECK(size <= loaders_.size());
    loaders_.resize(size);
    cache_.resize(size);
  }

  size_t size() const { return loaders_.size(); }

  // Cache snapshots guard against values loaded on conditionally-executed paths leaking into
  // unconditional consumers (see EmitCondJump / CASE emission).
  std::vector<std::optional<SlotVal>> Snapshot() const { return cache_; }
  void Restore(std::vector<std::optional<SlotVal>> snapshot) { cache_ = std::move(snapshot); }

 private:
  std::vector<Loader> loaders_;
  std::vector<std::optional<SlotVal>> cache_;
};

// Aggregate payload layout of a group entry.
struct AggSlot {
  AggOp op = AggOp::kSum;
  ColumnType in_type = ColumnType::kInt64;
  ColumnType out_type = ColumnType::kInt64;
  int64_t offset = 0;   // sum/min/max/count slot.
  int64_t offset2 = 0;  // avg: count slot.
};

struct GroupLayout {
  std::vector<ColumnType> key_types;
  std::vector<ColumnType> extra_types;  // GroupJoin build payload columns.
  std::vector<AggSlot> aggs;
  uint64_t payload_bytes = 0;

  int64_t KeyOffset(size_t i) const { return static_cast<int64_t>(i) * 8; }
  int64_t ExtraOffset(size_t i) const {
    return static_cast<int64_t>(key_types.size() + i) * 8;
  }
};

GroupLayout ComputeGroupLayout(const std::vector<ColumnType>& key_types,
                               const std::vector<ColumnType>& extra_types,
                               const std::vector<ExprPtr>& aggregates) {
  GroupLayout layout;
  layout.key_types = key_types;
  layout.extra_types = extra_types;
  int64_t offset = static_cast<int64_t>((key_types.size() + extra_types.size()) * 8);
  for (const ExprPtr& agg : aggregates) {
    AggSlot slot;
    slot.op = agg->agg;
    slot.in_type = agg->left != nullptr ? agg->left->type : ColumnType::kInt64;
    slot.out_type = agg->type;
    slot.offset = offset;
    offset += 8;
    if (agg->agg == AggOp::kAvg) {
      slot.offset2 = offset;
      offset += 8;
    }
    layout.aggs.push_back(slot);
  }
  layout.payload_bytes = static_cast<uint64_t>(offset);
  return layout;
}

// ---------------------------------------------------------------------------------------------
// Lowering step 1: plan -> pipelines of tasks + execution schedule.
// ---------------------------------------------------------------------------------------------

class PlanLowering {
 public:
  PlanLowering(ProfilingSession* session, CompiledQuery* out) : session_(session), out_(out) {}

  void Run(PhysicalOp& root) { Lower(root, {}); }

 private:
  TaskId MakeTask(PhysicalOp& op, const char* name) {
    if (session_ == nullptr) {
      return kNoTask;
    }
    // Abstraction Tracker discipline: the operator is active while its tasks are registered.
    TrackerScope<OperatorId> scope(&session_->operator_tracker(), op.id);
    return session_->dictionary().AddTask(session_->operator_tracker().Active(), name);
  }

  uint32_t ReserveState(OperatorId op, StateSlot purpose) {
    uint64_t key = SlotKey(op, purpose);
    auto it = state_offsets_.find(key);
    if (it != state_offsets_.end()) {
      return it->second;
    }
    uint32_t offset = static_cast<uint32_t>(out_->state_bytes);
    out_->state_bytes += 8;
    state_offsets_.emplace(key, offset);
    return offset;
  }

  void AddPipeline(std::vector<PipelineStep> steps, std::string name) {
    Pipeline pipeline;
    pipeline.id = static_cast<uint32_t>(pipelines_.size());
    pipeline.name = std::move(name);
    pipeline.steps = std::move(steps);
    pipelines_.push_back(std::move(pipeline));
    ExecStep run;
    run.kind = ExecStep::Kind::kRunPipeline;
    run.pipeline = pipelines_.back().id;
    out_->exec_steps.push_back(run);
  }

  // `downstream` are the steps that consume this operator's tuples, in dataflow order.
  void Lower(PhysicalOp& op, std::vector<PipelineStep> downstream) {
    auto prepend = [&](PipelineStep step) {
      std::vector<PipelineStep> steps;
      steps.push_back(step);
      for (PipelineStep& rest : downstream) {
        steps.push_back(std::move(rest));
      }
      return steps;
    };
    switch (op.kind) {
      case OpKind::kResultSink: {
        PipelineStep step{PipelineStep::Role::kOutput, &op, MakeTask(op, "output")};
        out_->out_base_offset = ReserveState(op.id, StateSlot::kOutBase);
        out_->out_count_offset = ReserveState(op.id, StateSlot::kOutCount);
        out_->output_row_size = op.output.size() * 8;
        out_->output_bound_rows = op.bound_rows;
        ExecStep alloc;
        alloc.kind = ExecStep::Kind::kAllocBuffer;
        alloc.op = &op;
        alloc.buffer_bytes = std::max<uint64_t>(8, op.bound_rows * out_->output_row_size);
        alloc.state_offset0 = out_->out_base_offset;
        alloc.state_offset1 = out_->out_count_offset;
        out_->exec_steps.push_back(alloc);
        Lower(*op.child(0), prepend(step));
        return;
      }
      case OpKind::kTableScan: {
        PipelineStep step{PipelineStep::Role::kScanSource, &op, MakeTask(op, "scan")};
        AddPipeline(prepend(step), "scan " + op.table->name());
        return;
      }
      case OpKind::kFilter: {
        PipelineStep step{PipelineStep::Role::kFilter, &op, MakeTask(op, "filter")};
        Lower(*op.child(0), prepend(step));
        return;
      }
      case OpKind::kMap: {
        PipelineStep step{PipelineStep::Role::kMap, &op, MakeTask(op, "map")};
        Lower(*op.child(0), prepend(step));
        return;
      }
      case OpKind::kLimit: {
        PipelineStep step{PipelineStep::Role::kLimit, &op, MakeTask(op, "limit")};
        ReserveState(op.id, StateSlot::kLimitCounter);
        Lower(*op.child(0), prepend(step));
        return;
      }
      case OpKind::kHashJoin: {
        // Key/payload layout of the build entries decides the hash table's payload size.
        uint64_t payload_slots = op.build_keys.size();
        if (op.join_type == JoinType::kInner) {
          payload_slots += op.build_payload.size();
        }
        ExecStep create;
        create.kind = ExecStep::Kind::kCreateHashTable;
        create.op = &op;
        create.ht_capacity = std::max<uint64_t>(1, op.child(0)->bound_rows);
        create.ht_payload_bytes = payload_slots * 8;
        create.state_offset0 = ReserveState(op.id, StateSlot::kHashTable);
        out_->exec_steps.push_back(create);
        PipelineStep build{PipelineStep::Role::kBuild, &op, MakeTask(op, "build")};
        Lower(*op.child(0), {build});
        PipelineStep probe{PipelineStep::Role::kProbe, &op, MakeTask(op, "probe")};
        Lower(*op.child(1), prepend(probe));
        return;
      }
      case OpKind::kGroupBy: {
        GroupLayout layout = LayoutFor(op);
        ExecStep create;
        create.kind = ExecStep::Kind::kCreateHashTable;
        create.op = &op;
        create.ht_capacity = std::max<uint64_t>(1, op.child(0)->bound_rows);
        create.ht_payload_bytes = layout.payload_bytes;
        create.state_offset0 = ReserveState(op.id, StateSlot::kHashTable);
        out_->exec_steps.push_back(create);
        PipelineStep aggregate{PipelineStep::Role::kGroupByAggregate, &op,
                               MakeTask(op, "aggregate")};
        Lower(*op.child(0), {aggregate});
        PipelineStep scan{PipelineStep::Role::kGroupScanSource, &op, MakeTask(op, "scan groups")};
        AddPipeline(prepend(scan), "scan groups of " + op.label);
        return;
      }
      case OpKind::kGroupJoin: {
        GroupLayout layout = LayoutFor(op);
        ExecStep create;
        create.kind = ExecStep::Kind::kCreateHashTable;
        create.op = &op;
        create.ht_capacity = std::max<uint64_t>(1, op.child(0)->bound_rows);
        create.ht_payload_bytes = layout.payload_bytes;
        create.state_offset0 = ReserveState(op.id, StateSlot::kHashTable);
        out_->exec_steps.push_back(create);
        // Dataflow-graph operator fusion (paper Section 5.4): the fused operator's sections are
        // tracked as distinct tasks so samples map back to the original operators' roles.
        PipelineStep build{PipelineStep::Role::kGroupJoinBuild, &op,
                           MakeTask(op, "groupjoin-join(build)")};
        Lower(*op.child(0), {build});
        PipelineStep probe{PipelineStep::Role::kGroupJoinProbe, &op,
                           MakeTask(op, "groupjoin-join(probe)")};
        probe.task2 = MakeTask(op, "groupjoin-groupby");
        Lower(*op.child(1), {probe});
        PipelineStep scan{PipelineStep::Role::kGroupJoinScanSource, &op,
                          MakeTask(op, "scan groups")};
        AddPipeline(prepend(scan), "scan groups of " + op.label);
        return;
      }
      case OpKind::kSort: {
        uint32_t base_offset = ReserveState(op.id, StateSlot::kBufferBase);
        uint32_t count_offset = ReserveState(op.id, StateSlot::kBufferCount);
        uint64_t row_size = op.child(0)->output.size() * 8;
        ExecStep alloc;
        alloc.kind = ExecStep::Kind::kAllocBuffer;
        alloc.op = &op;
        alloc.buffer_bytes = std::max<uint64_t>(8, op.child(0)->bound_rows * row_size);
        alloc.state_offset0 = base_offset;
        alloc.state_offset1 = count_offset;
        out_->exec_steps.push_back(alloc);
        PipelineStep materialize{PipelineStep::Role::kSortMaterialize, &op,
                                 MakeTask(op, "materialize")};
        Lower(*op.child(0), {materialize});
        ExecStep sort;
        sort.kind = ExecStep::Kind::kSort;
        sort.op = &op;
        sort.state_offset0 = base_offset;
        sort.state_offset1 = count_offset;
        sort.sort_spec = 0;  // Filled by the codegen driver (needs the Runtime).
        out_->exec_steps.push_back(sort);
        sort_steps_.push_back(out_->exec_steps.size() - 1);
        PipelineStep scan{PipelineStep::Role::kSortScanSource, &op, MakeTask(op, "scan sorted")};
        AddPipeline(prepend(scan), "scan sorted of " + op.label);
        return;
      }
    }
    DFP_UNREACHABLE();
  }

 public:
  static GroupLayout LayoutFor(const PhysicalOp& op) {
    std::vector<ColumnType> key_types;
    std::vector<ColumnType> extra_types;
    if (op.kind == OpKind::kGroupBy) {
      for (int slot : op.group_keys) {
        key_types.push_back(op.child(0)->output[static_cast<size_t>(slot)].type);
      }
    } else {
      DFP_CHECK(op.kind == OpKind::kGroupJoin);
      for (int slot : op.build_keys) {
        key_types.push_back(op.child(0)->output[static_cast<size_t>(slot)].type);
      }
      for (int slot : op.build_payload) {
        extra_types.push_back(op.child(0)->output[static_cast<size_t>(slot)].type);
      }
    }
    return ComputeGroupLayout(key_types, extra_types, op.exprs);
  }

  std::vector<Pipeline> TakePipelines() { return std::move(pipelines_); }
  std::unordered_map<uint64_t, uint32_t> TakeStateOffsets() { return std::move(state_offsets_); }
  const std::vector<size_t>& sort_steps() const { return sort_steps_; }

 private:
  ProfilingSession* session_;
  CompiledQuery* out_;
  std::vector<Pipeline> pipelines_;
  std::unordered_map<uint64_t, uint32_t> state_offsets_;
  std::vector<size_t> sort_steps_;  // Indices of kSort exec steps (spec ids filled later).
};

// ---------------------------------------------------------------------------------------------
// Lowering step 2: one pipeline -> VIR.
// ---------------------------------------------------------------------------------------------

class PipelineEmitter {
 public:
  // In parallel mode pipeline functions take (state, morsel_begin, morsel_end) and every
  // cursor shared across morsels lives in the state block (see CodegenOptions::parallel).
  PipelineEmitter(Database& db, ProfilingSession* session, Pipeline& pipeline,
                  const std::unordered_map<uint64_t, uint32_t>& state_offsets,
                  const std::unordered_map<TaskId, uint32_t>* counter_offsets,
                  IrIdAllocator& ids, std::string fn_name, bool parallel,
                  const PlanLiterals* literals)
      : db_(db),
        session_(session),
        pipeline_(pipeline),
        state_offsets_(state_offsets),
        counter_offsets_(counter_offsets),
        parallel_(parallel),
        literals_(literals),
        fn_(std::move(fn_name), parallel ? 3 : 1),
        b_(&fn_, &ids) {
    if (session_ != nullptr) {
      b_.SetObserver([this](const IrInstr& instr) {
        // Lowering step 2's Tagging Dictionary log: Machine IR instruction -> active task.
        session_->dictionary().LinkInstr(instr.id, session_->task_tracker().Active());
      });
    }
  }

  IrFunction Take() { return std::move(fn_); }

  void Emit() {
    entry_block_ = b_.CreateBlock("entry");
    exit_block_ = b_.CreateBlock("exit");
    b_.SetInsertPoint(entry_block_);
    state_base_ = Value::Reg(0);
    {
      // The source task is active while the pipeline skeleton is generated.
      TaskScope scope(this, pipeline_.steps[0].task);
      EmitProlog();
      EmitSource();
    }
    b_.SetInsertPoint(exit_block_);
    {
      TaskScope scope(this, pipeline_.steps[0].task);
      EmitEpilog();
      b_.Ret();
    }
  }

 private:
  // RAII task-tracker scope (no-op without a session).
  class TaskScope {
   public:
    TaskScope(PipelineEmitter* emitter, TaskId task) : emitter_(emitter) {
      if (emitter_->session_ != nullptr && task != kNoTask) {
        emitter_->session_->task_tracker().Push(task);
        pushed_ = true;
      }
    }
    ~TaskScope() {
      if (pushed_) {
        emitter_->session_->task_tracker().Pop();
      }
    }

   private:
    PipelineEmitter* emitter_;
    bool pushed_ = false;
  };

  uint32_t StateOffset(OperatorId op, StateSlot purpose) const {
    auto it = state_offsets_.find(SlotKey(op, purpose));
    DFP_CHECK(it != state_offsets_.end());
    return it->second;
  }

  uint32_t LoadState(uint32_t offset, std::string comment = "") {
    return b_.Load(Opcode::kLoad8, state_base_, static_cast<int32_t>(offset),
                   std::move(comment));
  }

  void StoreState(uint32_t offset, Value value) {
    b_.Store(Opcode::kStore8, value, state_base_, static_cast<int32_t>(offset));
  }

  // --- Hash helpers (must match src/util/hash.h) ---

  uint32_t EmitKeyHash(const std::vector<SlotVal>& keys) {
    if (keys.empty()) {
      // Global aggregation: all tuples fall into one group under a fixed hash.
      return b_.Const(static_cast<int64_t>(0x517CC1B727220A95ull));
    }
    uint32_t hash = b_.EmitHash(keys[0].value);
    for (size_t i = 1; i < keys.size(); ++i) {
      uint32_t other = b_.EmitHash(keys[i].value);
      uint32_t rotated = b_.Binary(Opcode::kRotr, Value::Reg(hash), Value::Imm(17));
      uint32_t mixed = b_.Binary(Opcode::kMul, Value::Reg(other),
                                 Value::Imm(static_cast<int64_t>(kHashMultiplier)));
      hash = b_.Binary(Opcode::kXor, Value::Reg(rotated), Value::Reg(mixed));
    }
    return hash;
  }

  // Loads the directory head entry address for `hash` from a hoisted hash-table context.
  struct HtContext {
    uint32_t table = kNoVReg;
    uint32_t shift = kNoVReg;
    uint32_t directory = kNoVReg;
    uint32_t dir_count = kNoVReg;  // Only loaded for group scans.
  };

  uint32_t EmitDirectoryLookup(const HtContext& ht, uint32_t hash) {
    uint32_t index = b_.Binary(Opcode::kShr, Value::Reg(hash), Value::Reg(ht.shift));
    uint32_t offset = b_.Binary(Opcode::kShl, Value::Reg(index), Value::Imm(3));
    uint32_t slot = b_.Add(Value::Reg(ht.directory), Value::Reg(offset));
    return b_.Load(Opcode::kLoad8, Value::Reg(slot), 0, "directory lookup");
  }

  // --- Register Tagging (paper Section 4.2.5 / Listing 2) ---

  uint32_t TaggedCall(uint32_t callee, std::vector<Value> args, bool has_result, TaskId task,
                      const char* comment) {
    if (session_ != nullptr && session_->use_register_tagging() && task != kNoTask) {
      uint32_t saved = b_.GetTag();
      b_.AnnotateLast("save previous tag");
      int64_t tag = static_cast<int64_t>(task) + 1;
      if (session_->config().packed_tags) {
        // Multi-level chunking (Section 4.2.5): operator tag in the upper 32 bits.
        tag |= (static_cast<int64_t>(session_->dictionary().OperatorOf(task)) + 1) << 32;
      }
      b_.SetTag(Value::Imm(tag));
      b_.AnnotateLast("tag: " + session_->dictionary().task(task).name);
      uint32_t result = b_.Call(callee, std::move(args), has_result, comment);
      b_.SetTag(Value::Reg(saved));
      b_.AnnotateLast("restore tag");
      return result;
    }
    return b_.Call(callee, std::move(args), has_result, comment);
  }

  // --- Expression compilation (semantics mirror src/plan/eval.cc) ---

  Value Promote(SlotVal value, ColumnType to) {
    if (value.type == to ||
        (value.type == ColumnType::kDate && to == ColumnType::kInt64) ||
        (value.type == ColumnType::kInt64 && to == ColumnType::kDate) ||
        (value.type == ColumnType::kBool && to == ColumnType::kInt64)) {
      return value.value;
    }
    if (value.type == ColumnType::kInt64 && to == ColumnType::kDecimal) {
      return Value::Reg(b_.Mul(value.value, Value::Imm(kDecimalScale)));
    }
    if ((value.type == ColumnType::kInt64 || value.type == ColumnType::kDate ||
         value.type == ColumnType::kBool) &&
        to == ColumnType::kDouble) {
      return Value::Reg(b_.Unary(Opcode::kSiToFp, value.value, IrType::kF64));
    }
    if (value.type == ColumnType::kDecimal && to == ColumnType::kDouble) {
      uint32_t as_double = b_.Unary(Opcode::kSiToFp, value.value, IrType::kF64);
      return Value::Reg(b_.Binary(Opcode::kFDiv, Value::Reg(as_double),
                                  Value::ImmF(static_cast<double>(kDecimalScale)),
                                  IrType::kF64));
    }
    DFP_CHECK(false);
    return value.value;
  }

  // Literal slot of `expr` when compiling parameterized, kNoLiteralSlot otherwise (a
  // slot-less Value::Param degrades to a plain immediate).
  uint32_t LiteralSlot(const Expr& expr) const {
    return literals_ != nullptr ? literals_->SlotOf(expr) : kNoLiteralSlot;
  }

  SlotVal GenExpr(const Expr& expr, TupleContext& tuple) {
    switch (expr.kind) {
      case ExprKind::kColumnRef:
        return tuple.Get(expr.slot);
      case ExprKind::kLiteral: {
        const uint32_t slot = LiteralSlot(expr);
        if (expr.type == ColumnType::kDouble) {
          return {Value::Reg(b_.ConstF(std::bit_cast<double>(expr.literal), slot)),
                  ColumnType::kDouble};
        }
        return {Value::Reg(b_.Const(expr.literal, slot)), expr.type};
      }
      case ExprKind::kUnary: {
        SlotVal input = GenExpr(*expr.left, tuple);
        if (expr.un == UnOp::kNot) {
          return {Value::Reg(b_.CmpEq(input.value, Value::Imm(0))), ColumnType::kBool};
        }
        if (input.type == ColumnType::kDouble) {
          return {Value::Reg(b_.Unary(Opcode::kFNeg, input.value, IrType::kF64)),
                  ColumnType::kDouble};
        }
        return {Value::Reg(b_.Unary(Opcode::kNeg, input.value)), input.type};
      }
      case ExprKind::kBinary:
        return GenBinary(expr, tuple);
      case ExprKind::kCase:
        return GenCase(expr, tuple);
      case ExprKind::kLike: {
        SlotVal input = GenExpr(*expr.left, tuple);
        uint32_t pattern = db_.runtime().RegisterPattern(expr.pattern);
        // System-library call: deliberately NOT register-tagged (paper Table 2's
        // unattributed remainder). The pattern reaches the code as a registered id, so the
        // patchable site is the id-carrying call argument, not the string.
        uint32_t result = b_.Call(db_.runtime().str_like_fn(),
                                  {input.value, Value::Param(pattern, LiteralSlot(expr))},
                                  /*has_result=*/true, "like '" + expr.pattern + "'");
        return {Value::Reg(result), ColumnType::kBool};
      }
      case ExprKind::kInList: {
        SlotVal input = GenExpr(*expr.left, tuple);
        DFP_CHECK(!expr.list.empty());
        const uint32_t base = LiteralSlot(expr);
        uint32_t acc = b_.CmpEq(input.value, Value::Param(expr.list[0], base));
        for (size_t i = 1; i < expr.list.size(); ++i) {
          const uint32_t slot =
              base == kNoLiteralSlot ? kNoLiteralSlot : base + static_cast<uint32_t>(i);
          uint32_t other = b_.CmpEq(input.value, Value::Param(expr.list[i], slot));
          acc = b_.Binary(Opcode::kOr, Value::Reg(acc), Value::Reg(other));
        }
        return {Value::Reg(acc), ColumnType::kBool};
      }
      case ExprKind::kCast: {
        SlotVal input = GenExpr(*expr.left, tuple);
        return {Promote(input, expr.type), expr.type};
      }
      case ExprKind::kExtractYear: {
        // Civil-from-days (Hinnant) in straight-line integer arithmetic; our dates are all past
        // the epoch, so plain truncating division matches floor division throughout.
        SlotVal input = GenExpr(*expr.left, tuple);
        uint32_t z = b_.Add(input.value, Value::Imm(719468));
        uint32_t era = b_.Div(Value::Reg(z), Value::Imm(146097));
        uint32_t era_days = b_.Mul(Value::Reg(era), Value::Imm(146097));
        uint32_t doe = b_.Sub(Value::Reg(z), Value::Reg(era_days));
        uint32_t d1 = b_.Div(Value::Reg(doe), Value::Imm(1460));
        uint32_t d2 = b_.Div(Value::Reg(doe), Value::Imm(36524));
        uint32_t d3 = b_.Div(Value::Reg(doe), Value::Imm(146096));
        uint32_t t1 = b_.Sub(Value::Reg(doe), Value::Reg(d1));
        uint32_t t2 = b_.Add(Value::Reg(t1), Value::Reg(d2));
        uint32_t t3 = b_.Sub(Value::Reg(t2), Value::Reg(d3));
        uint32_t yoe = b_.Div(Value::Reg(t3), Value::Imm(365));
        uint32_t era_years = b_.Mul(Value::Reg(era), Value::Imm(400));
        uint32_t y = b_.Add(Value::Reg(yoe), Value::Reg(era_years));
        // doy = doe - (365*yoe + yoe/4 - yoe/100); mp = (5*doy + 2) / 153.
        uint32_t yd = b_.Mul(Value::Reg(yoe), Value::Imm(365));
        uint32_t leap = b_.Div(Value::Reg(yoe), Value::Imm(4));
        uint32_t cent = b_.Div(Value::Reg(yoe), Value::Imm(100));
        uint32_t base = b_.Add(Value::Reg(yd), Value::Reg(leap));
        uint32_t start = b_.Sub(Value::Reg(base), Value::Reg(cent));
        uint32_t doy = b_.Sub(Value::Reg(doe), Value::Reg(start));
        uint32_t scaled = b_.Mul(Value::Reg(doy), Value::Imm(5));
        uint32_t biased = b_.Add(Value::Reg(scaled), Value::Imm(2));
        uint32_t mp = b_.Div(Value::Reg(biased), Value::Imm(153));
        // January/February belong to the NEXT civil year of the March-based calendar.
        uint32_t is_jan_feb = b_.Binary(Opcode::kCmpGe, Value::Reg(mp), Value::Imm(10));
        uint32_t year = b_.Add(Value::Reg(y), Value::Reg(is_jan_feb));
        b_.AnnotateLast("extract year");
        return {Value::Reg(year), ColumnType::kInt64};
      }
      case ExprKind::kAggregate:
        DFP_CHECK(false);  // Aggregates are handled by the group-by emitters.
        return {};
    }
    DFP_UNREACHABLE();
  }

  SlotVal GenBinary(const Expr& expr, TupleContext& tuple) {
    const BinOp op = expr.bin;
    if (op == BinOp::kAnd || op == BinOp::kOr) {
      // Logic as a value: route through control flow for short-circuit semantics.
      uint32_t result = fn_.NewReg();
      uint32_t true_block = b_.CreateBlock("logic_true");
      uint32_t false_block = b_.CreateBlock("logic_false");
      uint32_t done = b_.CreateBlock("logic_done");
      EmitCondJump(expr, tuple, true_block, false_block, /*unconditional=*/true);
      b_.SetInsertPoint(true_block);
      b_.Copy(result, Value::Imm(1));
      b_.Br(done);
      b_.SetInsertPoint(false_block);
      b_.Copy(result, Value::Imm(0));
      b_.Br(done);
      b_.SetInsertPoint(done);
      return {Value::Reg(result), ColumnType::kBool};
    }
    SlotVal lhs = GenExpr(*expr.left, tuple);
    SlotVal rhs = GenExpr(*expr.right, tuple);
    if (IsComparison(op)) {
      return GenComparison(op, lhs, rhs);
    }
    const ColumnType result = expr.type;
    Value a = Promote(lhs, result);
    Value b = Promote(rhs, result);
    if (result == ColumnType::kDouble) {
      Opcode fop = op == BinOp::kAdd   ? Opcode::kFAdd
                   : op == BinOp::kSub ? Opcode::kFSub
                   : op == BinOp::kMul ? Opcode::kFMul
                                       : Opcode::kFDiv;
      DFP_CHECK(op == BinOp::kAdd || op == BinOp::kSub || op == BinOp::kMul ||
                op == BinOp::kDiv);
      return {Value::Reg(b_.Binary(fop, a, b, IrType::kF64)), ColumnType::kDouble};
    }
    switch (op) {
      case BinOp::kAdd:
        return {Value::Reg(b_.Add(a, b)), result};
      case BinOp::kSub:
        return {Value::Reg(b_.Sub(a, b)), result};
      case BinOp::kMul:
        if (result == ColumnType::kDecimal) {
          uint32_t product = b_.Mul(a, b);
          return {Value::Reg(b_.Div(Value::Reg(product), Value::Imm(kDecimalScale))), result};
        }
        return {Value::Reg(b_.Mul(a, b)), result};
      case BinOp::kDiv:
        if (result == ColumnType::kDecimal) {
          uint32_t scaled = b_.Mul(a, Value::Imm(kDecimalScale));
          return {Value::Reg(b_.Div(Value::Reg(scaled), b)), result};
        }
        return {Value::Reg(b_.Div(a, b)), result};
      case BinOp::kRem:
        return {Value::Reg(b_.Binary(Opcode::kRem, a, b)), result};
      default:
        DFP_CHECK(false);
        return {};
    }
  }

  SlotVal GenComparison(BinOp op, SlotVal lhs, SlotVal rhs) {
    // Strings: equality on interned payloads; ordering through the system library.
    if (lhs.type == ColumnType::kString) {
      if (op == BinOp::kEq) {
        return {Value::Reg(b_.CmpEq(lhs.value, rhs.value)), ColumnType::kBool};
      }
      if (op == BinOp::kNe) {
        return {Value::Reg(b_.CmpNe(lhs.value, rhs.value)), ColumnType::kBool};
      }
      uint32_t cmp = b_.Call(db_.runtime().str_cmp_fn(), {lhs.value, rhs.value},
                             /*has_result=*/true, "strcmp");
      return {Value::Reg(IntCompare(op, Value::Reg(cmp), Value::Imm(0))), ColumnType::kBool};
    }
    if (lhs.type == ColumnType::kDouble || rhs.type == ColumnType::kDouble) {
      Value a = Promote(lhs, ColumnType::kDouble);
      Value b = Promote(rhs, ColumnType::kDouble);
      Opcode fop = op == BinOp::kEq   ? Opcode::kFCmpEq
                   : op == BinOp::kNe ? Opcode::kFCmpNe
                   : op == BinOp::kLt ? Opcode::kFCmpLt
                   : op == BinOp::kLe ? Opcode::kFCmpLe
                   : op == BinOp::kGt ? Opcode::kFCmpGt
                                      : Opcode::kFCmpGe;
      return {Value::Reg(b_.Binary(fop, a, b, IrType::kF64)), ColumnType::kBool};
    }
    ColumnType common = lhs.type == rhs.type
                            ? lhs.type
                            : BinaryResultType(BinOp::kAdd, lhs.type, rhs.type);
    Value a = Promote(lhs, common);
    Value b = Promote(rhs, common);
    return {Value::Reg(IntCompare(op, a, b)), ColumnType::kBool};
  }

  uint32_t IntCompare(BinOp op, Value a, Value b) {
    Opcode opcode = op == BinOp::kEq   ? Opcode::kCmpEq
                    : op == BinOp::kNe ? Opcode::kCmpNe
                    : op == BinOp::kLt ? Opcode::kCmpLt
                    : op == BinOp::kLe ? Opcode::kCmpLe
                    : op == BinOp::kGt ? Opcode::kCmpGt
                                       : Opcode::kCmpGe;
    return b_.Binary(opcode, a, b);
  }

  SlotVal GenCase(const Expr& expr, TupleContext& tuple) {
    uint32_t result = fn_.NewReg();
    uint32_t done = b_.CreateBlock("case_done");
    auto snapshot = tuple.Snapshot();
    for (const auto& [cond, value] : expr.whens) {
      uint32_t then_block = b_.CreateBlock("case_then");
      uint32_t next_block = b_.CreateBlock("case_next");
      EmitCondJump(*cond, tuple, then_block, next_block, /*unconditional=*/false);
      b_.SetInsertPoint(then_block);
      tuple.Restore(snapshot);
      SlotVal v = GenExpr(*value, tuple);
      b_.Copy(result, v.value, expr.type == ColumnType::kDouble ? IrType::kF64 : IrType::kI64);
      b_.Br(done);
      b_.SetInsertPoint(next_block);
      tuple.Restore(snapshot);
    }
    SlotVal v = GenExpr(*expr.else_value, tuple);
    b_.Copy(result, v.value, expr.type == ColumnType::kDouble ? IrType::kF64 : IrType::kI64);
    b_.Br(done);
    b_.SetInsertPoint(done);
    tuple.Restore(snapshot);
    return {Value::Reg(result), expr.type};
  }

  // Emits a conditional jump on `expr` with short-circuit AND/OR. `unconditional` means the
  // current emission point is reached on every evaluation of the predicate (so tuple-cache
  // effects may persist); conditionally evaluated legs snapshot and restore the cache.
  void EmitCondJump(const Expr& expr, TupleContext& tuple, uint32_t if_true, uint32_t if_false,
                    bool unconditional) {
    if (expr.kind == ExprKind::kBinary && expr.bin == BinOp::kAnd) {
      uint32_t mid = b_.CreateBlock("and_rhs");
      EmitCondJump(*expr.left, tuple, mid, if_false, unconditional);
      b_.SetInsertPoint(mid);
      EmitCondJump(*expr.right, tuple, if_true, if_false, /*unconditional=*/false);
      return;
    }
    if (expr.kind == ExprKind::kBinary && expr.bin == BinOp::kOr) {
      uint32_t mid = b_.CreateBlock("or_rhs");
      EmitCondJump(*expr.left, tuple, if_true, mid, unconditional);
      b_.SetInsertPoint(mid);
      EmitCondJump(*expr.right, tuple, if_true, if_false, /*unconditional=*/false);
      return;
    }
    if (expr.kind == ExprKind::kUnary && expr.un == UnOp::kNot) {
      EmitCondJump(*expr.left, tuple, if_false, if_true, unconditional);
      return;
    }
    if (unconditional) {
      SlotVal cond = GenExpr(expr, tuple);
      b_.CondBr(cond.value, if_true, if_false);
      return;
    }
    auto snapshot = tuple.Snapshot();
    SlotVal cond = GenExpr(expr, tuple);
    b_.CondBr(cond.value, if_true, if_false);
    tuple.Restore(std::move(snapshot));
  }

  // --- Pipeline skeleton ---

  void EmitProlog() {
    // Hoist loop-invariant state (hash-table headers, buffer bases, counters) into registers.
    step_states_.resize(pipeline_.steps.size());
    for (size_t i = 0; i < pipeline_.steps.size(); ++i) {
      const PipelineStep& step = pipeline_.steps[i];
      TaskScope scope(this, step.task);
      StepState& state = step_states_[i];
      switch (step.role) {
        case PipelineStep::Role::kBuild:
        case PipelineStep::Role::kProbe:
        case PipelineStep::Role::kGroupByAggregate:
        case PipelineStep::Role::kGroupJoinBuild:
        case PipelineStep::Role::kGroupJoinProbe:
        case PipelineStep::Role::kGroupScanSource:
        case PipelineStep::Role::kGroupJoinScanSource: {
          uint32_t offset = StateOffset(step.op->id, StateSlot::kHashTable);
          state.ht.table = LoadState(offset, "hash table of " + StepLabel(step));
          state.ht.shift = b_.Load(Opcode::kLoad8, Value::Reg(state.ht.table),
                                   static_cast<int32_t>(kHtDirShift));
          state.ht.directory = b_.Load(Opcode::kLoad8, Value::Reg(state.ht.table),
                                       static_cast<int32_t>(kHtDirBase));
          if (step.role == PipelineStep::Role::kGroupScanSource ||
              step.role == PipelineStep::Role::kGroupJoinScanSource) {
            state.ht.dir_count = b_.Load(Opcode::kLoad8, Value::Reg(state.ht.table),
                                         static_cast<int32_t>(kHtDirCount));
          }
          break;
        }
        case PipelineStep::Role::kSortMaterialize: {
          state.buf_base = LoadState(StateOffset(step.op->id, StateSlot::kBufferBase));
          if (!parallel_) {
            state.cursor = b_.Const(0);
          }
          break;
        }
        case PipelineStep::Role::kSortScanSource: {
          state.buf_base = LoadState(StateOffset(step.op->id, StateSlot::kBufferBase));
          uint32_t count = LoadState(StateOffset(step.op->id, StateSlot::kBufferCount));
          if (step.op->limit >= 0) {
            uint32_t over = b_.Binary(Opcode::kCmpGt, Value::Reg(count),
                                      Value::Imm(step.op->limit));
            count = b_.Select(Value::Reg(over), Value::Imm(step.op->limit), Value::Reg(count));
          }
          state.row_count = count;
          break;
        }
        case PipelineStep::Role::kLimit:
          if (!parallel_) {
            state.cursor = b_.Const(0);
          }
          break;
        case PipelineStep::Role::kOutput: {
          state.buf_base = LoadState(StateOffset(step.op->id, StateSlot::kOutBase));
          if (!parallel_) {
            state.cursor = b_.Const(0);
          }
          break;
        }
        default:
          break;
      }
      if (CountingEnabled(step) && !parallel_) {
        state.tuple_counter = b_.Const(0);
        b_.AnnotateLast("tuple counter");
      }
    }
  }

  void EmitEpilog() {
    if (parallel_) {
      // Shared cursors and counters are updated in the state block tuple by tuple (modeled
      // atomic fetch-adds); there is nothing to write back per morsel.
      return;
    }
    // Store live counters back to the state block.
    for (size_t i = 0; i < pipeline_.steps.size(); ++i) {
      const PipelineStep& step = pipeline_.steps[i];
      TaskScope scope(this, step.task);
      const StepState& state = step_states_[i];
      if (CountingEnabled(step)) {
        StoreState(counter_offsets_->at(step.task), Value::Reg(state.tuple_counter));
      }
      switch (step.role) {
        case PipelineStep::Role::kSortMaterialize:
          StoreState(StateOffset(step.op->id, StateSlot::kBufferCount),
                     Value::Reg(state.cursor));
          break;
        case PipelineStep::Role::kOutput:
          StoreState(StateOffset(step.op->id, StateSlot::kOutCount), Value::Reg(state.cursor));
          break;
        default:
          break;
      }
    }
  }

  std::string StepLabel(const PipelineStep& step) const {
    return step.op->label.empty() ? OpKindName(step.op->kind) : step.op->label;
  }

  void EmitSource() {
    const PipelineStep& source = pipeline_.steps[0];
    switch (source.role) {
      case PipelineStep::Role::kScanSource:
        EmitTableScan(source);
        break;
      case PipelineStep::Role::kGroupScanSource:
      case PipelineStep::Role::kGroupJoinScanSource:
        EmitGroupScan(source);
        break;
      case PipelineStep::Role::kSortScanSource:
        EmitSortScan(source);
        break;
      default:
        DFP_CHECK(false);
    }
  }

  void EmitTableScan(const PipelineStep& step) {
    const Table& table = *step.op->table;
    uint32_t head = b_.CreateBlock("loopTuples");
    uint32_t body = b_.CreateBlock("scanBody");
    uint32_t cont = b_.CreateBlock("contScan");
    uint32_t tid;
    if (parallel_) {
      // The morsel bounds arrive in the argument registers: tid runs [begin, end).
      tid = 1;  // morsel_begin, advanced in place.
    } else {
      tid = b_.Const(0);
      b_.AnnotateLast("tuple id");
    }
    b_.Br(head);

    b_.SetInsertPoint(head);
    uint32_t more =
        parallel_ ? b_.CmpLt(Value::Reg(tid), Value::Reg(2))
                  : b_.CmpLt(Value::Reg(tid),
                             Value::Imm(static_cast<int64_t>(table.row_count())));
    b_.CondBr(Value::Reg(more), body, exit_block_);

    b_.SetInsertPoint(body);
    // Lazy column loaders: address = column base (immediate) + tid * width.
    std::vector<TupleContext::Loader> loaders;
    for (size_t c = 0; c < table.schema().columns.size(); ++c) {
      const ColumnType type = table.schema().columns[c].type;
      const VAddr base = table.column_base(c);
      const std::string column_name = table.schema().columns[c].name;
      const TaskId task = step.task;
      loaders.push_back([this, type, base, tid, column_name, task]() -> SlotVal {
        // Column loads belong to the scan task even when triggered while generating a consumer.
        TaskScope scope(this, task);
        uint32_t width = ColumnWidth(type);
        uint32_t offset =
            width == 1 ? tid
                       : b_.Binary(Opcode::kShl, Value::Reg(tid),
                                   Value::Imm(width == 4 ? 2 : 3));
        uint32_t addr = b_.Add(Value::Imm(static_cast<int64_t>(base)), Value::Reg(offset));
        uint32_t value = b_.Load(LoadOpcodeFor(type), Value::Reg(addr), 0, column_name);
        return SlotVal{Value::Reg(value), type};
      });
    }
    TupleContext tuple(std::move(loaders));
    CountTuple(0);
    continue_stack_.push_back(cont);
    EmitSteps(1, tuple);
    continue_stack_.pop_back();
    b_.Br(cont);

    b_.SetInsertPoint(cont);
    b_.Assign(tid, Opcode::kAdd, Value::Reg(tid), Value::Imm(1));
    b_.Br(head);
  }

  void EmitGroupScan(const PipelineStep& step) {
    const bool is_groupjoin = step.role == PipelineStep::Role::kGroupJoinScanSource;
    const StepState& state = step_states_[0];
    GroupLayout layout = PlanLowering::LayoutFor(*step.op);

    uint32_t slot_head = b_.CreateBlock("loopSlots");
    uint32_t slot_body = b_.CreateBlock("slotBody");
    uint32_t chain_head = b_.CreateBlock("loopChain");
    uint32_t chain_body = b_.CreateBlock("chainBody");
    uint32_t chain_cont = b_.CreateBlock("contChain");
    uint32_t slot_cont = b_.CreateBlock("contSlots");

    uint32_t slot_index = b_.Const(0);
    uint32_t entry = b_.Const(0);
    b_.Br(slot_head);

    b_.SetInsertPoint(slot_head);
    uint32_t more = b_.CmpLt(Value::Reg(slot_index), Value::Reg(state.ht.dir_count));
    b_.CondBr(Value::Reg(more), slot_body, exit_block_);

    b_.SetInsertPoint(slot_body);
    uint32_t offset = b_.Binary(Opcode::kShl, Value::Reg(slot_index), Value::Imm(3));
    uint32_t slot_addr = b_.Add(Value::Reg(state.ht.directory), Value::Reg(offset));
    b_.Assign(entry, Opcode::kLoad8, Value::Reg(slot_addr), Value::None());
    b_.Br(chain_head);

    b_.SetInsertPoint(chain_head);
    uint32_t is_null = b_.CmpEq(Value::Reg(entry), Value::Imm(0));
    b_.CondBr(Value::Reg(is_null), slot_cont, chain_body);

    b_.SetInsertPoint(chain_body);
    // Tuple loaders over the group entry. GroupBy outputs its keys followed by the aggregates;
    // GroupJoin outputs its build payload followed by the aggregates (its keys are only output
    // if they are part of the payload).
    std::vector<TupleContext::Loader> loaders;
    if (!is_groupjoin) {
      for (size_t k = 0; k < layout.key_types.size(); ++k) {
        const ColumnType type = layout.key_types[k];
        const int64_t key_offset = kHtEntryPayload + layout.KeyOffset(k);
        const TaskId task = step.task;
        loaders.push_back([this, type, entry, key_offset, task]() -> SlotVal {
          TaskScope scope(this, task);
          uint32_t value = b_.Load(Opcode::kLoad8, Value::Reg(entry),
                                   static_cast<int32_t>(key_offset), "group key");
          return SlotVal{Value::Reg(value), type};
        });
      }
    }
    if (is_groupjoin) {
      for (size_t e = 0; e < layout.extra_types.size(); ++e) {
        const ColumnType type = layout.extra_types[e];
        const int64_t extra_offset = kHtEntryPayload + layout.ExtraOffset(e);
        const TaskId task = step.task;
        loaders.push_back([this, type, entry, extra_offset, task]() -> SlotVal {
          TaskScope scope(this, task);
          uint32_t value = b_.Load(Opcode::kLoad8, Value::Reg(entry),
                                   static_cast<int32_t>(extra_offset), "group payload");
          return SlotVal{Value::Reg(value), type};
        });
      }
    }
    for (const AggSlot& agg : layout.aggs) {
      const TaskId task = step.task;
      loaders.push_back([this, agg, entry, task]() -> SlotVal {
        TaskScope scope(this, task);
        return FinalizeAggregate(agg, entry);
      });
    }
    TupleContext tuple(std::move(loaders));
    CountTuple(0);
    continue_stack_.push_back(chain_cont);
    EmitSteps(1, tuple);
    continue_stack_.pop_back();
    b_.Br(chain_cont);

    b_.SetInsertPoint(chain_cont);
    b_.Assign(entry, Opcode::kLoad8, Value::Reg(entry), Value::None());
    fn_.block(chain_cont).instrs.back().disp = static_cast<int32_t>(kHtEntryNext);
    b_.Br(chain_head);

    b_.SetInsertPoint(slot_cont);
    b_.Assign(slot_index, Opcode::kAdd, Value::Reg(slot_index), Value::Imm(1));
    b_.Br(slot_head);
  }

  SlotVal FinalizeAggregate(const AggSlot& agg, uint32_t entry) {
    switch (agg.op) {
      case AggOp::kSum:
      case AggOp::kMin:
      case AggOp::kMax: {
        uint32_t value = b_.Load(Opcode::kLoad8, Value::Reg(entry),
                                 static_cast<int32_t>(kHtEntryPayload + agg.offset),
                                 "aggregate");
        return {Value::Reg(value), agg.out_type};
      }
      case AggOp::kCount:
      case AggOp::kCountStar: {
        uint32_t value = b_.Load(Opcode::kLoad8, Value::Reg(entry),
                                 static_cast<int32_t>(kHtEntryPayload + agg.offset), "count");
        return {Value::Reg(value), ColumnType::kInt64};
      }
      case AggOp::kAvg: {
        uint32_t sum = b_.Load(Opcode::kLoad8, Value::Reg(entry),
                               static_cast<int32_t>(kHtEntryPayload + agg.offset), "avg sum");
        uint32_t count = b_.Load(Opcode::kLoad8, Value::Reg(entry),
                                 static_cast<int32_t>(kHtEntryPayload + agg.offset2),
                                 "avg count");
        Value sum_double = Promote({Value::Reg(sum), agg.in_type == ColumnType::kDouble
                                                         ? ColumnType::kDouble
                                                         : agg.in_type},
                                   ColumnType::kDouble);
        uint32_t count_double = b_.Unary(Opcode::kSiToFp, Value::Reg(count), IrType::kF64);
        uint32_t avg = b_.Binary(Opcode::kFDiv, sum_double, Value::Reg(count_double),
                                 IrType::kF64);
        return {Value::Reg(avg), ColumnType::kDouble};
      }
    }
    DFP_UNREACHABLE();
  }

  void EmitSortScan(const PipelineStep& step) {
    const StepState& state = step_states_[0];
    const uint64_t row_size = step.op->child(0)->output.size() * 8;
    uint32_t head = b_.CreateBlock("loopRows");
    uint32_t body = b_.CreateBlock("rowBody");
    uint32_t cont = b_.CreateBlock("contRows");
    uint32_t row = b_.Const(0);
    b_.Br(head);

    b_.SetInsertPoint(head);
    uint32_t more = b_.CmpLt(Value::Reg(row), Value::Reg(state.row_count));
    b_.CondBr(Value::Reg(more), body, exit_block_);

    b_.SetInsertPoint(body);
    uint32_t row_offset = b_.Mul(Value::Reg(row), Value::Imm(static_cast<int64_t>(row_size)));
    uint32_t row_addr = b_.Add(Value::Reg(state.buf_base), Value::Reg(row_offset));
    std::vector<TupleContext::Loader> loaders;
    for (size_t c = 0; c < step.op->output.size(); ++c) {
      const ColumnType type = step.op->output[c].type;
      const int32_t disp = static_cast<int32_t>(c * 8);
      const TaskId task = step.task;
      loaders.push_back([this, type, row_addr, disp, task]() -> SlotVal {
        TaskScope scope(this, task);
        uint32_t value = b_.Load(Opcode::kLoad8, Value::Reg(row_addr), disp, "sorted column");
        return SlotVal{Value::Reg(value), type};
      });
    }
    TupleContext tuple(std::move(loaders));
    CountTuple(0);
    continue_stack_.push_back(cont);
    EmitSteps(1, tuple);
    continue_stack_.pop_back();
    b_.Br(cont);

    b_.SetInsertPoint(cont);
    b_.Assign(row, Opcode::kAdd, Value::Reg(row), Value::Imm(1));
    b_.Br(head);
  }

  // --- Consumer steps ---

  void EmitSteps(size_t index, TupleContext& tuple) {
    DFP_CHECK(index < pipeline_.steps.size());
    const PipelineStep& step = pipeline_.steps[index];
    TaskScope scope(this, step.task);
    switch (step.role) {
      case PipelineStep::Role::kFilter: {
        uint32_t pass = b_.CreateBlock("filterPass");
        EmitCondJump(*step.op->exprs[0], tuple, pass, continue_stack_.back(),
                     /*unconditional=*/true);
        b_.SetInsertPoint(pass);
        CountTuple(index);
        EmitSteps(index + 1, tuple);
        return;
      }
      case PipelineStep::Role::kMap: {
        CountTuple(index);
        if (step.op->projecting) {
          std::vector<TupleContext::Loader> loaders;
          for (const ExprPtr& expr : step.op->exprs) {
            SlotVal value = GenExpr(*expr, tuple);  // Projections are cheap refs; eager is fine.
            loaders.push_back([value] { return value; });
          }
          tuple.Replace(std::move(loaders));
        } else {
          for (const ExprPtr& expr : step.op->exprs) {
            tuple.AppendValue(GenExpr(*expr, tuple));
          }
        }
        EmitSteps(index + 1, tuple);
        return;
      }
      case PipelineStep::Role::kLimit:
        EmitLimit(index, tuple);
        return;
      case PipelineStep::Role::kBuild:
        EmitJoinBuild(index, tuple);
        return;
      case PipelineStep::Role::kProbe:
        EmitJoinProbe(index, tuple);
        return;
      case PipelineStep::Role::kGroupByAggregate:
        EmitGroupAggregate(index, tuple, /*is_groupjoin_probe=*/false);
        return;
      case PipelineStep::Role::kGroupJoinBuild:
        EmitGroupJoinBuild(index, tuple);
        return;
      case PipelineStep::Role::kGroupJoinProbe:
        EmitGroupAggregate(index, tuple, /*is_groupjoin_probe=*/true);
        return;
      case PipelineStep::Role::kSortMaterialize:
      case PipelineStep::Role::kOutput:
        EmitMaterialize(index, tuple);
        return;
      default:
        DFP_CHECK(false);
    }
  }

  void EmitLimit(size_t index, TupleContext& tuple) {
    const PipelineStep& step = pipeline_.steps[index];
    StepState& state = step_states_[index];
    if (parallel_) {
      // The limit counter is shared across morsels: load it from the state block, check, and
      // publish the increment (modeled atomic fetch-add) before the downstream steps run.
      const uint32_t offset = StateOffset(step.op->id, StateSlot::kLimitCounter);
      uint32_t cursor = LoadState(offset, "shared limit counter");
      uint32_t over = b_.Binary(Opcode::kCmpGe, Value::Reg(cursor),
                                Value::Imm(step.op->limit));
      uint32_t go = b_.CreateBlock("limitPass");
      b_.CondBr(Value::Reg(over), exit_block_, go);
      b_.SetInsertPoint(go);
      uint32_t next = b_.Add(Value::Reg(cursor), Value::Imm(1));
      StoreState(offset, Value::Reg(next));
      CountTuple(index);
      EmitSteps(index + 1, tuple);
      return;
    }
    uint32_t over = b_.Binary(Opcode::kCmpGe, Value::Reg(state.cursor),
                              Value::Imm(step.op->limit));
    uint32_t go = b_.CreateBlock("limitPass");
    // Limit reached: leave the whole pipeline.
    b_.CondBr(Value::Reg(over), exit_block_, go);
    b_.SetInsertPoint(go);
    b_.Assign(state.cursor, Opcode::kAdd, Value::Reg(state.cursor), Value::Imm(1));
    CountTuple(index);
    EmitSteps(index + 1, tuple);
  }

  void EmitMaterialize(size_t index, TupleContext& tuple) {
    const PipelineStep& step = pipeline_.steps[index];
    StepState& state = step_states_[index];
    const size_t columns = step.role == PipelineStep::Role::kOutput
                               ? step.op->output.size()
                               : step.op->child(0)->output.size();
    CountTuple(index);
    uint32_t cursor;
    if (parallel_) {
      // Claim an output slot from the shared counter (modeled atomic fetch-add): the claim is
      // published before the row is written, so concurrent morsels never reuse a slot.
      const uint32_t count_offset =
          step.role == PipelineStep::Role::kOutput
              ? StateOffset(step.op->id, StateSlot::kOutCount)
              : StateOffset(step.op->id, StateSlot::kBufferCount);
      cursor = LoadState(count_offset, "claim output slot");
      uint32_t next = b_.Add(Value::Reg(cursor), Value::Imm(1));
      StoreState(count_offset, Value::Reg(next));
    } else {
      cursor = state.cursor;
    }
    uint32_t row_offset = b_.Mul(Value::Reg(cursor),
                                 Value::Imm(static_cast<int64_t>(columns * 8)));
    uint32_t row_addr = b_.Add(Value::Reg(state.buf_base), Value::Reg(row_offset));
    for (size_t c = 0; c < columns; ++c) {
      SlotVal value = tuple.Get(static_cast<int>(c));
      b_.Store(Opcode::kStore8, value.value, Value::Reg(row_addr),
               static_cast<int32_t>(c * 8), "materialize column");
    }
    if (!parallel_) {
      b_.Assign(state.cursor, Opcode::kAdd, Value::Reg(state.cursor), Value::Imm(1));
    }
  }

  void EmitJoinBuild(size_t index, TupleContext& tuple) {
    const PipelineStep& step = pipeline_.steps[index];
    const PhysicalOp& op = *step.op;
    const StepState& state = step_states_[index];
    CountTuple(index);
    std::vector<SlotVal> keys;
    for (int slot : op.build_keys) {
      keys.push_back(tuple.Get(slot));
    }
    uint32_t hash = EmitKeyHash(keys);
    uint32_t entry = TaggedCall(InsertFn(),
                                {Value::Reg(state.ht.table), Value::Reg(hash)},
                                /*has_result=*/true, step.task, "insert build tuple");
    int32_t offset = static_cast<int32_t>(kHtEntryPayload);
    for (const SlotVal& key : keys) {
      b_.Store(Opcode::kStore8, key.value, Value::Reg(entry), offset, "store key");
      offset += 8;
    }
    if (op.join_type == JoinType::kInner) {
      for (int slot : op.build_payload) {
        SlotVal value = tuple.Get(slot);
        b_.Store(Opcode::kStore8, value.value, Value::Reg(entry), offset, "store payload");
        offset += 8;
      }
    }
  }

  void EmitJoinProbe(size_t index, TupleContext& tuple) {
    const PipelineStep& step = pipeline_.steps[index];
    const PhysicalOp& op = *step.op;
    const StepState& state = step_states_[index];

    std::vector<SlotVal> keys;
    for (int slot : op.probe_keys) {
      keys.push_back(tuple.Get(slot));
    }
    uint32_t hash = EmitKeyHash(keys);
    uint32_t entry = fn_.NewReg();
    b_.Copy(entry, Value::Reg(EmitDirectoryLookup(state.ht, hash)));

    uint32_t chain_head = b_.CreateBlock("loopHashChain");
    uint32_t chain_body = b_.CreateBlock("chainCompare");
    uint32_t match = b_.CreateBlock("chainMatch");
    uint32_t advance = b_.CreateBlock("contProbe");
    const uint32_t outer_cont = continue_stack_.back();

    // Anti joins track whether any match was seen.
    uint32_t found = kNoVReg;
    uint32_t after_chain = kNoBlock;
    if (op.join_type == JoinType::kAnti) {
      found = b_.Const(0);
      b_.AnnotateLast("anti-join match flag");
      after_chain = b_.CreateBlock("antiCheck");
    }
    const uint32_t chain_exit = op.join_type == JoinType::kAnti ? after_chain : outer_cont;
    b_.Br(chain_head);

    b_.SetInsertPoint(chain_head);
    uint32_t is_null = b_.CmpEq(Value::Reg(entry), Value::Imm(0));
    b_.CondBr(Value::Reg(is_null), chain_exit, chain_body);

    b_.SetInsertPoint(chain_body);
    uint32_t entry_hash = b_.Load(Opcode::kLoad8, Value::Reg(entry),
                                  static_cast<int32_t>(kHtEntryHash), "entry hash");
    uint32_t hash_eq = b_.CmpEq(Value::Reg(entry_hash), Value::Reg(hash));
    b_.CondBr(Value::Reg(hash_eq), match, advance);

    b_.SetInsertPoint(match);
    // Compare the stored keys (hash equality is not key equality).
    for (size_t k = 0; k < keys.size(); ++k) {
      uint32_t stored = b_.Load(Opcode::kLoad8, Value::Reg(entry),
                                static_cast<int32_t>(kHtEntryPayload + k * 8), "stored key");
      uint32_t equal = b_.CmpEq(Value::Reg(stored), keys[k].value);
      uint32_t next_check = b_.CreateBlock("keyEqual");
      b_.CondBr(Value::Reg(equal), next_check, advance);
      b_.SetInsertPoint(next_check);
    }
    switch (op.join_type) {
      case JoinType::kInner: {
        // Extend the tuple with build payload loaders reading from the matched entry. The tuple
        // is not consulted again after the consume chain below returns, so no restore is needed.
        for (size_t p = 0; p < op.build_payload.size(); ++p) {
          const int build_slot = op.build_payload[p];
          const ColumnType type =
              op.child(0)->output[static_cast<size_t>(build_slot)].type;
          const int32_t disp =
              static_cast<int32_t>(kHtEntryPayload + (op.build_keys.size() + p) * 8);
          const TaskId task = step.task;
          tuple.Append([this, type, entry, disp, task]() -> SlotVal {
            TaskScope scope(this, task);
            uint32_t value = b_.Load(Opcode::kLoad8, Value::Reg(entry), disp, "build payload");
            return SlotVal{Value::Reg(value), type};
          });
        }
        CountTuple(index);
        continue_stack_.push_back(advance);
        EmitSteps(index + 1, tuple);
        continue_stack_.pop_back();
        b_.Br(advance);
        break;
      }
      case JoinType::kSemi: {
        CountTuple(index);
        EmitSteps(index + 1, tuple);
        b_.Br(outer_cont);  // Emit at most once per probe tuple.
        break;
      }
      case JoinType::kAnti:
        b_.Copy(found, Value::Imm(1));
        b_.Br(outer_cont);  // A match disqualifies the tuple; stop walking.
        break;
    }

    b_.SetInsertPoint(advance);
    b_.Assign(entry, Opcode::kLoad8, Value::Reg(entry), Value::None());
    fn_.block(advance).instrs.back().disp = static_cast<int32_t>(kHtEntryNext);
    b_.Br(chain_head);

    if (op.join_type == JoinType::kAnti) {
      b_.SetInsertPoint(after_chain);
      uint32_t no_match = b_.CmpEq(Value::Reg(found), Value::Imm(0));
      uint32_t emit_block = b_.CreateBlock("antiEmit");
      b_.CondBr(Value::Reg(no_match), emit_block, outer_cont);
      b_.SetInsertPoint(emit_block);
      CountTuple(index);
      EmitSteps(index + 1, tuple);
      // Falls through to the outer continue via the caller's closing branch... but the caller
      // closes the SOURCE body block; here we must close explicitly.
      b_.Br(outer_cont);
      // Park the builder in a dead block so the caller's closing `br` lands harmlessly.
      b_.SetInsertPoint(b_.CreateBlock("probeDone"));
    }
    if (op.join_type == JoinType::kInner || op.join_type == JoinType::kSemi) {
      // The caller will emit `br` to its continue target after we return; park the builder in a
      // fresh dead block so that branch is unreachable but well-formed.
      b_.SetInsertPoint(b_.CreateBlock("probeDone"));
    }
  }

  void EmitGroupJoinBuild(size_t index, TupleContext& tuple) {
    const PipelineStep& step = pipeline_.steps[index];
    const PhysicalOp& op = *step.op;
    const StepState& state = step_states_[index];
    GroupLayout layout = PlanLowering::LayoutFor(op);
    CountTuple(index);
    std::vector<SlotVal> keys;
    for (int slot : op.build_keys) {
      keys.push_back(tuple.Get(slot));
    }
    uint32_t hash = EmitKeyHash(keys);
    uint32_t entry = TaggedCall(InsertFn(),
                                {Value::Reg(state.ht.table), Value::Reg(hash)},
                                /*has_result=*/true, step.task, "insert group");
    for (size_t k = 0; k < keys.size(); ++k) {
      b_.Store(Opcode::kStore8, keys[k].value, Value::Reg(entry),
               static_cast<int32_t>(kHtEntryPayload + layout.KeyOffset(k)), "store group key");
    }
    for (size_t p = 0; p < op.build_payload.size(); ++p) {
      SlotVal value = tuple.Get(op.build_payload[p]);
      b_.Store(Opcode::kStore8, value.value, Value::Reg(entry),
               static_cast<int32_t>(kHtEntryPayload + layout.ExtraOffset(p)),
               "store group payload");
    }
    // Aggregate slots start at zero (fresh memory); min/max get their init on first update via
    // the count==0 check... GroupJoin aggregates use sum/count/avg only; enforced here.
    for (const AggSlot& agg : layout.aggs) {
      DFP_CHECK(agg.op == AggOp::kSum || agg.op == AggOp::kCount ||
                agg.op == AggOp::kCountStar || agg.op == AggOp::kAvg);
    }
  }

  // Shared by GroupBy's input side and GroupJoin's probe side. For GroupBy, a missing group is
  // inserted; for GroupJoin-probe, a missing group means no join partner and the tuple is
  // dropped.
  void EmitGroupAggregate(size_t index, TupleContext& tuple, bool is_groupjoin_probe) {
    const PipelineStep& step = pipeline_.steps[index];
    const PhysicalOp& op = *step.op;
    const StepState& state = step_states_[index];
    GroupLayout layout = PlanLowering::LayoutFor(op);
    CountTuple(index);

    std::vector<SlotVal> keys;
    const std::vector<int>& key_slots = is_groupjoin_probe ? op.probe_keys : op.group_keys;
    for (int slot : key_slots) {
      keys.push_back(tuple.Get(slot));
    }
    // Aggregate inputs are computed up front (they are needed on both the update and the
    // insert path). This is where expensive per-tuple expressions (e.g. the paper's chained
    // divisions) are generated — attributed to the aggregation task.
    TaskId agg_task = is_groupjoin_probe ? step.task2 : step.task;
    std::vector<SlotVal> inputs(layout.aggs.size());
    {
      TaskScope agg_scope(this, agg_task);
      for (size_t a = 0; a < layout.aggs.size(); ++a) {
        if (op.exprs[a]->left != nullptr) {
          inputs[a] = GenExpr(*op.exprs[a]->left, tuple);
        }
      }
    }

    uint32_t hash = EmitKeyHash(keys);
    uint32_t entry = fn_.NewReg();
    b_.Copy(entry, Value::Reg(EmitDirectoryLookup(state.ht, hash)));

    uint32_t chain_head = b_.CreateBlock("findGroup");
    uint32_t chain_body = b_.CreateBlock("groupCompare");
    uint32_t found_block = b_.CreateBlock("groupFound");
    uint32_t advance = b_.CreateBlock("contGroupChain");
    uint32_t miss = b_.CreateBlock("groupMiss");
    uint32_t done = b_.CreateBlock("groupDone");

    b_.Br(chain_head);
    b_.SetInsertPoint(chain_head);
    uint32_t is_null = b_.CmpEq(Value::Reg(entry), Value::Imm(0));
    b_.CondBr(Value::Reg(is_null), miss, chain_body);

    b_.SetInsertPoint(chain_body);
    uint32_t entry_hash = b_.Load(Opcode::kLoad8, Value::Reg(entry),
                                  static_cast<int32_t>(kHtEntryHash), "entry hash");
    uint32_t hash_eq = b_.CmpEq(Value::Reg(entry_hash), Value::Reg(hash));
    uint32_t key_check = b_.CreateBlock("groupKeyCheck");
    b_.CondBr(Value::Reg(hash_eq), key_check, advance);
    b_.SetInsertPoint(key_check);
    for (size_t k = 0; k < keys.size(); ++k) {
      uint32_t stored =
          b_.Load(Opcode::kLoad8, Value::Reg(entry),
                  static_cast<int32_t>(kHtEntryPayload + layout.KeyOffset(k)), "stored key");
      uint32_t equal = b_.CmpEq(Value::Reg(stored), keys[k].value);
      uint32_t next_check = b_.CreateBlock("groupKeyEqual");
      b_.CondBr(Value::Reg(equal), next_check, advance);
      b_.SetInsertPoint(next_check);
    }
    b_.Br(found_block);

    b_.SetInsertPoint(advance);
    b_.Assign(entry, Opcode::kLoad8, Value::Reg(entry), Value::None());
    fn_.block(advance).instrs.back().disp = static_cast<int32_t>(kHtEntryNext);
    b_.Br(chain_head);

    // Found: update aggregates in place.
    b_.SetInsertPoint(found_block);
    {
      TaskScope agg_scope(this, agg_task);
      for (size_t a = 0; a < layout.aggs.size(); ++a) {
        EmitAggregateUpdate(layout.aggs[a], entry, inputs[a], /*first_value=*/false);
      }
    }
    b_.Br(done);

    // Miss: group-by inserts a new group; groupjoin-probe drops the tuple.
    b_.SetInsertPoint(miss);
    if (is_groupjoin_probe) {
      b_.Br(continue_stack_.back());
    } else {
      uint32_t new_entry = TaggedCall(InsertFn(),
                                      {Value::Reg(state.ht.table), Value::Reg(hash)},
                                      /*has_result=*/true, step.task, "insert group");
      b_.Copy(entry, Value::Reg(new_entry));
      for (size_t k = 0; k < keys.size(); ++k) {
        b_.Store(Opcode::kStore8, keys[k].value, Value::Reg(entry),
                 static_cast<int32_t>(kHtEntryPayload + layout.KeyOffset(k)),
                 "store group key");
      }
      TaskScope agg_scope(this, agg_task);
      for (size_t a = 0; a < layout.aggs.size(); ++a) {
        EmitAggregateUpdate(layout.aggs[a], entry, inputs[a], /*first_value=*/true);
      }
      b_.Br(done);
    }

    b_.SetInsertPoint(done);
    // Aggregation is terminal: the caller emits the branch to the continue target.
  }

  void EmitAggregateUpdate(const AggSlot& agg, uint32_t entry, const SlotVal& input,
                           bool first_value) {
    const int32_t disp = static_cast<int32_t>(kHtEntryPayload + agg.offset);
    switch (agg.op) {
      case AggOp::kSum: {
        if (first_value) {
          b_.Store(Opcode::kStore8, input.value, Value::Reg(entry), disp, "init sum");
          return;
        }
        uint32_t current = b_.Load(Opcode::kLoad8, Value::Reg(entry), disp, "sum");
        uint32_t updated =
            agg.in_type == ColumnType::kDouble
                ? b_.Binary(Opcode::kFAdd, Value::Reg(current), input.value, IrType::kF64)
                : b_.Add(Value::Reg(current), input.value);
        b_.Store(Opcode::kStore8, Value::Reg(updated), Value::Reg(entry), disp, "update sum");
        return;
      }
      case AggOp::kCount:
      case AggOp::kCountStar: {
        if (first_value) {
          uint32_t one = b_.Const(1);
          b_.Store(Opcode::kStore8, Value::Reg(one), Value::Reg(entry), disp, "init count");
          return;
        }
        uint32_t current = b_.Load(Opcode::kLoad8, Value::Reg(entry), disp, "count");
        uint32_t updated = b_.Add(Value::Reg(current), Value::Imm(1));
        b_.Store(Opcode::kStore8, Value::Reg(updated), Value::Reg(entry), disp, "update count");
        return;
      }
      case AggOp::kMin:
      case AggOp::kMax: {
        if (first_value) {
          b_.Store(Opcode::kStore8, input.value, Value::Reg(entry), disp, "init min/max");
          return;
        }
        uint32_t current = b_.Load(Opcode::kLoad8, Value::Reg(entry), disp, "min/max");
        uint32_t better;
        if (agg.in_type == ColumnType::kDouble) {
          better = b_.Binary(agg.op == AggOp::kMin ? Opcode::kFCmpLt : Opcode::kFCmpGt,
                             input.value, Value::Reg(current), IrType::kF64);
        } else {
          better = b_.Binary(agg.op == AggOp::kMin ? Opcode::kCmpLt : Opcode::kCmpGt,
                             input.value, Value::Reg(current));
        }
        uint32_t chosen = b_.Select(Value::Reg(better), input.value, Value::Reg(current));
        b_.Store(Opcode::kStore8, Value::Reg(chosen), Value::Reg(entry), disp, "update min/max");
        return;
      }
      case AggOp::kAvg: {
        const int32_t count_disp = static_cast<int32_t>(kHtEntryPayload + agg.offset2);
        if (first_value) {
          b_.Store(Opcode::kStore8, input.value, Value::Reg(entry), disp, "init avg sum");
          uint32_t one = b_.Const(1);
          b_.Store(Opcode::kStore8, Value::Reg(one), Value::Reg(entry), count_disp,
                   "init avg count");
          return;
        }
        uint32_t sum = b_.Load(Opcode::kLoad8, Value::Reg(entry), disp, "avg sum");
        uint32_t new_sum =
            agg.in_type == ColumnType::kDouble
                ? b_.Binary(Opcode::kFAdd, Value::Reg(sum), input.value, IrType::kF64)
                : b_.Add(Value::Reg(sum), input.value);
        b_.Store(Opcode::kStore8, Value::Reg(new_sum), Value::Reg(entry), disp, "update avg sum");
        uint32_t count = b_.Load(Opcode::kLoad8, Value::Reg(entry), count_disp, "avg count");
        uint32_t new_count = b_.Add(Value::Reg(count), Value::Imm(1));
        b_.Store(Opcode::kStore8, Value::Reg(new_count), Value::Reg(entry), count_disp,
                 "update avg count");
        return;
      }
    }
  }

  struct StepState {
    HtContext ht;
    uint32_t buf_base = kNoVReg;
    uint32_t cursor = kNoVReg;
    uint32_t row_count = kNoVReg;
    uint32_t tuple_counter = kNoVReg;  // EXPLAIN-ANALYZE-style counting (opt-in).
  };

  bool CountingEnabled(const PipelineStep& step) const {
    return counter_offsets_ != nullptr && step.task != kNoTask &&
           counter_offsets_->count(step.task) != 0;
  }

  // Emits the per-task tuple counter increment at a step's "tuple processed" point. Parallel
  // pipelines update the counter's state slot directly (it is shared across morsels).
  void CountTuple(size_t step_index) {
    const PipelineStep& step = pipeline_.steps[step_index];
    if (!CountingEnabled(step)) {
      return;
    }
    if (parallel_) {
      const uint32_t offset = counter_offsets_->at(step.task);
      uint32_t count = LoadState(offset, "shared tuple counter");
      uint32_t next = b_.Add(Value::Reg(count), Value::Imm(1));
      StoreState(offset, Value::Reg(next));
      return;
    }
    StepState& state = step_states_[step_index];
    b_.Assign(state.tuple_counter, Opcode::kAdd, Value::Reg(state.tuple_counter), Value::Imm(1));
  }

  // Hash-table builds in parallel pipelines must go through the stripe-locked insert: the bump
  // allocator and directory chains are shared across workers.
  uint32_t InsertFn() const {
    return parallel_ ? db_.runtime().ht_insert_locked_fn() : db_.runtime().ht_insert_fn();
  }

  Database& db_;
  ProfilingSession* session_;
  Pipeline& pipeline_;
  const std::unordered_map<uint64_t, uint32_t>& state_offsets_;
  const std::unordered_map<TaskId, uint32_t>* counter_offsets_;
  bool parallel_ = false;
  const PlanLiterals* literals_ = nullptr;
  IrFunction fn_;
  IrBuilder b_;
  Value state_base_;
  uint32_t entry_block_ = 0;
  uint32_t exit_block_ = 0;
  std::vector<uint32_t> continue_stack_;
  std::vector<StepState> step_states_;
};

}  // namespace

// ---------------------------------------------------------------------------------------------
// Driver: all three lowering steps.
// ---------------------------------------------------------------------------------------------

CompiledQuery CompileQuery(Database& db, PhysicalOpPtr plan, ProfilingSession* session,
                           std::string name, const CodegenOptions& options) {
  CompiledQuery query;
  query.name = std::move(name);
  query.plan = std::move(plan);
  query.output_schema = query.plan->output;
  query.session = session;
  query.parallel = options.parallel;

  // Step 1: operators -> pipelines of tasks (+ execution schedule, Log A).
  PlanLowering lowering(session, &query);
  lowering.Run(*query.plan);
  std::vector<Pipeline> pipelines = lowering.TakePipelines();
  std::unordered_map<uint64_t, uint32_t> state_offsets = lowering.TakeStateOffsets();

  // Register sort specifications now that pipelines are known.
  for (size_t step_index : lowering.sort_steps()) {
    ExecStep& step = query.exec_steps[step_index];
    const PhysicalOp& op = *step.op;
    SortSpec spec;
    spec.row_size = op.child(0)->output.size() * 8;
    for (const SortItem& item : op.sort_items) {
      ColumnType type = op.child(0)->output[static_cast<size_t>(item.slot)].type;
      ColumnType key_type = type == ColumnType::kDouble   ? ColumnType::kDouble
                            : type == ColumnType::kString ? ColumnType::kString
                                                          : ColumnType::kInt64;
      spec.keys.push_back({static_cast<int64_t>(item.slot) * 8, key_type, item.descending});
    }
    step.sort_spec = db.runtime().RegisterSortSpec(std::move(spec));
  }
  if (query.state_bytes == 0) {
    query.state_bytes = 8;  // Degenerate plans still get a state block.
  }

  // Optional EXPLAIN-ANALYZE-style tuple counters: one state slot per task.
  std::unordered_map<TaskId, uint32_t> counter_offsets;
  if (options.count_tuples && session != nullptr) {
    for (const TaskInfo& task : session->dictionary().tasks()) {
      const uint32_t offset = static_cast<uint32_t>(query.state_bytes);
      query.state_bytes += 8;
      counter_offsets.emplace(task.id, offset);
      query.tuple_count_slots.emplace_back(task.id, offset);
    }
  }

  // Steps 2 + 3: pipelines -> VIR -> machine code.
  IrIdAllocator ids;
  for (Pipeline& pipeline : pipelines) {
    std::string fn_name = StrFormat("%s.p%u", query.name.c_str(), pipeline.id);
    PipelineEmitter emitter(db, session, pipeline, state_offsets,
                            counter_offsets.empty() ? nullptr : &counter_offsets, ids, fn_name,
                            options.parallel, options.literals);
    emitter.Emit();
    IrFunction ir = emitter.Take();

    CompileOptions compile_options;
    compile_options.optimize = options.optimize_ir;
    compile_options.reserve_tag_register =
        options.force_reserve_tag_register ||
        (session != nullptr && (session->use_register_tagging() ||
                                session->config().tag_all_instructions));
    compile_options.lineage = session != nullptr ? &session->dictionary() : nullptr;
    CompileStats stats;
    EmittedFunction emitted = CompileFunction(ir, compile_options, &stats);
    if (session != nullptr && session->config().tag_all_instructions) {
      emitted.code = ApplyValidationTags(std::move(emitted.code), session->dictionary());
    }

    PipelineArtifact artifact(std::move(ir));
    artifact.pipeline = std::move(pipeline);
    artifact.stats = stats;
    artifact.literal_sites = std::move(emitted.literal_sites);
    artifact.listing = PrintFunction(artifact.ir);
    artifact.segment =
        db.code_map().AddSegment(SegmentKind::kGenerated, fn_name, std::move(emitted.code));
    artifact.function = db.code_map().AddFunction(fn_name, artifact.segment, 0,
                                                  emitted.spill_slots, emitted.num_args);
    query.pipelines.push_back(std::move(artifact));
  }
  return query;
}

}  // namespace dfp
