#include "src/sql/binder.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "src/plan/builder.h"
#include "src/sql/parser.h"
#include "src/util/check.h"
#include "src/util/str.h"

namespace dfp {
namespace {

// A column visible at some point of the plan: where it came from and its slot type.
struct BoundColumn {
  std::string alias;  // Table alias (empty for derived columns).
  std::string name;
  ColumnType type = ColumnType::kInt64;
};

using Schema = std::vector<BoundColumn>;

int FindColumn(const Schema& schema, const std::string& qualifier, const std::string& name,
               bool* ambiguous) {
  int found = -1;
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i].name != name) {
      continue;
    }
    if (!qualifier.empty() && schema[i].alias != qualifier) {
      continue;
    }
    if (found >= 0) {
      if (ambiguous != nullptr) {
        *ambiguous = true;
      }
      return found;
    }
    found = static_cast<int>(i);
  }
  return found;
}

int MustFindColumn(const Schema& schema, const std::string& qualifier, const std::string& name) {
  bool ambiguous = false;
  int slot = FindColumn(schema, qualifier, name, &ambiguous);
  std::string display = qualifier.empty() ? name : qualifier + "." + name;
  if (ambiguous) {
    throw Error("ambiguous column reference: '" + display + "'");
  }
  if (slot < 0) {
    throw Error("unknown column: '" + display + "'");
  }
  return slot;
}

// Conjunct splitting of the WHERE clause.
void SplitConjuncts(SqlExpr* expr, std::vector<SqlExpr*>* out) {
  if (expr == nullptr) {
    return;
  }
  if (expr->kind == SqlExprKind::kBinary && expr->bin == SqlBinOp::kAnd) {
    SplitConjuncts(expr->left.get(), out);
    SplitConjuncts(expr->right.get(), out);
    return;
  }
  out->push_back(expr);
}

// Collects the table aliases an expression references (resolved against the per-alias schemas).
void CollectAliases(const SqlExpr& expr,
                    const std::unordered_map<std::string, const Schema*>& by_alias,
                    std::set<std::string>* out) {
  if (expr.kind == SqlExprKind::kColumn) {
    if (!expr.qualifier.empty()) {
      out->insert(expr.qualifier);
      return;
    }
    for (const auto& [alias, schema] : by_alias) {
      if (FindColumn(*schema, "", expr.column, nullptr) >= 0) {
        out->insert(alias);
      }
    }
    return;
  }
  if (expr.left != nullptr) {
    CollectAliases(*expr.left, by_alias, out);
  }
  if (expr.right != nullptr) {
    CollectAliases(*expr.right, by_alias, out);
  }
  if (expr.third != nullptr) {
    CollectAliases(*expr.third, by_alias, out);
  }
  if (expr.else_value != nullptr) {
    CollectAliases(*expr.else_value, by_alias, out);
  }
  for (const SqlExprPtr& element : expr.list) {
    CollectAliases(*element, by_alias, out);
  }
  for (const auto& [cond, value] : expr.whens) {
    CollectAliases(*cond, by_alias, out);
    CollectAliases(*value, by_alias, out);
  }
}

// Structural equality of SQL expressions (used to match SELECT/ORDER BY items against GROUP BY
// key expressions).
bool EqualSql(const SqlExpr& a, const SqlExpr& b) {
  if (a.kind != b.kind || a.bin != b.bin || a.agg != b.agg || a.int_value != b.int_value ||
      a.string_value != b.string_value || a.qualifier != b.qualifier || a.column != b.column) {
    return false;
  }
  auto child_equal = [](const SqlExprPtr& x, const SqlExprPtr& y) {
    if ((x == nullptr) != (y == nullptr)) {
      return false;
    }
    return x == nullptr || EqualSql(*x, *y);
  };
  if (!child_equal(a.left, b.left) || !child_equal(a.right, b.right) ||
      !child_equal(a.third, b.third) || !child_equal(a.else_value, b.else_value)) {
    return false;
  }
  if (a.list.size() != b.list.size() || a.whens.size() != b.whens.size()) {
    return false;
  }
  for (size_t i = 0; i < a.list.size(); ++i) {
    if (!EqualSql(*a.list[i], *b.list[i])) {
      return false;
    }
  }
  for (size_t i = 0; i < a.whens.size(); ++i) {
    if (!EqualSql(*a.whens[i].first, *b.whens[i].first) ||
        !EqualSql(*a.whens[i].second, *b.whens[i].second)) {
      return false;
    }
  }
  return true;
}

bool ContainsAggregate(const SqlExpr& expr) {
  if (expr.kind == SqlExprKind::kAggregate) {
    return true;
  }
  if (expr.left != nullptr && ContainsAggregate(*expr.left)) {
    return true;
  }
  if (expr.right != nullptr && ContainsAggregate(*expr.right)) {
    return true;
  }
  if (expr.third != nullptr && ContainsAggregate(*expr.third)) {
    return true;
  }
  if (expr.else_value != nullptr && ContainsAggregate(*expr.else_value)) {
    return true;
  }
  for (const SqlExprPtr& element : expr.list) {
    if (ContainsAggregate(*element)) {
      return true;
    }
  }
  for (const auto& [cond, value] : expr.whens) {
    if (ContainsAggregate(*cond) || ContainsAggregate(*value)) {
      return true;
    }
  }
  return false;
}

void CollectAggregates(SqlExpr* expr, std::vector<SqlExpr*>* out) {
  if (expr == nullptr) {
    return;
  }
  if (expr->kind == SqlExprKind::kAggregate) {
    out->push_back(expr);
    return;  // Nested aggregates are invalid; inputs are scalar.
  }
  CollectAggregates(expr->left.get(), out);
  CollectAggregates(expr->right.get(), out);
  CollectAggregates(expr->third.get(), out);
  CollectAggregates(expr->else_value.get(), out);
  for (SqlExprPtr& element : expr->list) {
    CollectAggregates(element.get(), out);
  }
  for (auto& [cond, value] : expr->whens) {
    CollectAggregates(cond.get(), out);
    CollectAggregates(value.get(), out);
  }
}

class Binder {
 public:
  Binder(Database& db, const SelectStatement& stmt) : db_(db), stmt_(stmt) {}

  PhysicalOpPtr Bind() {
    BuildRelations();
    ClassifyPredicates();
    ApplyLocalFilters();
    JoinRelations();
    ApplyResidualFilters();
    BindAggregation();
    ApplyHaving();
    ApplySelectProjection();
    ApplyDistinct();
    ApplyOrderByAndLimit();
    return stream_->builder.Build();
  }

 private:
  struct Relation {
    std::string alias;
    PlanBuilder builder;
    Schema schema;
    double base_rows = 0;
    double estimate = 0;
    std::vector<const SqlExpr*> local_filters;
    bool joined = false;

    Relation(std::string a, PlanBuilder b) : alias(std::move(a)), builder(std::move(b)) {}
  };

  struct JoinEdge {
    size_t left_relation;
    size_t right_relation;
    const SqlExpr* left_column;   // Column on the left relation.
    const SqlExpr* right_column;  // Column on the right relation.
  };

  void BuildRelations() {
    std::set<std::string> seen;
    for (const SqlTableRef& ref : stmt_.from) {
      if (!seen.insert(ref.alias).second) {
        throw Error("duplicate table alias: '" + ref.alias + "'");
      }
      const Table& table = db_.table(ref.table);
      Relation relation(ref.alias, PlanBuilder::Scan(table));
      for (const ColumnDef& column : table.schema().columns) {
        relation.schema.push_back({ref.alias, column.name, column.type});
      }
      relation.base_rows = static_cast<double>(table.row_count());
      relation.estimate = relation.base_rows;
      relations_.push_back(std::move(relation));
    }
    for (Relation& relation : relations_) {
      schemas_by_alias_[relation.alias] = &relation.schema;
    }
  }

  size_t RelationIndex(const std::string& alias) const {
    for (size_t i = 0; i < relations_.size(); ++i) {
      if (relations_[i].alias == alias) {
        return i;
      }
    }
    throw Error("unknown table alias: '" + alias + "'");
  }

  double Selectivity(const SqlExpr& predicate) const {
    switch (predicate.kind) {
      case SqlExprKind::kBinary:
        switch (predicate.bin) {
          case SqlBinOp::kEq:
            return 0.05;
          case SqlBinOp::kNe:
            return 0.9;
          case SqlBinOp::kOr:
            return 0.6;
          default:
            return 0.35;
        }
      case SqlExprKind::kLike:
        return 0.25;
      case SqlExprKind::kBetween:
        return 0.3;
      case SqlExprKind::kInList:
        return 0.2;
      default:
        return 0.5;
    }
  }

  void ClassifyPredicates() {
    std::vector<SqlExpr*> conjuncts;
    SplitConjuncts(stmt_.where.get(), &conjuncts);
    for (SqlExpr* conjunct : conjuncts) {
      if (ContainsAggregate(*conjunct)) {
        throw Error("aggregates are not allowed in WHERE");
      }
      std::set<std::string> aliases;
      CollectAliases(*conjunct, schemas_by_alias_, &aliases);
      if (aliases.size() <= 1) {
        size_t relation =
            aliases.empty() ? 0 : RelationIndex(*aliases.begin());
        relations_[relation].local_filters.push_back(conjunct);
        relations_[relation].estimate *= Selectivity(*conjunct);
        continue;
      }
      // Equi-join edge?
      if (aliases.size() == 2 && conjunct->kind == SqlExprKind::kBinary &&
          conjunct->bin == SqlBinOp::kEq &&
          conjunct->left->kind == SqlExprKind::kColumn &&
          conjunct->right->kind == SqlExprKind::kColumn) {
        std::set<std::string> left_alias;
        std::set<std::string> right_alias;
        CollectAliases(*conjunct->left, schemas_by_alias_, &left_alias);
        CollectAliases(*conjunct->right, schemas_by_alias_, &right_alias);
        if (left_alias.size() == 1 && right_alias.size() == 1 &&
            *left_alias.begin() != *right_alias.begin()) {
          JoinEdge edge;
          edge.left_relation = RelationIndex(*left_alias.begin());
          edge.right_relation = RelationIndex(*right_alias.begin());
          edge.left_column = conjunct->left.get();
          edge.right_column = conjunct->right.get();
          edges_.push_back(edge);
          continue;
        }
      }
      residual_filters_.push_back(conjunct);
    }
  }

  void ApplyLocalFilters() {
    for (Relation& relation : relations_) {
      for (const SqlExpr* filter : relation.local_filters) {
        ExprPtr bound = BindScalar(*filter, relation.schema, nullptr);
        if (bound->type != ColumnType::kBool) {
          throw Error("WHERE predicate is not boolean");
        }
        relation.builder.FilterBy(std::move(bound));
      }
    }
  }

  void JoinRelations() {
    // The largest relation becomes the probe stream; connected relations are joined greedily by
    // ascending estimated size (they become build sides).
    size_t start = 0;
    for (size_t i = 1; i < relations_.size(); ++i) {
      if (relations_[i].estimate > relations_[start].estimate) {
        start = i;
      }
    }
    stream_ = &relations_[start];
    stream_->joined = true;
    stream_schema_ = stream_->schema;
    size_t joined_count = 1;
    while (joined_count < relations_.size()) {
      // Candidates connected to the current stream.
      size_t best = relations_.size();
      for (const JoinEdge& edge : edges_) {
        for (size_t candidate : {edge.left_relation, edge.right_relation}) {
          size_t other = candidate == edge.left_relation ? edge.right_relation
                                                         : edge.left_relation;
          if (!relations_[candidate].joined && relations_[other].joined) {
            if (best == relations_.size() ||
                relations_[candidate].estimate < relations_[best].estimate) {
              best = candidate;
            }
          }
        }
      }
      if (best == relations_.size()) {
        throw Error("cross joins without equi-conditions are not supported");
      }
      Relation& build = relations_[best];
      // All edges connecting the stream side to `build`.
      std::vector<int> probe_slots;
      std::vector<int> build_slots;
      for (const JoinEdge& edge : edges_) {
        const SqlExpr* stream_col = nullptr;
        const SqlExpr* build_col = nullptr;
        if (edge.left_relation == best && relations_[edge.right_relation].joined) {
          build_col = edge.left_column;
          stream_col = edge.right_column;
        } else if (edge.right_relation == best && relations_[edge.left_relation].joined) {
          build_col = edge.right_column;
          stream_col = edge.left_column;
        } else {
          continue;
        }
        probe_slots.push_back(
            MustFindColumn(stream_schema_, stream_col->qualifier, stream_col->column));
        build_slots.push_back(
            MustFindColumn(build.schema, build_col->qualifier, build_col->column));
      }
      DFP_CHECK(!probe_slots.empty());
      // Build payload: every build-side column (kept simple; pruning is an optimization).
      std::vector<int> payload;
      for (size_t i = 0; i < build.schema.size(); ++i) {
        payload.push_back(static_cast<int>(i));
      }
      std::string label = StrFormat("HashJoin %s", build.alias.c_str());
      stream_->builder.JoinWithSlots(std::move(build.builder), probe_slots, build_slots,
                                     payload, JoinType::kInner, label);
      for (const BoundColumn& column : build.schema) {
        stream_schema_.push_back(column);
      }
      // Probe-side cardinality shrinks by the build side's filter selectivity (PK-FK model).
      double match_probability =
          build.base_rows > 0 ? std::min(1.0, build.estimate / build.base_rows) : 1.0;
      stream_->estimate *= match_probability;
      build.joined = true;
      ++joined_count;
    }
  }

  void ApplyResidualFilters() {
    for (const SqlExpr* filter : residual_filters_) {
      ExprPtr bound = BindScalar(*filter, stream_schema_, nullptr);
      if (bound->type != ColumnType::kBool) {
        throw Error("WHERE predicate is not boolean");
      }
      stream_->builder.FilterBy(std::move(bound));
    }
  }

  void BindAggregation() {
    // Gather aggregate uses across SELECT, HAVING, ORDER BY.
    std::vector<SqlExpr*> aggregates;
    for (const SqlSelectItem& item : stmt_.select_list) {
      CollectAggregates(item.expr.get(), &aggregates);
    }
    CollectAggregates(stmt_.having.get(), &aggregates);
    for (const SqlOrderItem& item : stmt_.order_by) {
      CollectAggregates(item.expr.get(), &aggregates);
    }
    if (aggregates.empty() && stmt_.group_by.empty()) {
      return;  // Not an aggregation query.
    }
    grouped_ = true;

    // Bind key expressions. Plain columns group directly; computed keys (e.g. year(l_shipdate))
    // are appended via a Map below the group-by first.
    std::vector<int> key_slots;
    Schema post_schema;
    std::vector<std::pair<std::string, ExprPtr>> computed_keys;
    size_t pre_width = stream_schema_.size();
    std::vector<std::pair<const SqlExpr*, size_t>> computed_positions;  // (sql node, key index)
    for (size_t k = 0; k < stmt_.group_by.size(); ++k) {
      const SqlExprPtr& key = stmt_.group_by[k];
      if (key->kind == SqlExprKind::kColumn) {
        int slot = MustFindColumn(stream_schema_, key->qualifier, key->column);
        key_slots.push_back(slot);
        post_schema.push_back(stream_schema_[static_cast<size_t>(slot)]);
        continue;
      }
      ExprPtr bound = BindScalar(*key, stream_schema_, nullptr);
      std::string name = StrFormat("$key%zu", k);
      int slot = static_cast<int>(pre_width + computed_keys.size());
      key_slots.push_back(slot);
      post_schema.push_back({"", name, bound->type});
      computed_positions.emplace_back(key.get(), post_schema.size() - 1);
      computed_keys.emplace_back(std::move(name), std::move(bound));
    }
    if (!computed_keys.empty()) {
      stream_->builder.MapTo(std::move(computed_keys));
      for (size_t i = 0; i < computed_positions.size(); ++i) {
        stream_schema_.push_back(post_schema[computed_positions[i].second]);
      }
      for (const auto& [sql_node, key_index] : computed_positions) {
        group_expr_slots_.emplace_back(sql_node, static_cast<int>(key_index));
      }
    }
    std::vector<std::pair<std::string, ExprPtr>> bound_aggregates;
    for (size_t i = 0; i < aggregates.size(); ++i) {
      SqlExpr* agg = aggregates[i];
      AggOp op = agg->agg == SqlAgg::kSum     ? AggOp::kSum
                 : agg->agg == SqlAgg::kCount ? AggOp::kCount
                 : agg->agg == SqlAgg::kAvg   ? AggOp::kAvg
                 : agg->agg == SqlAgg::kMin   ? AggOp::kMin
                 : agg->agg == SqlAgg::kMax   ? AggOp::kMax
                                              : AggOp::kCountStar;
      ExprPtr input;
      if (op != AggOp::kCountStar) {
        input = BindScalar(*agg->left, stream_schema_, nullptr);
      }
      ExprPtr bound = MakeAggregate(op, std::move(input));
      std::string name = StrFormat("$agg%zu", i);
      agg_slots_[agg] = static_cast<int>(post_schema.size());
      post_schema.push_back({"", name, bound->type});
      bound_aggregates.emplace_back(std::move(name), std::move(bound));
    }
    stream_->builder.GroupBySlots(key_slots, std::move(bound_aggregates), "GroupBy");
    stream_schema_ = std::move(post_schema);
  }

  void ApplyHaving() {
    if (stmt_.having == nullptr) {
      return;
    }
    if (!grouped_) {
      throw Error("HAVING without aggregation");
    }
    ExprPtr bound = BindScalar(*stmt_.having, stream_schema_, &agg_slots_);
    if (bound->type != ColumnType::kBool) {
      throw Error("HAVING predicate is not boolean");
    }
    stream_->builder.FilterBy(std::move(bound), "Having");
  }

  static std::string DefaultAlias(const SqlExpr& expr, size_t index) {
    if (expr.kind == SqlExprKind::kColumn) {
      return expr.column;
    }
    return StrFormat("col%zu", index + 1);
  }

  void ApplySelectProjection() {
    std::vector<std::pair<std::string, ExprPtr>> outputs;
    Schema post_schema;
    // Identity projection: every select item is the i-th column with its current name.
    bool identity = stmt_.select_list.size() == stream_schema_.size();
    for (size_t i = 0; i < stmt_.select_list.size(); ++i) {
      const SqlSelectItem& item = stmt_.select_list[i];
      ExprPtr bound = BindScalar(*item.expr, stream_schema_, grouped_ ? &agg_slots_ : nullptr);
      std::string name = !item.alias.empty() ? item.alias : DefaultAlias(*item.expr, i);
      if (identity && !(bound->kind == ExprKind::kColumnRef &&
                        bound->slot == static_cast<int>(i) &&
                        name == stream_schema_[i].name)) {
        identity = false;
      }
      post_schema.push_back({"", name, bound->type});
      outputs.emplace_back(std::move(name), std::move(bound));
    }
    if (!identity) {
      ProjectingMap(stream_->builder, std::move(outputs));
    }
    stream_schema_ = std::move(post_schema);
  }

  // Replaces the schema with the given computed columns: append via Map, then project.
  static void ProjectingMap(PlanBuilder& builder,
                            std::vector<std::pair<std::string, ExprPtr>> outputs) {
    const size_t before = builder.schema().size();
    std::vector<std::string> names;
    names.reserve(outputs.size());
    for (const auto& [name, expr] : outputs) {
      names.push_back(name);
    }
    builder.MapTo(std::move(outputs));
    std::vector<std::pair<std::string, int>> slots;
    for (size_t i = 0; i < names.size(); ++i) {
      slots.emplace_back(names[i], static_cast<int>(before + i));
    }
    builder.ProjectSlots(std::move(slots));
  }

  void ApplyDistinct() {
    if (!stmt_.distinct) {
      return;
    }
    // DISTINCT = group by every output column with no aggregates.
    std::vector<int> keys;
    for (size_t i = 0; i < stream_schema_.size(); ++i) {
      keys.push_back(static_cast<int>(i));
    }
    stream_->builder.GroupBySlots(std::move(keys), {}, "Distinct");
  }

  void ApplyOrderByAndLimit() {
    if (!stmt_.order_by.empty()) {
      std::vector<SortItem> items;
      for (const SqlOrderItem& item : stmt_.order_by) {
        if (item.expr->kind != SqlExprKind::kColumn) {
          throw Error("ORDER BY supports column references and select aliases only");
        }
        // Resolve against the select output first (aliases), then fail.
        Schema select_schema;
        for (const BoundColumn& column : stream_schema_) {
          select_schema.push_back(column);
        }
        int slot = MustFindColumn(select_schema, item.expr->qualifier, item.expr->column);
        items.push_back({slot, item.descending});
      }
      stream_->builder.OrderBySlots(std::move(items), stmt_.limit);
    } else if (stmt_.limit >= 0) {
      stream_->builder.LimitTo(stmt_.limit);
    }
  }

  // --- Scalar binding ---

  ExprPtr BindScalar(const SqlExpr& expr, const Schema& schema,
                     const std::unordered_map<const SqlExpr*, int>* agg_slots) {
    // In post-aggregation contexts, an expression that structurally matches a GROUP BY key
    // expression refers to that key's output column.
    if (agg_slots != nullptr && expr.kind != SqlExprKind::kColumn) {
      for (const auto& [key_expr, slot] : group_expr_slots_) {
        if (EqualSql(expr, *key_expr)) {
          return MakeColumnRef(slot, stream_schema_[static_cast<size_t>(slot)].type);
        }
      }
    }
    switch (expr.kind) {
      case SqlExprKind::kColumn: {
        int slot = MustFindColumn(schema, expr.qualifier, expr.column);
        return MakeColumnRef(slot, schema[static_cast<size_t>(slot)].type);
      }
      case SqlExprKind::kIntLit:
        return MakeLiteral(ColumnType::kInt64, expr.int_value);
      case SqlExprKind::kDecimalLit:
        return MakeLiteral(ColumnType::kDecimal, expr.int_value);
      case SqlExprKind::kDateLit:
        return MakeLiteral(ColumnType::kDate, expr.int_value);
      case SqlExprKind::kStringLit:
        return MakeLiteral(ColumnType::kString,
                           static_cast<int64_t>(db_.strings().Intern(expr.string_value)));
      case SqlExprKind::kBinary: {
        static const std::unordered_map<int, BinOp> kOps = {
            {static_cast<int>(SqlBinOp::kAdd), BinOp::kAdd},
            {static_cast<int>(SqlBinOp::kSub), BinOp::kSub},
            {static_cast<int>(SqlBinOp::kMul), BinOp::kMul},
            {static_cast<int>(SqlBinOp::kDiv), BinOp::kDiv},
            {static_cast<int>(SqlBinOp::kRem), BinOp::kRem},
            {static_cast<int>(SqlBinOp::kEq), BinOp::kEq},
            {static_cast<int>(SqlBinOp::kNe), BinOp::kNe},
            {static_cast<int>(SqlBinOp::kLt), BinOp::kLt},
            {static_cast<int>(SqlBinOp::kLe), BinOp::kLe},
            {static_cast<int>(SqlBinOp::kGt), BinOp::kGt},
            {static_cast<int>(SqlBinOp::kGe), BinOp::kGe},
            {static_cast<int>(SqlBinOp::kAnd), BinOp::kAnd},
            {static_cast<int>(SqlBinOp::kOr), BinOp::kOr},
        };
        return MakeBinary(kOps.at(static_cast<int>(expr.bin)),
                          BindScalar(*expr.left, schema, agg_slots),
                          BindScalar(*expr.right, schema, agg_slots));
      }
      case SqlExprKind::kUnaryMinus:
        return MakeUnary(UnOp::kNeg, BindScalar(*expr.left, schema, agg_slots));
      case SqlExprKind::kNot:
        return MakeUnary(UnOp::kNot, BindScalar(*expr.left, schema, agg_slots));
      case SqlExprKind::kLike:
        return MakeLike(BindScalar(*expr.left, schema, agg_slots), expr.string_value);
      case SqlExprKind::kBetween: {
        ExprPtr low = MakeBinary(BinOp::kGe, BindScalar(*expr.left, schema, agg_slots),
                                 BindScalar(*expr.right, schema, agg_slots));
        ExprPtr high = MakeBinary(BinOp::kLe, BindScalar(*expr.left, schema, agg_slots),
                                  BindScalar(*expr.third, schema, agg_slots));
        return MakeBinary(BinOp::kAnd, std::move(low), std::move(high));
      }
      case SqlExprKind::kInList: {
        ExprPtr input = BindScalar(*expr.left, schema, agg_slots);
        const ColumnType type = input->type;
        std::vector<int64_t> candidates;
        for (const SqlExprPtr& element : expr.list) {
          ExprPtr bound = BindScalar(*element, schema, agg_slots);
          if (bound->kind != ExprKind::kLiteral) {
            throw Error("IN lists must contain literals");
          }
          int64_t payload = bound->literal;
          // Promote int literals to the input's representation.
          if (bound->type == ColumnType::kInt64 && type == ColumnType::kDecimal) {
            payload *= 100;
          }
          candidates.push_back(payload);
        }
        return MakeInList(std::move(input), std::move(candidates));
      }
      case SqlExprKind::kCase: {
        std::vector<std::pair<ExprPtr, ExprPtr>> whens;
        for (const auto& [cond, value] : expr.whens) {
          whens.emplace_back(BindScalar(*cond, schema, agg_slots),
                             BindScalar(*value, schema, agg_slots));
        }
        return MakeCase(std::move(whens), BindScalar(*expr.else_value, schema, agg_slots));
      }
      case SqlExprKind::kYear: {
        ExprPtr input = BindScalar(*expr.left, schema, agg_slots);
        if (input->type != ColumnType::kDate) {
          throw Error("year() requires a date argument");
        }
        return MakeExtractYear(std::move(input));
      }
      case SqlExprKind::kAggregate: {
        if (agg_slots == nullptr) {
          throw Error("aggregate used outside an aggregation context");
        }
        auto it = agg_slots->find(&expr);
        DFP_CHECK(it != agg_slots->end());
        return MakeColumnRef(it->second, stream_schema_[static_cast<size_t>(it->second)].type);
      }
    }
    DFP_UNREACHABLE();
  }

  Database& db_;
  const SelectStatement& stmt_;
  std::vector<Relation> relations_;
  std::unordered_map<std::string, const Schema*> schemas_by_alias_;
  std::vector<JoinEdge> edges_;
  std::vector<const SqlExpr*> residual_filters_;
  Relation* stream_ = nullptr;
  Schema stream_schema_;
  bool grouped_ = false;
  std::unordered_map<const SqlExpr*, int> agg_slots_;
  std::vector<std::pair<const SqlExpr*, int>> group_expr_slots_;
};

}  // namespace

PhysicalOpPtr BindSelect(Database& db, const SelectStatement& stmt) {
  Binder binder(db, stmt);
  return binder.Bind();
}

PhysicalOpPtr PlanSql(Database& db, const std::string& sql) {
  SelectStatement stmt = ParseSelect(sql);
  return BindSelect(db, stmt);
}

}  // namespace dfp
