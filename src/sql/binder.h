// Binder: resolves a parsed SELECT statement against the catalog and produces an optimized
// physical plan (filter pushdown, greedy join ordering on estimated cardinalities, aggregate
// extraction, HAVING/ORDER BY/LIMIT lowering).
#ifndef DFP_SRC_SQL_BINDER_H_
#define DFP_SRC_SQL_BINDER_H_

#include <string>

#include "src/engine/database.h"
#include "src/plan/physical.h"
#include "src/sql/ast.h"

namespace dfp {

// Binds a parsed statement. Throws dfp::Error on unknown tables/columns, ambiguous names,
// type mismatches, or unsupported constructs (cross joins without equi-conditions, aggregates
// mixed with non-grouped columns).
PhysicalOpPtr BindSelect(Database& db, const SelectStatement& stmt);

// Parse + bind in one step.
PhysicalOpPtr PlanSql(Database& db, const std::string& sql);

}  // namespace dfp

#endif  // DFP_SRC_SQL_BINDER_H_
