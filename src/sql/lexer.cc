#include "src/sql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "src/util/check.h"
#include "src/util/str.h"

namespace dfp {
namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "select", "from",  "where",   "group", "by",   "having", "order",  "limit", "as",
      "and",    "or",    "not",     "in",    "like", "between", "case",  "when",  "then",
      "else",   "end",   "sum",     "count", "avg",  "min",    "max",    "asc",   "desc",
      "date",   "exists", "distinct", "year"};
  return kKeywords;
}

}  // namespace

std::vector<Token> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
        ++i;
      }
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        ++i;
        size_t frac_start = i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
          ++i;
        }
        token.kind = TokenKind::kDecimal;
        token.text = sql.substr(start, i - start);
        int64_t whole = std::stoll(sql.substr(start, frac_start - 1 - start));
        std::string frac = sql.substr(frac_start, i - frac_start);
        frac.resize(2, '0');  // Scale-2 decimals.
        token.decimal_value = whole * 100 + std::stoll(frac.substr(0, 2));
      } else {
        token.kind = TokenKind::kInt;
        token.text = sql.substr(start, i - start);
        token.int_value = std::stoll(token.text);
      }
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) || sql[i] == '_')) {
        ++i;
      }
      token.text = ToLower(sql.substr(start, i - start));
      token.kind =
          Keywords().count(token.text) != 0 ? TokenKind::kKeyword : TokenKind::kIdent;
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // Escaped quote.
            value.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        throw Error(StrFormat("unterminated string literal at offset %zu", token.position));
      }
      token.kind = TokenKind::kString;
      token.text = std::move(value);
      tokens.push_back(std::move(token));
      continue;
    }
    // Symbols, including two-character comparison operators.
    static const char kSingle[] = "(),.;=<>+-*/%";
    if (c == '<' && i + 1 < n && (sql[i + 1] == '=' || sql[i + 1] == '>')) {
      token.kind = TokenKind::kSymbol;
      token.text = sql.substr(i, 2);
      i += 2;
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '>' && i + 1 < n && sql[i + 1] == '=') {
      token.kind = TokenKind::kSymbol;
      token.text = ">=";
      i += 2;
      tokens.push_back(std::move(token));
      continue;
    }
    bool known = false;
    for (char s : kSingle) {
      if (c == s) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw Error(StrFormat("unexpected character '%c' at offset %zu", c, i));
    }
    token.kind = TokenKind::kSymbol;
    token.text = std::string(1, c);
    ++i;
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace dfp
