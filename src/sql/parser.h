// Recursive-descent parser for the SQL subset (see README for the grammar).
#ifndef DFP_SRC_SQL_PARSER_H_
#define DFP_SRC_SQL_PARSER_H_

#include <string>

#include "src/sql/ast.h"

namespace dfp {

// Parses one SELECT statement (an optional trailing ';' is allowed).
// Throws dfp::Error with a position-annotated message on syntax errors.
SelectStatement ParseSelect(const std::string& sql);

}  // namespace dfp

#endif  // DFP_SRC_SQL_PARSER_H_
