// Abstract syntax tree of the SQL subset.
#ifndef DFP_SRC_SQL_AST_H_
#define DFP_SRC_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dfp {

enum class SqlExprKind : uint8_t {
  kColumn,      // [qualifier.]name
  kIntLit,
  kDecimalLit,
  kStringLit,
  kDateLit,
  kBinary,      // op in SqlBinOp
  kUnaryMinus,
  kNot,
  kAggregate,   // sum/count/avg/min/max; child may be null for count(*)
  kLike,
  kBetween,     // child between low and high
  kInList,
  kCase,
  kYear,  // year(date-expr)
};

enum class SqlBinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kRem, kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr,
};

enum class SqlAgg : uint8_t { kSum, kCount, kAvg, kMin, kMax, kCountStar };

struct SqlExpr;
using SqlExprPtr = std::unique_ptr<SqlExpr>;

struct SqlExpr {
  SqlExprKind kind = SqlExprKind::kIntLit;
  // kColumn.
  std::string qualifier;
  std::string column;
  // Literals.
  int64_t int_value = 0;      // Also scale-2 decimal payload and date days.
  std::string string_value;   // kStringLit / kLike pattern.
  // Composite.
  SqlBinOp bin = SqlBinOp::kAdd;
  SqlAgg agg = SqlAgg::kSum;
  SqlExprPtr left;
  SqlExprPtr right;
  SqlExprPtr third;  // BETWEEN upper bound.
  std::vector<SqlExprPtr> list;                         // IN list.
  std::vector<std::pair<SqlExprPtr, SqlExprPtr>> whens; // CASE.
  SqlExprPtr else_value;
};

struct SqlSelectItem {
  SqlExprPtr expr;
  std::string alias;  // Empty: derive from the expression.
};

struct SqlTableRef {
  std::string table;
  std::string alias;  // Defaults to the table name.
};

struct SqlOrderItem {
  SqlExprPtr expr;
  bool descending = false;
};

struct SelectStatement {
  bool distinct = false;
  std::vector<SqlSelectItem> select_list;
  std::vector<SqlTableRef> from;
  SqlExprPtr where;                     // May be null.
  std::vector<SqlExprPtr> group_by;     // Column refs.
  SqlExprPtr having;                    // May be null.
  std::vector<SqlOrderItem> order_by;
  int64_t limit = -1;
};

}  // namespace dfp

#endif  // DFP_SRC_SQL_AST_H_
