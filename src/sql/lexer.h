// SQL tokenizer.
#ifndef DFP_SRC_SQL_LEXER_H_
#define DFP_SRC_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dfp {

enum class TokenKind : uint8_t {
  kIdent,
  kKeyword,  // Normalized to lowercase.
  kInt,
  kDecimal,  // Numeric literal with a fractional part.
  kString,   // Quoted literal, quotes stripped.
  kSymbol,   // Operators and punctuation: ( ) , . = <> < <= > >= + - * / %
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // Lowercased for keywords/identifiers; verbatim for strings.
  int64_t int_value = 0;
  int64_t decimal_value = 0;  // Scale-2 payload for kDecimal.
  size_t position = 0;        // Byte offset, for error messages.
};

// Tokenizes `sql`. Throws dfp::Error on malformed input (unterminated strings, bad characters).
std::vector<Token> Tokenize(const std::string& sql);

}  // namespace dfp

#endif  // DFP_SRC_SQL_LEXER_H_
