#include "src/sql/parser.h"

#include "src/sql/lexer.h"
#include "src/util/check.h"
#include "src/util/date.h"
#include "src/util/str.h"

namespace dfp {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  SelectStatement Parse() {
    SelectStatement stmt;
    ExpectKeyword("select");
    if (AcceptKeyword("distinct")) {
      stmt.distinct = true;
    }
    stmt.select_list.push_back(ParseSelectItem());
    while (AcceptSymbol(",")) {
      stmt.select_list.push_back(ParseSelectItem());
    }
    ExpectKeyword("from");
    stmt.from.push_back(ParseTableRef());
    while (AcceptSymbol(",")) {
      stmt.from.push_back(ParseTableRef());
    }
    if (AcceptKeyword("where")) {
      stmt.where = ParseExpr();
    }
    if (AcceptKeyword("group")) {
      ExpectKeyword("by");
      stmt.group_by.push_back(ParseExpr());
      while (AcceptSymbol(",")) {
        stmt.group_by.push_back(ParseExpr());
      }
    }
    if (AcceptKeyword("having")) {
      stmt.having = ParseExpr();
    }
    if (AcceptKeyword("order")) {
      ExpectKeyword("by");
      stmt.order_by.push_back(ParseOrderItem());
      while (AcceptSymbol(",")) {
        stmt.order_by.push_back(ParseOrderItem());
      }
    }
    if (AcceptKeyword("limit")) {
      const Token& token = Expect(TokenKind::kInt, "row count");
      stmt.limit = token.int_value;
    }
    AcceptSymbol(";");
    if (Peek().kind != TokenKind::kEnd) {
      Fail("trailing input");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t index = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[index];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  [[noreturn]] void Fail(const std::string& what) const {
    throw Error(StrFormat("SQL parse error at offset %zu: %s (near '%s')", Peek().position,
                          what.c_str(), Peek().text.c_str()));
  }

  bool AcceptKeyword(const char* keyword) {
    if (Peek().kind == TokenKind::kKeyword && Peek().text == keyword) {
      Advance();
      return true;
    }
    return false;
  }
  void ExpectKeyword(const char* keyword) {
    if (!AcceptKeyword(keyword)) {
      Fail(StrFormat("expected '%s'", keyword));
    }
  }
  bool AcceptSymbol(const char* symbol) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == symbol) {
      Advance();
      return true;
    }
    return false;
  }
  void ExpectSymbol(const char* symbol) {
    if (!AcceptSymbol(symbol)) {
      Fail(StrFormat("expected '%s'", symbol));
    }
  }
  const Token& Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) {
      Fail(StrFormat("expected %s", what));
    }
    return Advance();
  }

  SqlSelectItem ParseSelectItem() {
    SqlSelectItem item;
    item.expr = ParseExpr();
    if (AcceptKeyword("as")) {
      item.alias = Expect(TokenKind::kIdent, "alias").text;
    } else if (Peek().kind == TokenKind::kIdent) {
      item.alias = Advance().text;  // Bare alias.
    }
    return item;
  }

  SqlTableRef ParseTableRef() {
    SqlTableRef ref;
    ref.table = Expect(TokenKind::kIdent, "table name").text;
    ref.alias = ref.table;
    if (Peek().kind == TokenKind::kIdent) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  SqlOrderItem ParseOrderItem() {
    SqlOrderItem item;
    item.expr = ParseExpr();
    if (AcceptKeyword("desc")) {
      item.descending = true;
    } else {
      AcceptKeyword("asc");
    }
    return item;
  }

  // Precedence climbing: or < and < not < comparison < additive < multiplicative < unary.
  SqlExprPtr ParseExpr() { return ParseOr(); }

  SqlExprPtr ParseOr() {
    SqlExprPtr left = ParseAnd();
    while (AcceptKeyword("or")) {
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kBinary;
      node->bin = SqlBinOp::kOr;
      node->left = std::move(left);
      node->right = ParseAnd();
      left = std::move(node);
    }
    return left;
  }

  SqlExprPtr ParseAnd() {
    SqlExprPtr left = ParseNot();
    while (AcceptKeyword("and")) {
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kBinary;
      node->bin = SqlBinOp::kAnd;
      node->left = std::move(left);
      node->right = ParseNot();
      left = std::move(node);
    }
    return left;
  }

  SqlExprPtr ParseNot() {
    if (AcceptKeyword("not")) {
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kNot;
      node->left = ParseNot();
      return node;
    }
    return ParseComparison();
  }

  SqlExprPtr ParseComparison() {
    SqlExprPtr left = ParseAdditive();
    if (Peek().kind == TokenKind::kSymbol) {
      const std::string& symbol = Peek().text;
      SqlBinOp op;
      if (symbol == "=") {
        op = SqlBinOp::kEq;
      } else if (symbol == "<>") {
        op = SqlBinOp::kNe;
      } else if (symbol == "<") {
        op = SqlBinOp::kLt;
      } else if (symbol == "<=") {
        op = SqlBinOp::kLe;
      } else if (symbol == ">") {
        op = SqlBinOp::kGt;
      } else if (symbol == ">=") {
        op = SqlBinOp::kGe;
      } else {
        return left;
      }
      Advance();
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kBinary;
      node->bin = op;
      node->left = std::move(left);
      node->right = ParseAdditive();
      return node;
    }
    if (AcceptKeyword("between")) {
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kBetween;
      node->left = std::move(left);
      node->right = ParseAdditive();
      ExpectKeyword("and");
      node->third = ParseAdditive();
      return node;
    }
    if (AcceptKeyword("like")) {
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kLike;
      node->left = std::move(left);
      node->string_value = Expect(TokenKind::kString, "pattern").text;
      return node;
    }
    if (AcceptKeyword("in")) {
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kInList;
      node->left = std::move(left);
      ExpectSymbol("(");
      node->list.push_back(ParseAdditive());
      while (AcceptSymbol(",")) {
        node->list.push_back(ParseAdditive());
      }
      ExpectSymbol(")");
      return node;
    }
    return left;
  }

  SqlExprPtr ParseAdditive() {
    SqlExprPtr left = ParseMultiplicative();
    while (Peek().kind == TokenKind::kSymbol &&
           (Peek().text == "+" || Peek().text == "-")) {
      SqlBinOp op = Advance().text == "+" ? SqlBinOp::kAdd : SqlBinOp::kSub;
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kBinary;
      node->bin = op;
      node->left = std::move(left);
      node->right = ParseMultiplicative();
      left = std::move(node);
    }
    return left;
  }

  SqlExprPtr ParseMultiplicative() {
    SqlExprPtr left = ParseUnary();
    while (Peek().kind == TokenKind::kSymbol &&
           (Peek().text == "*" || Peek().text == "/" || Peek().text == "%")) {
      const std::string symbol = Advance().text;
      SqlBinOp op = symbol == "*" ? SqlBinOp::kMul
                    : symbol == "/" ? SqlBinOp::kDiv
                                    : SqlBinOp::kRem;
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kBinary;
      node->bin = op;
      node->left = std::move(left);
      node->right = ParseUnary();
      left = std::move(node);
    }
    return left;
  }

  SqlExprPtr ParseUnary() {
    if (AcceptSymbol("-")) {
      auto node = std::make_unique<SqlExpr>();
      node->kind = SqlExprKind::kUnaryMinus;
      node->left = ParseUnary();
      return node;
    }
    return ParsePrimary();
  }

  SqlExprPtr ParsePrimary() {
    const Token& token = Peek();
    auto node = std::make_unique<SqlExpr>();
    switch (token.kind) {
      case TokenKind::kInt:
        node->kind = SqlExprKind::kIntLit;
        node->int_value = token.int_value;
        Advance();
        return node;
      case TokenKind::kDecimal:
        node->kind = SqlExprKind::kDecimalLit;
        node->int_value = token.decimal_value;
        Advance();
        return node;
      case TokenKind::kString:
        node->kind = SqlExprKind::kStringLit;
        node->string_value = token.text;
        Advance();
        return node;
      case TokenKind::kSymbol:
        if (token.text == "(") {
          Advance();
          SqlExprPtr inner = ParseExpr();
          ExpectSymbol(")");
          return inner;
        }
        Fail("expected expression");
      case TokenKind::kKeyword:
        if (token.text == "date") {
          Advance();
          const Token& literal = Expect(TokenKind::kString, "date literal");
          node->kind = SqlExprKind::kDateLit;
          node->int_value = ParseDate(literal.text);
          return node;
        }
        if (token.text == "case") {
          Advance();
          node->kind = SqlExprKind::kCase;
          while (AcceptKeyword("when")) {
            SqlExprPtr cond = ParseExpr();
            ExpectKeyword("then");
            SqlExprPtr value = ParseExpr();
            node->whens.emplace_back(std::move(cond), std::move(value));
          }
          if (node->whens.empty()) {
            Fail("CASE requires at least one WHEN");
          }
          ExpectKeyword("else");
          node->else_value = ParseExpr();
          ExpectKeyword("end");
          return node;
        }
        if (token.text == "year") {
          Advance();
          ExpectSymbol("(");
          node->kind = SqlExprKind::kYear;
          node->left = ParseExpr();
          ExpectSymbol(")");
          return node;
        }
        if (token.text == "sum" || token.text == "count" || token.text == "avg" ||
            token.text == "min" || token.text == "max") {
          std::string name = Advance().text;
          ExpectSymbol("(");
          node->kind = SqlExprKind::kAggregate;
          if (name == "count" && AcceptSymbol("*")) {
            node->agg = SqlAgg::kCountStar;
          } else {
            node->agg = name == "sum"   ? SqlAgg::kSum
                        : name == "count" ? SqlAgg::kCount
                        : name == "avg" ? SqlAgg::kAvg
                        : name == "min" ? SqlAgg::kMin
                                        : SqlAgg::kMax;
            node->left = ParseExpr();
          }
          ExpectSymbol(")");
          return node;
        }
        Fail("unexpected keyword");
      case TokenKind::kIdent: {
        node->kind = SqlExprKind::kColumn;
        node->column = Advance().text;
        if (Peek().kind == TokenKind::kSymbol && Peek().text == "." &&
            Peek(1).kind == TokenKind::kIdent) {
          Advance();
          node->qualifier = node->column;
          node->column = Advance().text;
        }
        return node;
      }
      case TokenKind::kEnd:
        Fail("unexpected end of input");
    }
    DFP_UNREACHABLE();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

SelectStatement ParseSelect(const std::string& sql) {
  Parser parser(Tokenize(sql));
  return parser.Parse();
}

}  // namespace dfp
