#include "src/service/service_profile.h"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/critpath/slack.h"
#include "src/profiling/reports.h"
#include "src/reopt/cardstore.h"
#include "src/reopt/controller.h"
#include "src/util/check.h"

namespace dfp {
namespace {

constexpr const char* kProfileHeaderV1 = "# dfp service profile v1";
constexpr const char* kProfileHeaderV2 = "# dfp service profile v2";
constexpr const char* kProfileHeaderV3 = "# dfp service profile v3";
constexpr const char* kProfileHeaderV4 = "# dfp service profile v4";
constexpr const char* kProfileHeaderV5 = "# dfp service profile v5";
constexpr const char* kProfileHeaderV6 = "# dfp service profile v6";

[[noreturn]] void Malformed(const std::string& line) {
  throw Error("malformed service profile line: '" + line + "'");
}

std::string HexKey(uint64_t fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(fingerprint));
  return buffer;
}

}  // namespace

FleetPlanProfile& ServiceProfile::PlanFor(const PlanFingerprint& fingerprint,
                                          const std::string& name) {
  FleetPlanProfile& plan = plans_[fingerprint.structure];
  if (plan.executions == 0 && plan.compile_cycles == 0 && plan.name.empty()) {
    plan.fingerprint = fingerprint.structure;
    plan.name = name;
  }
  return plan;
}

void ServiceProfile::RecordCompile(const PlanFingerprint& fingerprint, const std::string& name,
                                   uint64_t compile_cycles, bool cache_hit) {
  FleetPlanProfile& plan = PlanFor(fingerprint, name);
  plan.compile_cycles += compile_cycles;
  total_compile_cycles_ += compile_cycles;
  if (cache_hit) {
    ++plan.cache_hits;
  } else {
    ++plan.cache_misses;
  }
}

void ServiceProfile::RecordExecution(const PlanFingerprint& fingerprint,
                                     const CompiledQuery& query, const ProfilingSession& session,
                                     uint64_t execute_cycles) {
  FleetPlanProfile& plan = PlanFor(fingerprint, query.name);
  ++plan.executions;
  plan.execute_cycles += execute_cycles;
  total_execute_cycles_ += execute_cycles;

  OperatorProfile profile = BuildOperatorProfile(session, query);
  for (const OperatorCost& cost : profile.operators) {
    FleetOperatorCost& fleet = plan.operators[cost.op];
    fleet.op = cost.op;
    if (fleet.label.empty()) {
      fleet.label = cost.label;
    }
    fleet.samples += cost.samples;
    plan.samples += cost.samples;
    total_operator_samples_ += cost.samples;
  }
}

void ServiceProfile::RecordExecution(const PlanFingerprint& fingerprint,
                                     const CompiledQuery& query, const OperatorProfile& profile,
                                     uint64_t execute_cycles) {
  FleetPlanProfile& plan = PlanFor(fingerprint, query.name);
  ++plan.executions;
  plan.execute_cycles += execute_cycles;
  total_execute_cycles_ += execute_cycles;
  for (const OperatorCost& cost : profile.operators) {
    FleetOperatorCost& fleet = plan.operators[cost.op];
    fleet.op = cost.op;
    if (fleet.label.empty()) {
      fleet.label = cost.label;
    }
    fleet.samples += cost.samples;
    plan.samples += cost.samples;
    total_operator_samples_ += cost.samples;
  }
}

void ServiceProfile::RecordCriticality(const PlanFingerprint& fingerprint,
                                       const std::string& name, uint64_t critical_work_cycles,
                                       uint64_t top_share_pct, const std::string& bottleneck) {
  FleetPlanProfile& plan = PlanFor(fingerprint, name);
  plan.critical_cycles += critical_work_cycles;
  plan.top_share_pct = top_share_pct;
  plan.bottleneck = bottleneck;
}

std::vector<FleetHotspot> ServiceProfile::TopOperators(size_t k) const {
  struct Row {
    uint64_t fingerprint;
    const FleetPlanProfile* plan;
    const FleetOperatorCost* op;
  };
  std::vector<Row> rows;
  for (const auto& [fingerprint, plan] : plans_) {
    for (const auto& [op, cost] : plan.operators) {
      (void)op;
      rows.push_back(Row{fingerprint, &plan, &cost});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.op->samples != b.op->samples) {
      return a.op->samples > b.op->samples;
    }
    if (a.fingerprint != b.fingerprint) {
      return a.fingerprint < b.fingerprint;
    }
    return a.op->op < b.op->op;
  });
  if (rows.size() > k) {
    rows.resize(k);
  }

  std::vector<FleetHotspot> hotspots;
  hotspots.reserve(rows.size());
  for (const Row& row : rows) {
    FleetHotspot hotspot;
    hotspot.plan_name = row.plan->name;
    hotspot.op_label = row.op->label;
    hotspot.samples = row.op->samples;
    hotspot.share = total_operator_samples_ == 0
                        ? 0
                        : static_cast<double>(row.op->samples) /
                              static_cast<double>(total_operator_samples_);
    hotspots.push_back(std::move(hotspot));
  }
  return hotspots;
}

std::string ServiceProfile::Render(size_t top_k) const {
  std::ostringstream out;
  out << "=== Fleet profile ===\n";
  uint64_t executions = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  for (const auto& [fingerprint, plan] : plans_) {
    (void)fingerprint;
    executions += plan.executions;
    hits += plan.cache_hits;
    misses += plan.cache_misses;
  }
  out << "plans " << plans_.size() << "  executions " << executions << "  cache " << hits
      << " hit / " << misses << " miss\n";
  const uint64_t total = total_compile_cycles_ + total_execute_cycles_;
  out << "cycles: compile " << total_compile_cycles_ << "  execute " << total_execute_cycles_;
  if (total != 0) {
    char share[32];
    std::snprintf(share, sizeof(share), "%.1f",
                  100.0 * static_cast<double>(total_compile_cycles_) /
                      static_cast<double>(total));
    out << "  (compile share " << share << "%)";
  }
  out << "\n\n";

  for (const auto& [fingerprint, plan] : plans_) {
    out << "plan " << HexKey(fingerprint) << "  " << plan.name << "\n";
    out << "  executions " << plan.executions << "  cache " << plan.cache_hits << " hit / "
        << plan.cache_misses << " miss  compile " << plan.compile_cycles << " cyc  execute "
        << plan.execute_cycles << " cyc  samples " << plan.samples << "\n";
    if (!plan.bottleneck.empty()) {
      out << "  critical path " << plan.critical_cycles << " cyc  top pipeline "
          << plan.top_share_pct << "%  " << plan.bottleneck << "\n";
    }
  }

  std::vector<FleetHotspot> hotspots = TopOperators(top_k);
  if (!hotspots.empty()) {
    out << "\n--- Hottest operators (top " << hotspots.size() << ") ---\n";
    for (const FleetHotspot& hotspot : hotspots) {
      char share[32];
      std::snprintf(share, sizeof(share), "%5.1f%%", 100.0 * hotspot.share);
      out << "  " << share << "  " << hotspot.op_label << "  [" << hotspot.plan_name << "]  "
          << hotspot.samples << " samples\n";
    }
  }
  return out.str();
}

namespace {

bool HasCriticality(const ServiceProfile& profile) {
  for (const auto& [fingerprint, plan] : profile.plans()) {
    (void)fingerprint;
    if (!plan.bottleneck.empty()) {
      return true;
    }
  }
  return false;
}

void WritePlanLines(const ServiceProfile& profile, bool v4, std::ostream& out) {
  for (const auto& [fingerprint, plan] : profile.plans()) {
    out << "plan " << HexKey(fingerprint) << " " << plan.executions << " " << plan.cache_hits
        << " " << plan.cache_misses << " " << plan.compile_cycles << " " << plan.execute_cycles
        << " " << plan.name << "\n";
    for (const auto& [op, cost] : plan.operators) {
      out << "op " << HexKey(fingerprint) << " " << op << " " << cost.samples << " " << cost.label
          << "\n";
    }
    if (v4 && !plan.bottleneck.empty()) {
      out << "crit " << HexKey(fingerprint) << " " << plan.critical_cycles << " "
          << plan.top_share_pct << " " << plan.bottleneck << "\n";
    }
  }
}

}  // namespace

void WriteServiceProfile(const ServiceProfile& profile, std::ostream& out) {
  // Without windows the v1 format carries everything (criticality rides only on v4 streams,
  // which need windows anyway); v1 files stay readable forever.
  out << kProfileHeaderV1 << "\n";
  WritePlanLines(profile, /*v4=*/false, out);
}

namespace {

// Deterministic round-trippable double formatting (17 significant digits).
std::string DoubleKey(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void WriteWindowLines(const WindowedProfile& windows, bool v3, std::ostream& out) {
  for (const auto& [fingerprint, series] : windows.plans()) {
    for (const ProfileWindow& window : series.windows) {
      out << "window " << HexKey(fingerprint) << " " << window.index << " " << window.executions
          << " " << window.samples << " " << window.execute_cycles << " " << window.rows << " "
          << window.loads << " " << window.l1_misses << " " << window.l2_misses << " "
          << window.l3_misses << " " << window.remote_dram << " " << window.latency_p50 << " "
          << window.latency_p95 << " " << window.latency_max;
      if (v3) {
        out << " " << window.baseline_executions << " " << window.baseline_samples;
      }
      out << "\n";
      for (const auto& [op, stats] : window.operators) {
        out << "wop " << HexKey(fingerprint) << " " << window.index << " " << op << " "
            << stats.samples << " " << stats.sample_cycles << " " << stats.label << "\n";
      }
    }
  }
}

void WriteBaselineLines(const BaselineStore& baselines, std::ostream& out) {
  for (const auto& [fingerprint, baseline] : baselines.baselines()) {
    out << "baseline " << HexKey(fingerprint) << " " << baseline.samples << " "
        << baseline.watermark << " " << DoubleKey(baseline.cycles_per_row) << " "
        << DoubleKey(baseline.remote_share) << " " << baseline.name << "\n";
    for (const auto& [op, stats] : baseline.operators) {
      out << "bop " << HexKey(fingerprint) << " " << op << " " << stats.samples << " "
          << stats.sample_cycles << " " << stats.label << "\n";
    }
  }
}

}  // namespace

void WriteServiceProfile(const ServiceProfile& profile, const WindowedProfile& windows,
                         std::ostream& out) {
  // Content-driven versioning: only streams with critical-path rollups need the v4 layout and
  // only streams that carry tier attribution need v3; everything else stays a byte-identical
  // v2 file.
  bool tiered = false;
  for (const auto& [fingerprint, series] : windows.plans()) {
    (void)fingerprint;
    for (const ProfileWindow& window : series.windows) {
      tiered |= window.baseline_executions != 0 || window.baseline_samples != 0;
    }
  }
  const bool crit = HasCriticality(profile);
  out << (crit ? kProfileHeaderV4 : (tiered ? kProfileHeaderV3 : kProfileHeaderV2)) << "\n";
  out << "windowcfg " << windows.config().width_cycles << " " << windows.config().ring_windows
      << "\n";
  WritePlanLines(profile, crit, out);
  WriteWindowLines(windows, tiered || crit, out);
}

void WriteServiceState(const ServiceProfile& profile, const WindowedProfile& windows,
                       const BaselineStore& baselines, uint64_t service_clock_cycles,
                       std::ostream& out, const SlackStore* slack, const CardStore* cards,
                       const ReoptLog* reopts) {
  const bool crit = HasCriticality(profile);
  // A slack store that never observed an execution (generation 0) adds nothing worth a format
  // bump: the file stays a byte-identical v3/v4 stream. Same for an empty cardinality store
  // and an empty re-optimization log.
  const bool slacked = slack != nullptr && slack->generation() != 0;
  const bool carded = cards != nullptr && cards->generation() != 0;
  const bool reopted = reopts != nullptr && !reopts->actions().empty();
  out << (carded || reopted
              ? kProfileHeaderV6
              : (slacked ? kProfileHeaderV5 : (crit ? kProfileHeaderV4 : kProfileHeaderV3)))
      << "\n";
  out << "windowcfg " << windows.config().width_cycles << " " << windows.config().ring_windows
      << "\n";
  out << "clock " << service_clock_cycles << "\n";
  WritePlanLines(profile, crit || slacked || carded || reopted, out);
  WriteWindowLines(windows, /*v3=*/true, out);
  WriteBaselineLines(baselines, out);
  if (slacked) {
    out << "slackgen " << slack->generation() << "\n";
    for (const auto& [fingerprint, plan] : slack->plans()) {
      out << "slack " << HexKey(fingerprint) << " " << plan.executions << " " << plan.generation
          << " " << plan.critical_path_cycles << " " << plan.name << "\n";
      for (const StepSlack& step : plan.steps) {
        out << "slackstep " << HexKey(fingerprint) << " " << step.step << " " << step.pipeline
            << " " << step.rows;
        for (uint64_t bucket : step.bucket_slack) {
          out << " " << bucket;
        }
        out << "\n";
      }
    }
  }
  if (carded) {
    out << "cardgen " << cards->generation() << "\n";
    for (const auto& [fingerprint, plan] : cards->plans()) {
      out << "cardplan " << HexKey(fingerprint) << " " << plan.executions << " "
          << plan.generation << " " << plan.name << "\n";
      for (const auto& [op, entry] : plan.operators) {
        out << "card " << HexKey(fingerprint) << " " << op << " " << entry.observed_rows << " "
            << entry.estimated_rows << " " << entry.executions << " " << entry.generation
            << "\n";
      }
    }
  }
  if (reopted) {
    for (const ReoptAction& action : reopts->actions()) {
      out << "reopt " << HexKey(action.fingerprint) << " " << ReoptStateName(action.state)
          << " " << action.decided_tsc << " " << action.applied_tsc << " "
          << action.resolved_tsc << " " << action.divergence_pct << " " << action.reordered
          << " " << action.semi_join << " " << action.plan_name << "\n";
    }
  }
}

ServiceProfile ReadServiceProfile(std::istream& in, WindowedProfile* windows,
                                  BaselineStore* baselines, uint64_t* service_clock_cycles,
                                  SlackStore* slack, CardStore* cards, ReoptLog* reopts) {
  ServiceProfile profile;
  std::string line;
  if (!std::getline(in, line) ||
      (line != kProfileHeaderV1 && line != kProfileHeaderV2 && line != kProfileHeaderV3 &&
       line != kProfileHeaderV4 && line != kProfileHeaderV5 && line != kProfileHeaderV6)) {
    throw Error("not a dfp service profile file");
  }
  const bool v6 = line == kProfileHeaderV6;
  const bool v5 = line == kProfileHeaderV5 || v6;
  const bool v4 = line == kProfileHeaderV4 || v5;
  const bool v3 = line == kProfileHeaderV3 || v4;
  const bool v2 = line == kProfileHeaderV2 || v3;
  // Window names arrive on plan lines; remember them so the loaded series carry them too.
  std::map<uint64_t, std::string> plan_names;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream stream(line);
    std::string kind;
    stream >> kind;
    if ((kind == "windowcfg" || kind == "window" || kind == "wop") && !v2) {
      Malformed(line);
    }
    if ((kind == "clock" || kind == "baseline" || kind == "bop") && !v3) {
      Malformed(line);
    }
    if (kind == "crit" && !v4) {
      Malformed(line);
    }
    if ((kind == "slackgen" || kind == "slack" || kind == "slackstep") && !v5) {
      Malformed(line);
    }
    if ((kind == "cardgen" || kind == "cardplan" || kind == "card" || kind == "reopt") && !v6) {
      Malformed(line);
    }
    if (kind == "cardgen") {
      uint64_t generation = 0;
      if (!(stream >> generation)) {
        Malformed(line);
      }
      if (cards != nullptr) {
        cards->SetLoadedGeneration(generation);
      }
    } else if (kind == "cardplan") {
      std::string key;
      uint64_t executions = 0;
      uint64_t generation = 0;
      if (!(stream >> key >> executions >> generation)) {
        Malformed(line);
      }
      std::string name;
      std::getline(stream, name);
      if (!name.empty() && name.front() == ' ') {
        name.erase(name.begin());
      }
      if (cards != nullptr) {
        PlanCards& plan = cards->LoadPlan(std::stoull(key, nullptr, 16));
        plan.name = std::move(name);
        plan.executions = executions;
        plan.generation = generation;
      }
    } else if (kind == "card") {
      std::string key;
      uint64_t op = 0;
      CardEntry entry;
      if (!(stream >> key >> op >> entry.observed_rows >> entry.estimated_rows >>
            entry.executions >> entry.generation)) {
        Malformed(line);
      }
      if (cards != nullptr) {
        cards->LoadPlan(std::stoull(key, nullptr, 16))
            .operators[static_cast<OperatorId>(op)] = entry;
      }
    } else if (kind == "reopt") {
      std::string key;
      std::string state;
      ReoptAction action;
      uint64_t reordered = 0;
      uint64_t semi_join = 0;
      if (!(stream >> key >> state >> action.decided_tsc >> action.applied_tsc >>
            action.resolved_tsc >> action.divergence_pct >> reordered >> semi_join) ||
          !ReoptStateFromName(state, &action.state)) {
        Malformed(line);
      }
      action.fingerprint = std::stoull(key, nullptr, 16);
      action.reordered = reordered != 0;
      action.semi_join = semi_join != 0;
      std::getline(stream, action.plan_name);
      if (!action.plan_name.empty() && action.plan_name.front() == ' ') {
        action.plan_name.erase(action.plan_name.begin());
      }
      if (reopts != nullptr) {
        reopts->Add(std::move(action));
      }
    } else if (kind == "slackgen") {
      uint64_t generation = 0;
      if (!(stream >> generation)) {
        Malformed(line);
      }
      if (slack != nullptr) {
        slack->SetLoadedGeneration(generation);
      }
    } else if (kind == "slack") {
      std::string key;
      uint64_t executions = 0;
      uint64_t generation = 0;
      uint64_t critical = 0;
      if (!(stream >> key >> executions >> generation >> critical)) {
        Malformed(line);
      }
      std::string name;
      std::getline(stream, name);
      if (!name.empty() && name.front() == ' ') {
        name.erase(name.begin());
      }
      if (slack != nullptr) {
        PlanSlack& plan = slack->LoadPlan(std::stoull(key, nullptr, 16));
        plan.name = std::move(name);
        plan.executions = executions;
        plan.generation = generation;
        plan.critical_path_cycles = critical;
      }
    } else if (kind == "slackstep") {
      std::string key;
      StepSlack step;
      if (!(stream >> key >> step.step >> step.pipeline >> step.rows)) {
        Malformed(line);
      }
      for (uint64_t& bucket : step.bucket_slack) {
        if (!(stream >> bucket)) {
          Malformed(line);
        }
      }
      if (slack != nullptr) {
        // The writer emits steps in their stored (step, pipeline) order, so appending
        // reconstructs the same sorted vector.
        slack->LoadPlan(std::stoull(key, nullptr, 16)).steps.push_back(step);
      }
    } else if (kind == "crit") {
      std::string key;
      uint64_t critical_cycles = 0;
      uint64_t top_share = 0;
      std::string bottleneck;
      if (!(stream >> key >> critical_cycles >> top_share >> bottleneck)) {
        Malformed(line);
      }
      profile.AddLoadedCriticality(std::stoull(key, nullptr, 16), critical_cycles, top_share,
                                   bottleneck);
    } else if (kind == "clock") {
      uint64_t clock = 0;
      if (!(stream >> clock)) {
        Malformed(line);
      }
      if (service_clock_cycles != nullptr) {
        *service_clock_cycles = clock;
      }
    } else if (kind == "baseline") {
      std::string key;
      PlanBaseline baseline;
      if (!(stream >> key >> baseline.samples >> baseline.watermark >>
            baseline.cycles_per_row >> baseline.remote_share)) {
        Malformed(line);
      }
      baseline.fingerprint = std::stoull(key, nullptr, 16);
      std::getline(stream, baseline.name);
      if (!baseline.name.empty() && baseline.name.front() == ' ') {
        baseline.name.erase(baseline.name.begin());
      }
      if (baselines != nullptr) {
        baselines->AddLoadedBaseline(std::move(baseline));
      }
    } else if (kind == "bop") {
      std::string key;
      uint64_t op = 0;
      WindowOperatorStats stats;
      if (!(stream >> key >> op >> stats.samples >> stats.sample_cycles)) {
        Malformed(line);
      }
      stats.op = static_cast<OperatorId>(op);
      std::getline(stream, stats.label);
      if (!stats.label.empty() && stats.label.front() == ' ') {
        stats.label.erase(stats.label.begin());
      }
      if (baselines != nullptr) {
        baselines->AddLoadedBaselineOperator(std::stoull(key, nullptr, 16), std::move(stats));
      }
    } else if (kind == "windowcfg") {
      WindowConfig config;
      if (!(stream >> config.width_cycles >> config.ring_windows)) {
        Malformed(line);
      }
      if (windows != nullptr) {
        windows->set_config(config);
      }
    } else if (kind == "window") {
      std::string key;
      ProfileWindow window;
      if (!(stream >> key >> window.index >> window.executions >> window.samples >>
            window.execute_cycles >> window.rows >> window.loads >> window.l1_misses >>
            window.l2_misses >> window.l3_misses >> window.remote_dram >> window.latency_p50 >>
            window.latency_p95 >> window.latency_max)) {
        Malformed(line);
      }
      if (v3 && !(stream >> window.baseline_executions >> window.baseline_samples)) {
        Malformed(line);
      }
      if (windows != nullptr) {
        const uint64_t fingerprint = std::stoull(key, nullptr, 16);
        // LoadWindowOperator folds op lines back in; start the counter from zero.
        window.samples = 0;
        windows->LoadWindow(fingerprint, plan_names[fingerprint], std::move(window));
      }
    } else if (kind == "wop") {
      std::string key;
      uint64_t window_index = 0;
      uint64_t op = 0;
      WindowOperatorStats stats;
      if (!(stream >> key >> window_index >> op >> stats.samples >> stats.sample_cycles)) {
        Malformed(line);
      }
      stats.op = static_cast<OperatorId>(op);
      std::getline(stream, stats.label);
      if (!stats.label.empty() && stats.label.front() == ' ') {
        stats.label.erase(stats.label.begin());
      }
      if (windows != nullptr) {
        windows->LoadWindowOperator(std::stoull(key, nullptr, 16), window_index,
                                    std::move(stats));
      }
    } else if (kind == "plan") {
      std::string key;
      FleetPlanProfile plan;
      if (!(stream >> key >> plan.executions >> plan.cache_hits >> plan.cache_misses >>
            plan.compile_cycles >> plan.execute_cycles)) {
        Malformed(line);
      }
      plan.fingerprint = std::stoull(key, nullptr, 16);
      std::getline(stream, plan.name);
      if (!plan.name.empty() && plan.name.front() == ' ') {
        plan.name.erase(plan.name.begin());
      }
      plan_names[plan.fingerprint] = plan.name;
      // Rebuild the cross-plan totals as we load.
      profile.AddLoadedPlan(std::move(plan));
    } else if (kind == "op") {
      std::string key;
      FleetOperatorCost cost;
      uint64_t op = 0;
      if (!(stream >> key >> op >> cost.samples)) {
        Malformed(line);
      }
      cost.op = static_cast<OperatorId>(op);
      std::getline(stream, cost.label);
      if (!cost.label.empty() && cost.label.front() == ' ') {
        cost.label.erase(cost.label.begin());
      }
      profile.AddLoadedOperator(std::stoull(key, nullptr, 16), std::move(cost));
    } else {
      Malformed(line);
    }
  }
  return profile;
}

void ServiceProfile::AddLoadedPlan(FleetPlanProfile plan) {
  total_compile_cycles_ += plan.compile_cycles;
  total_execute_cycles_ += plan.execute_cycles;
  plans_[plan.fingerprint] = std::move(plan);
}

void ServiceProfile::AddLoadedCriticality(uint64_t fingerprint, uint64_t critical_cycles,
                                          uint64_t top_share_pct,
                                          const std::string& bottleneck) {
  auto it = plans_.find(fingerprint);
  if (it == plans_.end()) {
    throw Error("service profile crit line without a preceding plan line");
  }
  it->second.critical_cycles = critical_cycles;
  it->second.top_share_pct = top_share_pct;
  it->second.bottleneck = bottleneck;
}

void ServiceProfile::AddLoadedOperator(uint64_t fingerprint, FleetOperatorCost cost) {
  auto it = plans_.find(fingerprint);
  if (it == plans_.end()) {
    throw Error("service profile op line without a preceding plan line");
  }
  it->second.samples += cost.samples;
  total_operator_samples_ += cost.samples;
  it->second.operators[cost.op] = std::move(cost);
}

}  // namespace dfp
