// QueryService: a serving layer over the compiling engine — plan cache, concurrent session
// scheduler, and fleet profile aggregation.
//
// The paper's production framing (always-on profiling, decoupled post-processing) implies a
// long-lived serving process, not a one-query benchmark harness. This subsystem models that
// process deterministically:
//
//  - Submissions are fingerprinted and admitted through a bounded queue; at most
//    `max_active_sessions` queries are in flight.
//  - Compilation goes through the PlanCache: a hit reuses the cached artifact (zero new
//    code-segment bytes, bit-identical results, and — because the cached Tagging Dictionary is
//    copied into the execution's session — identically attributed profiles).
//  - Active sessions time-share one worker pool under weighted fair queuing: each scheduler
//    round hands every active session `weight` work units (a morsel, host step, or sequential
//    pipeline), interleaved by virtual finish time so a heavy session cannot starve a light
//    one. At the default weight of 1 this degenerates to exactly the historical round-robin.
//    Each unit comes from the session's own ParallelRun, so morsels drain through the same
//    NUMA-aware work-stealing deques as standalone runs (DESIGN.md §2c) — the service inherits
//    locality scheduling and its per-worker NumaStats without any code of its own.
//  - With tiering enabled (src/tiering/), the plan cache keys on (structure, pinned) so one
//    entry serves a whole literal family: warm hits re-bind the cached code by patching
//    immediates in place. Cold compiles run at the cheap baseline tier; the TierController
//    watches the window rollups and promotes hot fingerprints by recompiling at the optimizing
//    tier on a dedicated background lane, atomically swapping the cache entry between scheduler
//    rounds while in-flight sessions drain on the old code.
//  - Every session executes on its own virtual workers against private scratch regions placed
//    cache-congruent to the engine's shared regions (see kCacheCongruenceBytes), so a session's
//    sample stream is byte-identical to running the same query alone at the same worker count:
//    concurrent load never distorts a profile. Samples carry `session_id` for demultiplexing.
//  - Completed executions fold into the ServiceProfile, keyed by structural fingerprint.
//
// Service time is modeled as per-lane busy cycles (lane = pool worker): each unit's cycles are
// charged to the lane it ran on, compilation to the least-loaded lane. Throughput is
// queries / max-lane-cycles. Everything — admission, interleaving, clocks, samples — is a
// deterministic function of the submission sequence and the configuration.
#ifndef DFP_SRC_SERVICE_QUERY_SERVICE_H_
#define DFP_SRC_SERVICE_QUERY_SERVICE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/continuous/governor.h"
#include "src/continuous/regression.h"
#include "src/continuous/window.h"
#include "src/critpath/report.h"
#include "src/critpath/slack.h"
#include "src/service/placement_repair.h"
#include "src/engine/database.h"
#include "src/engine/parallel.h"
#include "src/engine/result.h"
#include "src/profiling/serialize.h"
#include "src/profiling/session.h"
#include "src/reopt/cardstore.h"
#include "src/reopt/controller.h"
#include "src/service/fingerprint.h"
#include "src/service/plan_cache.h"
#include "src/service/service_profile.h"
#include "src/tiering/controller.h"
#include "src/tiering/literals.h"
#include "src/tiering/tier.h"

namespace dfp {

class TraceRecorder;  // src/replay/recorder.h — capture half of fleet record/replay.

// Private session regions are placed congruent to the engine's shared regions modulo this
// stride: 512 KiB is one L3 way span (8 MiB / 16 ways) and a multiple of the L1 (4 KiB) and L2
// (64 KiB) way spans, so an address and its session-region twin map to the same set in every
// cache level. That makes a session's cache behavior — and therefore its sample stream —
// identical to a standalone run's.
inline constexpr uint64_t kCacheCongruenceBytes = 512ull * 1024;

// Configuration of the continuous-profiling layer the service runs on top of the fleet profile.
// Windows are passive (they only aggregate what the always-on profiling already collects) and
// default on; the governor actively retunes sampling periods between executions — which changes
// sample streams — and therefore defaults off (see src/continuous/governor.h).
struct ContinuousConfig {
  bool windows_enabled = true;
  WindowConfig window;
  GovernorConfig governor;
  RegressionThresholds regression;
  // Pushed one finding at a time as DetectRegressions() flags it (see DefaultRegressionAlert
  // for the stderr one-liner); null = no push alerting, findings are pull-only.
  RegressionAlertFn regression_alert;
};

// The profile-feedback scheduling loop: expected slack and classifier verdicts act back on
// the scheduler. Everything defaults OFF — acting on profiles changes schedules between
// executions, which would silently break workflows relying on byte-identical reruns
// (warm == cold), exactly the precedent the sampling governor set. Serving layers opt in.
struct SchedFeedbackConfig {
  // Order per-worker deques and pick steal victims by the SlackStore's expected slack:
  // zero-slack (critical-path) morsels run first, high-slack work is deferred to thieves.
  bool slack_scheduling = false;
  // Re-partition the column extents of a remote-DRAM-bound scan toward its consumers, guarded
  // by the regression detector (keep on clean, revert on regressed).
  bool placement_repair = false;
  // Reject at submission any deadline below the fingerprint's expected critical-path length —
  // infeasible even on an idle machine, so queueing it only wastes pool time.
  bool deadline_admission = false;
  // SlackStore entries unobserved for this many generations age out (fingerprint churn bound).
  uint64_t slack_max_age = 64;
  // Fault injection for tests/benches: rotate every repair placement one node over, so the
  // "repair" provably regresses and the guard must revert it.
  bool repair_pessimize = false;
};

struct ServiceConfig {
  // Execution pool shared (time-sliced) by all active sessions.
  ParallelConfig parallel;
  // Concurrency limits: in-flight sessions and the bounded submission queue behind them.
  uint32_t max_active_sessions = 2;
  uint32_t queue_depth = 16;
  // Per-session deadline in simulated cycles of that session's own run; 0 = none. A Submit()
  // argument overrides it per query.
  uint64_t default_deadline_cycles = 0;
  // Plan cache budget over generated machine-code bytes.
  uint64_t code_budget_bytes = 1ull << 20;
  // Per-session private scratch region sizes. Must be multiples of kCacheCongruenceBytes so the
  // regions of consecutive slots stay mutually congruent; the Database's `extra_bytes` must
  // cover max_active_sessions * (sum + up to 3 * kCacheCongruenceBytes padding).
  uint64_t session_hashtables_bytes = 48ull << 20;
  uint64_t session_state_bytes = 512ull * 1024;
  uint64_t session_output_bytes = 24ull << 20;
  // Profiling of served queries (the always-on facility). When off, queries still execute and
  // the fleet profile still counts executions/cycles, just without operator attribution.
  bool profile_executions = true;
  ProfilingConfig profiling;
  CompileCostModel compile_costs;
  // Continuous-profiling subsystem (src/continuous): windowed fleet profiles, the adaptive
  // sampling governor, and the regression thresholds DetectRegressions() diffs with.
  ContinuousConfig continuous;
  // Profile-guided tiered compilation (src/tiering): literal-parameterized plan reuse plus the
  // baseline-first compile ladder with background promotion. Off by default — the cache then
  // behaves exactly as before (exact-literal keying, optimizing-tier compiles only).
  TieringConfig tiering;
  // Profile-feedback scheduling (slack-directed deques, guarded placement repair, slack-aware
  // admission). Off by default — see SchedFeedbackConfig.
  SchedFeedbackConfig sched;
  // Closed-loop profile-guided re-optimization (src/reopt): measured cardinalities re-drive
  // physical planning, guarded by the regression detector. Off by default; requires tiering
  // (candidates install through the parameterized cache's atomic swap).
  ReoptConfig reopt;
  // When non-empty: continuous-profiling state (fleet profile, window rings, regression
  // baselines, service clock) is loaded from this file at construction and saved back on
  // destruction (or SaveState()), so a restarted service resumes its windows and regression
  // detection where the previous process left off.
  std::string state_path;
};

// Head room a DatabaseConfig needs in `extra_bytes` to host `config`'s session slots.
uint64_t ServiceArenaBytes(const ServiceConfig& config);

using TicketId = uint32_t;

enum class TicketStatus : uint8_t {
  kQueued,    // Waiting for an execution slot.
  kRunning,   // Admitted; morsels in flight.
  kDone,      // Finished; `result` and profile are valid.
  kRejected,  // Bounced at submission: queue full, or deadline infeasible (see the ticket's
              // `infeasible_deadline` flag for which).
  kTimedOut,  // Aborted mid-run: deadline exceeded.
};

// One submitted query, from enqueue to completion.
struct QueryTicket {
  TicketId id = 0;
  std::string name;
  TicketStatus status = TicketStatus::kQueued;
  PlanFingerprint fingerprint;
  bool cache_hit = false;
  uint32_t weight = 1;           // Weighted-fair-queuing share (units per scheduler round).
  PlanTier tier = PlanTier::kOptimized;  // Tier of the code this ticket executed.
  uint64_t patched_sites = 0;    // Immediates rewritten to serve this ticket (parameterized hit).
  uint64_t deadline_cycles = 0;   // 0 = none.
  // kRejected because the deadline is below the fingerprint's expected critical-path length
  // (slack-aware admission) — vs. the queue-full rejection, which leaves this false.
  bool infeasible_deadline = false;
  uint64_t compile_cycles = 0;    // Full compile on a miss, cache lookup cost on a hit.
  uint64_t execute_cycles = 0;    // The session's own simulated wall clock.
  uint64_t completed_at_cycles = 0;  // Service clock (max lane) when the ticket finished.
  // Continuous-profiling telemetry of this execution: the sampling period the PMU was armed
  // with (governor-chosen when enabled), the capture/flush cycles the PMU charged, and the
  // workers' summed busy cycles the overhead is measured against.
  uint64_t sampling_period = 0;
  SamplingOverhead sampling_overhead;
  uint64_t busy_cycles = 0;
  Result result;
  // This execution's profile (resolved), when the service profiles executions.
  std::unique_ptr<ProfilingSession> session;
  std::vector<WorkerMetrics> worker_metrics;
  // Task boundaries of this execution (morsels, host steps, sorts) in completion order — the
  // raw material the critical-path DAG (src/critpath/) is rebuilt from.
  std::vector<TaskBoundary> task_boundaries;
  // Critical-path analysis of this execution: the realized task DAG and the per-pipeline
  // bottleneck verdicts. Empty when the run produced no task boundaries.
  TaskDag dag;
  std::vector<PipelineVerdict> verdicts;

  // The compiled artifact the ticket executed (owned by the plan cache; kept alive here even
  // across eviction). Null until admission.
  std::shared_ptr<const CachedPlan> plan;

  // Plan awaiting admission; consumed on a cache miss, discarded on a hit.
  PhysicalOpPtr pending_plan;
};

class QueryService {
 public:
  // Carves the per-session scratch regions out of `db`'s extra arena head room; `db` must have
  // been configured with `extra_bytes >= ServiceArenaBytes(config)`.
  QueryService(Database& db, ServiceConfig config = ServiceConfig());
  ~QueryService();

  // Enqueues a query. Returns its ticket id immediately; status is kQueued, or kRejected when
  // the queue is full. `deadline_cycles` overrides the config default (0 = use default).
  // `weight` is the session's weighted-fair-queuing share: a weight-w session receives w work
  // units per scheduler round (default 1 = the historical round-robin slice).
  TicketId Submit(PhysicalOpPtr plan, std::string name, uint64_t deadline_cycles = 0,
                  uint32_t weight = 1);

  // Runs the scheduler until every submitted query has completed (or timed out).
  void Drain();

  const QueryTicket& ticket(TicketId id) const;
  size_t ticket_count() const { return tickets_.size(); }

  const PlanCache& plan_cache() const { return cache_; }
  ServiceProfile& fleet_profile() { return fleet_; }
  const ServiceProfile& fleet_profile() const { return fleet_; }

  // Continuous-profiling views: the windowed fleet profile (empty when windows are disabled)
  // and the adaptive sampling governor's per-plan state.
  const WindowedProfile& windows() const { return windows_; }
  const SamplingGovernor& governor() const { return governor_; }

  // Critical-path view (src/critpath/): per-fingerprint DAG rollups, criticality shares, and
  // bottleneck verdicts of everything served so far. Render with RenderCriticalPath().
  const CriticalityTracker& criticality() const { return critpath_; }

  // Freezes the current window rollups as the regression baseline (fingerprints with fewer than
  // the configured min_samples are skipped), and diffs the newest windows against it.
  void SnapshotBaseline();
  const BaselineStore& baseline() const { return baseline_; }
  std::vector<RegressionFinding> DetectRegressions() const;

  // Tiering views: the promotion controller (break-even decisions and the transition log), the
  // tier-transition sample-stream events (WriteSamples sideband format), and the count of
  // background recompilations still in flight.
  const TierController& tier_controller() const { return controller_; }
  const std::vector<SampleStreamEvent>& tier_events() const { return tier_events_; }
  size_t pending_recompiles() const { return recompile_jobs_.size(); }

  // Profile-feedback scheduling views: the per-fingerprint expected-slack store (fed from
  // every completed execution's DAG, persisted in service state), the placement-repair audit
  // log (render with RenderRepairTimeline), the scheduling-action sideband lines (v6 `sched`
  // stream lines), the pool-wide slack-policy counters summed over all sessions, and the count
  // of submissions rejected for an infeasible deadline.
  const SlackStore& slack() const { return slack_; }
  const RepairLog& repairs() const { return repairs_; }
  const std::vector<SampleStreamEvent>& sched_events() const { return sched_events_; }
  const SchedStats& sched_stats() const { return sched_stats_; }
  uint64_t infeasible_rejections() const { return infeasible_rejections_; }

  // Re-optimization views (src/reopt/): the per-fingerprint measured-cardinality store
  // (render with RenderCardStore), the re-plan audit log (render with RenderReoptTimeline),
  // and the decided/applied/kept/reverted sideband lines (v8 `reopt` stream lines).
  const CardStore& cards() const { return cards_; }
  const ReoptLog& reopts() const { return reopts_; }
  const std::vector<SampleStreamEvent>& reopt_events() const { return reopt_events_; }

  // Coordinated cache invalidation (sharded service, src/shard/): drops every cached plan and
  // pending background recompilation now, exactly as the catalog-version check in Admit()
  // would on the next admission. Returns true when the catalog version had moved since the
  // last admission (i.e. the call actually invalidated), false for a no-op.
  bool InvalidateCache();

  // Writes the continuous-profiling state (fleet profile, window rings, regression baselines,
  // service clock) to `config.state_path`; no-op when no path is configured. Also invoked by
  // the destructor, so a service with a state path persists on shutdown by default.
  void SaveState() const;

  // Attaches a workload-trace recorder (src/replay/): every subsequent Submit, completion, and
  // Drain boundary is captured. Must be called on a fresh service — before the first Submit and
  // with a zero service clock — so a replay from sequence start reproduces the recording
  // exactly; the recorder throws otherwise. The caller owns the recorder and must keep it
  // alive for the service's lifetime.
  void AttachRecorder(TraceRecorder& recorder);

  // Service clock: the busiest lane's cumulative cycles (lanes run concurrently, so this is the
  // simulated elapsed time of everything served so far).
  uint64_t ServiceNowCycles() const;
  const std::vector<uint64_t>& lane_cycles() const { return lane_cycles_; }

 private:
  struct ActiveSession;

  // One decision awaiting its background recompilation — a tier promotion, or (with
  // `candidate_plan` set) a re-optimization candidate. The dedicated recompile lane finishes
  // the compile at `ready_at_cycles` of the service clock.
  struct RecompileJob {
    CachedPlanPtr source;           // The entry being replaced.
    uint64_t ready_at_cycles = 0;   // Background lane completion time.
    uint64_t compile_cycles = 0;    // Compile estimate charged to the background lane.
    // Re-optimization candidate (src/reopt): the rewritten plan to compile at `source`'s tier
    // and its literal-order mapping (see CachedPlan::literal_permutation). Null for a tier
    // promotion.
    PhysicalOpPtr candidate_plan;
    std::vector<uint32_t> literal_permutation;
  };

  QueryTicket& TicketRef(TicketId id) { return *tickets_[id - 1]; }
  // Admits `id` into a free slot. Returns false (leaving the ticket queued) when admission must
  // wait: the ticket needs the cached entry re-bound to new literals, but an in-flight session
  // is still executing that entry's code — it drains first.
  bool Admit(TicketId id);
  // Advances `session` by one unit; returns true when the ticket completed (done or timed out).
  bool StepSession(ActiveSession& session);
  // Guarded placement-repair loop, stepped at every completion: triggers a re-partition on a
  // remote-DRAM-bound verdict, and resolves an applied one (keep/revert) once the regression
  // guard has evidence.
  void StepPlacementRepair(QueryTicket& ticket);
  // Guarded re-optimization loop, stepped at every completion: triggers a re-plan when the
  // fingerprint's measured cardinalities diverged past the threshold, and resolves an applied
  // swap (keep/revert) once the regression guard has evidence.
  void StepReopt(QueryTicket& ticket, const CachedPlanPtr& entry);
  void ChargeSerialWork(uint64_t cycles);  // Compile/lookup work: to the least-loaded lane.
  // True while some active session executes `entry`'s code.
  bool EntryBusy(const CachedPlanPtr& entry) const;
  // Swaps in finished background recompilations. With `final` set (queue drained), pending
  // jobs complete at their background-lane finish time even though the service clock stopped.
  void ProcessRecompiles(bool final);
  void LoadState();

  Database& db_;
  ServiceConfig config_;
  PlanCache cache_;
  ServiceProfile fleet_;
  WindowedProfile windows_;
  SamplingGovernor governor_;
  BaselineStore baseline_;
  TierController controller_;
  CriticalityTracker critpath_;
  SlackStore slack_;
  RepairLog repairs_;
  // The placement-repair guard measures against its own snapshot, taken the moment an action
  // is applied — the user-facing baseline_ (SnapshotBaseline/DetectRegressions) must not be
  // clobbered by the loop's internal bookkeeping.
  BaselineStore repair_baseline_;
  CardStore cards_;
  ReoptLog reopts_;
  // Like repair_baseline_: the reopt guard's private pre-swap snapshot.
  BaselineStore reopt_baseline_;
  SchedStats sched_stats_;
  uint64_t infeasible_rejections_ = 0;
  uint64_t seen_catalog_version_;

  std::vector<std::unique_ptr<QueryTicket>> tickets_;
  std::deque<TicketId> queue_;
  std::vector<std::unique_ptr<ActiveSession>> active_;  // Admission order.
  std::vector<ScratchRegions> slots_;
  std::vector<size_t> free_slots_;  // Kept sorted; lowest slot is reused first.
  std::vector<uint64_t> lane_cycles_;
  std::vector<RecompileJob> recompile_jobs_;  // FIFO; background lane is serial.
  uint64_t recompile_lane_busy_cycles_ = 0;   // Background lane's busy-until mark.
  std::vector<SampleStreamEvent> tier_events_;
  std::vector<SampleStreamEvent> sched_events_;
  std::vector<SampleStreamEvent> reopt_events_;
  TraceRecorder* recorder_ = nullptr;  // Not owned; null when not recording.
};

}  // namespace dfp

#endif  // DFP_SRC_SERVICE_QUERY_SERVICE_H_
