// Bounded LRU cache of compiled query artifacts, keyed by plan fingerprint.
//
// A cache entry owns everything lowering steps 2-3 produced for a plan — the compiled pipelines
// (whose machine code stays registered in the global code map), the state-block layout, the
// Tagging Dictionary snapshot, and the execution schedule — so a hit skips IR generation and
// backend compilation entirely and adds zero new code-segment bytes. Entries are handed out as
// shared_ptrs: an entry evicted while a session still executes it stays alive until the session
// finishes.
//
// Eviction is LRU under a configurable code-memory budget (the paper's always-on production
// framing: generated code is a resource to manage, not a one-shot byproduct). Catalog changes
// invalidate the whole cache; the catalog version is also mixed into every fingerprint, so a
// stale entry could never be looked up again anyway — invalidation just reclaims its budget.
#ifndef DFP_SRC_SERVICE_PLAN_CACHE_H_
#define DFP_SRC_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/exec_plan.h"
#include "src/profiling/tagging_dictionary.h"
#include "src/service/fingerprint.h"
#include "src/tiering/literals.h"
#include "src/tiering/tier.h"
#include "src/vcpu/code_map.h"

namespace dfp {

// Deterministic model of compilation cost in simulated cycles, covering the three lowering
// steps of Figure 8 with an optimizing backend. Calibrated to the tens of milliseconds an
// LLVM-style -O2 pipeline spends on a TPC-H query (HyPer/Umbra-reported range) — the regime
// where compilation dominates short queries and a plan cache pays for itself. A fast baseline
// backend (Umbra's "flying start") would shrink per_ir_instr by two orders of magnitude.
struct CompileCostModel {
  uint64_t base_cycles = 2'000'000;      // Plan lowering, module setup, schedule construction.
  uint64_t per_ir_instr = 60'000;        // IR generation + optimization passes (superlinear in
                                         // reality; linearized over our compact VIR).
  uint64_t per_machine_instr = 15'000;   // Instruction selection, regalloc, encoding.
  uint64_t cache_lookup_cycles = 5'000;  // Fingerprint walk + probe, charged on a hit.
  // Baseline tier (optimization passes disabled — Umbra's "flying start" regime): lowering and
  // setup still happen, but the pass pipeline, the dominant per-instruction cost, is skipped.
  uint64_t baseline_base_cycles = 800'000;
  uint64_t baseline_per_ir_instr = 12'000;
  uint64_t baseline_per_machine_instr = 6'000;
  // Re-binding a cached artifact to new literals: one immediate write per relocation site.
  uint64_t patch_per_site_cycles = 2'000;
};

uint64_t EstimateCompileCycles(const CompiledQuery& query, const CompileCostModel& model,
                               PlanTier tier = PlanTier::kOptimized);

// Simulated bytes of generated machine code registered for `query` (the quantity the cache
// budget bounds).
uint64_t CompiledCodeBytes(const CompiledQuery& query, const CodeMap& code_map);

// One cached compiled plan. `query.session` is always null: the compile-time session's
// Tagging Dictionary is snapshotted here and copied into each execution's session, so profiles
// of warm hits resolve exactly like the cold run's.
struct CachedPlan {
  PlanFingerprint fingerprint;
  std::string name;  // Name of the first query compiled into this entry.
  CompiledQuery query;
  TaggingDictionary dictionary;
  uint64_t catalog_version = 0;
  uint64_t code_bytes = 0;
  uint64_t compile_cycles = 0;
  // Tiering (src/tiering/): the backend tier this entry's code was compiled at, and — in
  // parameterized mode — the literal bindings its immediates currently hold. `fingerprint`
  // tracks the bindings: after a patch, `fingerprint.literals` is the served query's hash.
  PlanTier tier = PlanTier::kOptimized;
  PlanLiterals literals;
  // Re-optimization (src/reopt/): a rewritten candidate extracts its literals in rewritten
  // plan order, but incoming submissions of the family still bind in the original plan's
  // order. This maps the entry's literal slot j to the submission slot it reads (possibly
  // duplicating one, e.g. a semi-join reduction's cloned keys). Empty = identity.
  std::vector<uint32_t> literal_permutation;
};

using CachedPlanPtr = std::shared_ptr<CachedPlan>;

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  uint64_t resident_entries = 0;
  uint64_t resident_code_bytes = 0;
  // Parameterized mode only: hits served by patching immediates (subset of `hits`), and
  // background optimizing-tier recompilations swapped in by the tier controller.
  uint64_t patched_hits = 0;
  uint64_t tier_swaps = 0;
};

class PlanCache {
 public:
  // In parameterized mode (tiering enabled) entries key on (structure, pinned): one entry
  // serves every literal binding of a plan family, and a Lookup hit may require patching
  // (caller compares `fingerprint.literals`). Otherwise the key is (structure, literals) and
  // hits are always exact — the historical behavior, bit-for-bit.
  explicit PlanCache(uint64_t code_budget_bytes, bool parameterized = false)
      : code_budget_bytes_(code_budget_bytes), parameterized_(parameterized) {}

  // Returns the entry for `fingerprint` (bumping it to most-recently-used and counting a hit),
  // or null (counting a miss).
  CachedPlanPtr Lookup(const PlanFingerprint& fingerprint);

  // Same resolution as Lookup but without touching the stats or the LRU order — for admission
  // checks that may defer (and later re-issue the real Lookup).
  CachedPlanPtr Peek(const PlanFingerprint& fingerprint) const;

  // Inserts a freshly compiled entry as most-recently-used, then evicts least-recently-used
  // entries until the resident code size fits the budget (the newest entry itself is never
  // evicted: caching it is what the caller just paid for).
  void Insert(CachedPlanPtr entry);

  // Drops every entry (catalog/schema change).
  void InvalidateAll();

  // Counts a Lookup hit that was served by patching (parameterized mode).
  void NotePatchedHit() { ++stats_.patched_hits; }
  // Counts a background tier swap (Insert with the recompiled entry performs the swap itself).
  void NoteTierSwap() { ++stats_.tier_swaps; }

  const PlanCacheStats& stats() const { return stats_; }
  uint64_t code_budget_bytes() const { return code_budget_bytes_; }
  bool parameterized() const { return parameterized_; }

 private:
  using Key = std::pair<uint64_t, uint64_t>;  // (structure, literals) or (structure, pinned).

  struct Slot {
    CachedPlanPtr entry;
    std::list<Key>::iterator lru_position;
  };

  Key KeyOf(const PlanFingerprint& fingerprint) const {
    return {fingerprint.structure, parameterized_ ? fingerprint.pinned : fingerprint.literals};
  }

  uint64_t code_budget_bytes_;
  bool parameterized_;
  std::map<Key, Slot> entries_;
  std::list<Key> lru_;  // Front = most recently used.
  PlanCacheStats stats_;
};

}  // namespace dfp

#endif  // DFP_SRC_SERVICE_PLAN_CACHE_H_
