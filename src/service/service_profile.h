// Fleet-level profile aggregation: folding every execution's resolved samples into
// per-fingerprint cumulative statistics.
//
// The paper frames Tailored Profiling as an always-on production facility (§5.2: per-core perf
// buffers, decoupled post-processing). This is the decoupled side at service scale: each query
// execution's resolved samples are folded into its plan fingerprint's running totals — operator
// costs, cache hit/miss counts, and the compile-vs-execute cycle split — and the whole profile
// round-trips through the same line-oriented text format as the Tagging Dictionary and sample
// dumps, so a fleet profile written by a serving process can be analyzed offline.
#ifndef DFP_SRC_SERVICE_SERVICE_PROFILE_H_
#define DFP_SRC_SERVICE_SERVICE_PROFILE_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/continuous/regression.h"
#include "src/continuous/window.h"
#include "src/engine/exec_plan.h"
#include "src/profiling/session.h"
#include "src/service/fingerprint.h"

namespace dfp {

class SlackStore;  // src/critpath/slack.h — expected-slack persistence (profile v5).
class CardStore;   // src/reopt/cardstore.h — measured-cardinality persistence (profile v6).
class ReoptLog;    // src/reopt/controller.h — re-optimization audit trail (profile v6).

struct FleetOperatorCost {
  OperatorId op = kNoOperator;
  std::string label;
  uint64_t samples = 0;
};

// Cumulative statistics of one plan fingerprint (one prepared-statement family).
struct FleetPlanProfile {
  uint64_t fingerprint = 0;  // Structural hash (literal bindings aggregate together).
  std::string name;          // Name of the first query seen with this fingerprint.
  uint64_t executions = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t compile_cycles = 0;  // Cold compilations + warm lookup costs.
  uint64_t execute_cycles = 0;  // Summed per-execution simulated wall clocks.
  uint64_t samples = 0;
  // Critical-path rollup (src/critpath/): cumulative critical-path work across executions, the
  // last execution's top per-pipeline criticality share (percent), and the most recent
  // bottleneck verdict of that top pipeline ("compute-bound", "remote-dram-bound", ...).
  // `bottleneck` stays empty until a critical-path analysis is recorded.
  uint64_t critical_cycles = 0;
  uint64_t top_share_pct = 0;
  std::string bottleneck;
  std::map<OperatorId, FleetOperatorCost> operators;
};

// One row of the hottest-operators-across-the-fleet report.
struct FleetHotspot {
  std::string plan_name;
  std::string op_label;
  uint64_t samples = 0;
  double share = 0;  // Of all operator-attributed samples across the fleet.
};

class ServiceProfile {
 public:
  // Records one trip through the plan cache (hit or cold compile) for `fingerprint`.
  void RecordCompile(const PlanFingerprint& fingerprint, const std::string& name,
                     uint64_t compile_cycles, bool cache_hit);

  // Folds one execution's resolved samples into the fingerprint's totals. `session` must be
  // resolved; `query` supplies operator labels.
  void RecordExecution(const PlanFingerprint& fingerprint, const CompiledQuery& query,
                       const ProfilingSession& session, uint64_t execute_cycles);

  // Same, from a prebuilt per-operator aggregation — callers that also feed a WindowedProfile
  // build the OperatorProfile once and hand it to both, keeping the two views in agreement.
  void RecordExecution(const PlanFingerprint& fingerprint, const CompiledQuery& query,
                       const OperatorProfile& profile, uint64_t execute_cycles);

  // Folds one execution's critical-path analysis into the fingerprint: adds the critical-path
  // work and overwrites the latest top-pipeline share and bottleneck label (the fleet view
  // reports the current verdict, not a history).
  void RecordCriticality(const PlanFingerprint& fingerprint, const std::string& name,
                         uint64_t critical_work_cycles, uint64_t top_share_pct,
                         const std::string& bottleneck);

  const std::map<uint64_t, FleetPlanProfile>& plans() const { return plans_; }
  uint64_t total_compile_cycles() const { return total_compile_cycles_; }
  uint64_t total_execute_cycles() const { return total_execute_cycles_; }
  uint64_t total_operator_samples() const { return total_operator_samples_; }

  // The K hottest operators across all fingerprints, by cumulative samples (ties broken by
  // fingerprint then operator id, so the report is deterministic).
  std::vector<FleetHotspot> TopOperators(size_t k) const;

  // Renders the fleet report: per-fingerprint summary plus the top-K table.
  std::string Render(size_t top_k = 10) const;

  // Used by ReadServiceProfile to reconstitute a profile; cross-plan totals are rebuilt as
  // entries load (per-plan sample counts derive from the op lines).
  void AddLoadedPlan(FleetPlanProfile plan);
  void AddLoadedOperator(uint64_t fingerprint, FleetOperatorCost cost);
  void AddLoadedCriticality(uint64_t fingerprint, uint64_t critical_cycles,
                            uint64_t top_share_pct, const std::string& bottleneck);

 private:
  FleetPlanProfile& PlanFor(const PlanFingerprint& fingerprint, const std::string& name);

  std::map<uint64_t, FleetPlanProfile> plans_;
  uint64_t total_compile_cycles_ = 0;
  uint64_t total_execute_cycles_ = 0;
  uint64_t total_operator_samples_ = 0;
};

// Line-oriented text format, in the family of WriteDictionary/WriteSamples (§5.2 decoupling).
// Version 2 embeds the windowed fleet profile next to the cumulative counters; version 3 adds
// the pieces a restarting service needs to resume where it left off — the service clock, the
// per-window tier split, and the frozen regression baselines; version 4 adds per-plan
// critical-path rollups; version 5 adds the expected-slack store the slack-directed scheduler
// and deadline admission read (src/critpath/slack.h); version 6 adds the measured-cardinality
// store and the re-optimization audit trail (src/reopt/), so a restarted service resumes the
// closed loop from its pre-restart measurements:
//   # dfp service profile v2|v3|v4|v5|v6
//   windowcfg <width-cycles> <ring-windows>
//   clock <service-clock-cycles>                                              (v3)
//   plan <fingerprint-hex> <executions> <hits> <misses> <compile-cycles> <execute-cycles> <name...>
//   op <fingerprint-hex> <operator-id> <samples> <label...>
//   crit <fingerprint-hex> <critical-cycles> <top-share-pct> <bottleneck>     (v4)
//   window <fingerprint-hex> <index> <executions> <samples> <execute-cycles> <rows> <loads>
//          <l1> <l2> <l3> <remote> <lat-p50> <lat-p95> <lat-max>
//          [<baseline-executions> <baseline-samples>]                         (v3)
//   wop <fingerprint-hex> <window-index> <operator-id> <samples> <sample-cycles> <label...>
//   baseline <fingerprint-hex> <samples> <watermark> <cycles-per-row> <remote-share> <name...> (v3)
//   bop <fingerprint-hex> <operator-id> <samples> <sample-cycles> <label...>  (v3)
//   slackgen <store-generation>                                               (v5)
//   slack <fingerprint-hex> <executions> <generation> <critical-path-cycles> <name...>  (v5)
//   slackstep <fingerprint-hex> <step> <pipeline> <rows> <b0> ... <b15>       (v5)
//   cardgen <store-generation>                                                (v6)
//   cardplan <fingerprint-hex> <executions> <generation> <name...>            (v6)
//   card <fingerprint-hex> <operator-id> <observed-rows> <estimated-rows> <executions>
//        <generation>                                                         (v6)
//   reopt <fingerprint-hex> <state> <decided-tsc> <applied-tsc> <resolved-tsc>
//         <divergence-pct> <reordered> <semi-join> <name...>                  (v6)
// The writers are content-driven: the two-argument form emits v4 only when some plan carries a
// critical-path rollup and v3 only when some window carries baseline-tier counts, so
// pre-tiering and pre-critpath profiles stay byte-identical v2/v3 files. The v1 header with
// plan/op lines only is still accepted by ReadServiceProfile.
void WriteServiceProfile(const ServiceProfile& profile, std::ostream& out);
void WriteServiceProfile(const ServiceProfile& profile, const WindowedProfile& windows,
                         std::ostream& out);

// Persistence writer: embeds the service clock and the regression baselines — everything
// QueryService saves on shutdown and restores on start. Emits v6 when `cards` holds
// observations or `reopts` holds actions, v5 when `slack` holds observed executions (its
// generation advanced), v4 when a plan carries a critical-path rollup, v3 otherwise — a
// service that never enabled the closed loops keeps writing byte-identical v3/v4 files.
void WriteServiceState(const ServiceProfile& profile, const WindowedProfile& windows,
                       const BaselineStore& baselines, uint64_t service_clock_cycles,
                       std::ostream& out, const SlackStore* slack = nullptr,
                       const CardStore* cards = nullptr, const ReoptLog* reopts = nullptr);

// Inverse of WriteServiceProfile/WriteServiceState; parses v1 through v6. When `windows` is
// non-null, window lines are reconstituted into it (it keeps its configured ring bound; the
// file's windowcfg line restores the writer's configuration first). `baselines` and
// `service_clock_cycles`, when non-null, receive the v3 regression baselines and service
// clock; `slack`, when non-null, receives the v5 expected-slack store (including its
// generation clock, so age-out resumes where the writer left off); `cards` and `reopts`, when
// non-null, receive the v6 cardinality store and re-optimization audit trail (loaded actions
// carry no replaced entry — the cache is cold — so an applied action resolves as reverted at
// its next completion). Throws dfp::Error on malformed input.
ServiceProfile ReadServiceProfile(std::istream& in, WindowedProfile* windows = nullptr,
                                  BaselineStore* baselines = nullptr,
                                  uint64_t* service_clock_cycles = nullptr,
                                  SlackStore* slack = nullptr, CardStore* cards = nullptr,
                                  ReoptLog* reopts = nullptr);

}  // namespace dfp

#endif  // DFP_SRC_SERVICE_SERVICE_PROFILE_H_
