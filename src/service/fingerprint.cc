#include "src/service/fingerprint.h"

#include <cstdio>

#include "src/util/hash.h"

namespace dfp {
namespace {

// Accumulates the two fingerprint halves over a pre-order plan walk. Both halves use the
// engine's HashCombine chain so the fingerprint is stable across platforms and runs.
struct FingerprintBuilder {
  uint64_t structure = 0xdf9de11ce0ull;  // Arbitrary non-zero seeds.
  uint64_t literals = 0x117e7a15ull;
  uint64_t pinned = 0x9177ed11ull;

  void Shape(uint64_t value) { structure = HashCombine(structure, HashKey(value)); }
  void Literal(uint64_t value) { literals = HashCombine(literals, HashKey(value)); }
  // A literal the artifact's memory layout depends on: hashed into both halves.
  void PinnedLiteral(uint64_t value) {
    Literal(value);
    pinned = HashCombine(pinned, HashKey(value));
  }

  void ShapeString(const std::string& text) {
    Shape(text.size());
    for (char c : text) {
      Shape(static_cast<uint64_t>(static_cast<unsigned char>(c)));
    }
  }

  void LiteralString(const std::string& text) {
    Literal(text.size());
    for (char c : text) {
      Literal(static_cast<uint64_t>(static_cast<unsigned char>(c)));
    }
  }

  void AddExpr(const Expr& expr) {
    Shape(static_cast<uint64_t>(expr.kind));
    Shape(static_cast<uint64_t>(expr.type));
    switch (expr.kind) {
      case ExprKind::kColumnRef:
        Shape(static_cast<uint64_t>(expr.slot));
        break;
      case ExprKind::kLiteral:
        // The payload is a parameter, not part of the shape.
        Literal(static_cast<uint64_t>(expr.literal));
        break;
      case ExprKind::kBinary:
        Shape(static_cast<uint64_t>(expr.bin));
        break;
      case ExprKind::kUnary:
        Shape(static_cast<uint64_t>(expr.un));
        break;
      case ExprKind::kAggregate:
        Shape(static_cast<uint64_t>(expr.agg));
        break;
      case ExprKind::kLike:
        // The pattern is a constant; only its presence shapes the plan.
        LiteralString(expr.pattern);
        break;
      case ExprKind::kInList:
        Shape(expr.list.size());
        for (int64_t candidate : expr.list) {
          Literal(static_cast<uint64_t>(candidate));
        }
        break;
      case ExprKind::kCase:
        Shape(expr.whens.size());
        break;
      case ExprKind::kCast:
      case ExprKind::kExtractYear:
        break;
    }
    for (const auto& [condition, value] : expr.whens) {
      AddExpr(*condition);
      AddExpr(*value);
    }
    if (expr.left != nullptr) {
      AddExpr(*expr.left);
    }
    if (expr.right != nullptr) {
      AddExpr(*expr.right);
    }
    if (expr.else_value != nullptr) {
      AddExpr(*expr.else_value);
    }
  }

  void AddOp(const PhysicalOp& op) {
    Shape(static_cast<uint64_t>(op.kind));
    Shape(op.children.size());
    Shape(op.output.size());
    for (const OutputColumn& column : op.output) {
      Shape(static_cast<uint64_t>(column.type));
    }
    if (op.table != nullptr) {
      ShapeString(op.table->name());
    }
    Shape(static_cast<uint64_t>(op.projecting));
    Shape(static_cast<uint64_t>(op.join_type));
    for (int slot : op.build_keys) {
      Shape(static_cast<uint64_t>(slot) + 1);
    }
    for (int slot : op.probe_keys) {
      Shape(static_cast<uint64_t>(slot) + 2);
    }
    for (int slot : op.build_payload) {
      Shape(static_cast<uint64_t>(slot) + 3);
    }
    for (int slot : op.group_keys) {
      Shape(static_cast<uint64_t>(slot) + 4);
    }
    for (const SortItem& item : op.sort_items) {
      Shape(static_cast<uint64_t>(item.slot));
      Shape(static_cast<uint64_t>(item.descending));
    }
    // LIMIT counts are tuning constants, not plan shape (a top-10 and a top-100 of the same
    // query are the same prepared statement); presence is shaped via kind above.
    if (op.limit >= 0) {
      // Pinned: a LIMIT caps bound_rows, which sized the cached artifact's buffers.
      PinnedLiteral(static_cast<uint64_t>(op.limit));
    }
    Shape(op.exprs.size());
    for (const ExprPtr& expr : op.exprs) {
      AddExpr(*expr);
    }
    for (const auto& child : op.children) {
      AddOp(*child);
    }
  }
};

}  // namespace

PlanFingerprint FingerprintPlan(const PhysicalOp& root, uint64_t catalog_version) {
  FingerprintBuilder builder;
  builder.Shape(catalog_version);
  builder.AddOp(root);
  PlanFingerprint fingerprint;
  fingerprint.structure = builder.structure;
  fingerprint.literals = builder.literals;
  fingerprint.pinned = builder.pinned;
  return fingerprint;
}

std::string FingerprintKey(const PlanFingerprint& fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(fingerprint.structure));
  return buffer;
}

}  // namespace dfp
