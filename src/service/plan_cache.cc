#include "src/service/plan_cache.h"

namespace dfp {

uint64_t EstimateCompileCycles(const CompiledQuery& query, const CompileCostModel& model,
                               PlanTier tier) {
  const bool baseline = tier == PlanTier::kBaseline;
  uint64_t cycles = baseline ? model.baseline_base_cycles : model.base_cycles;
  const uint64_t per_ir = baseline ? model.baseline_per_ir_instr : model.per_ir_instr;
  const uint64_t per_machine =
      baseline ? model.baseline_per_machine_instr : model.per_machine_instr;
  for (const PipelineArtifact& artifact : query.pipelines) {
    cycles += per_ir * artifact.stats.ir_instrs;
    cycles += per_machine * artifact.stats.machine_instrs;
  }
  return cycles;
}

uint64_t CompiledCodeBytes(const CompiledQuery& query, const CodeMap& code_map) {
  // The simulator's machine instructions are fixed-width; model them at 8 bytes each, the
  // ballpark of a compact x86-64 encoding with operands.
  constexpr uint64_t kBytesPerInstr = 8;
  uint64_t bytes = 0;
  for (const PipelineArtifact& artifact : query.pipelines) {
    bytes += code_map.segment(artifact.segment).code.size() * kBytesPerInstr;
  }
  return bytes;
}

CachedPlanPtr PlanCache::Lookup(const PlanFingerprint& fingerprint) {
  auto it = entries_.find(KeyOf(fingerprint));
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_position);
  return it->second.entry;
}

CachedPlanPtr PlanCache::Peek(const PlanFingerprint& fingerprint) const {
  auto it = entries_.find(KeyOf(fingerprint));
  return it == entries_.end() ? nullptr : it->second.entry;
}

void PlanCache::Insert(CachedPlanPtr entry) {
  const Key key = KeyOf(entry->fingerprint);
  auto existing = entries_.find(key);
  if (existing != entries_.end()) {
    // Recompiled while an equivalent entry exists (e.g. two cold submissions raced through
    // admission). Keep the newer artifact and fold the older one's budget back.
    stats_.resident_code_bytes -= existing->second.entry->code_bytes;
    lru_.erase(existing->second.lru_position);
    entries_.erase(existing);
  }
  stats_.resident_code_bytes += entry->code_bytes;
  lru_.push_front(key);
  entries_[key] = Slot{std::move(entry), lru_.begin()};
  stats_.resident_entries = entries_.size();

  while (stats_.resident_code_bytes > code_budget_bytes_ && entries_.size() > 1) {
    const Key victim = lru_.back();
    auto it = entries_.find(victim);
    stats_.resident_code_bytes -= it->second.entry->code_bytes;
    lru_.pop_back();
    entries_.erase(it);
    ++stats_.evictions;
  }
  stats_.resident_entries = entries_.size();
}

void PlanCache::InvalidateAll() {
  stats_.invalidations += entries_.size();
  entries_.clear();
  lru_.clear();
  stats_.resident_entries = 0;
  stats_.resident_code_bytes = 0;
}

}  // namespace dfp
