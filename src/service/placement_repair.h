// Classifier-driven placement repair: the guarded closed-loop action that turns a
// remote-DRAM-bound verdict into a column re-partition.
//
// When the roofline classifier labels a fingerprint's scan pipeline remote-DRAM-bound, the
// scan's workers spend a reclaimable share of their cycles pulling rows across the
// interconnect — the default equal-share range partition put the rows on nodes other than the
// ones that actually consume them (stealing, round-robin dealing, or a skewed morsel-size
// profile shifted consumption). The repair re-partitions the offending table's column extents
// toward the consumers: the observed DAG says which worker ran each morsel, so each row range
// is assigned to that worker's node (ComputeConsumerPlacement) and the map is installed as a
// VMem placement override — the NumaMap of every later run resolves ownership by it, exactly
// like a page migration that leaves virtual addresses intact. The deal rule deliberately does
// NOT follow the override: a repair moves data toward the (fixed, canonically dealt)
// consumers, so a wrong map stays observably wrong and the guard below can catch it.
//
// The action is guarded, not trusted: the service snapshots a baseline before applying,
// re-measures on the windows that arrive after, and keeps or reverts by the regression
// detector's verdict (src/continuous/regression.h GuardVerdict). Every transition —
// decided, applied, kept, reverted — lands in the sample stream as a v6 `sched` line and in
// the tier-timeline-style rendering below.
#ifndef DFP_SRC_SERVICE_PLACEMENT_REPAIR_H_
#define DFP_SRC_SERVICE_PLACEMENT_REPAIR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/critpath/dag.h"
#include "src/vcpu/vmem.h"

namespace dfp {

// Consumer-directed partition map for one scanned table: each morsel row range of `pipeline`'s
// tasks in `dag` goes to the node of the worker that executed it (worker id modulo `nodes` —
// the executor's pinning rule), consecutive same-node ranges compressed into one slice.
// `pessimize` rotates every slice one node over — deliberately wrong placement, used by tests
// and benches to inject a regression the guard must catch and revert. Returns an empty map
// when the pipeline has no morsel tasks.
PartitionMap ComputeConsumerPlacement(const TaskDag& dag, uint32_t pipeline, uint32_t nodes,
                                      bool pessimize = false);

// Lifecycle of one repair action. kDecided is transient (verdict seen, override installed in
// the same step); a kept or reverted action stays in the log as the audit trail and blocks
// re-triggering on the same fingerprint.
enum class RepairState : uint8_t {
  kDecided,   // Remote-DRAM-bound verdict accepted; re-partition chosen.
  kApplied,   // Override installed; re-measuring against the pre-apply baseline.
  kKept,      // Guard verdict clean: the re-partition stays.
  kReverted,  // Guard verdict regressed: override removed, default placement restored.
};

const char* RepairStateName(RepairState state);

struct RepairAction {
  uint64_t fingerprint = 0;
  std::string plan_name;
  std::string table;       // Name of the re-partitioned table.
  uint32_t pipeline = 0;   // The scan pipeline whose verdict triggered the action.
  RepairState state = RepairState::kDecided;
  uint64_t decided_tsc = 0;
  uint64_t applied_tsc = 0;
  uint64_t resolved_tsc = 0;  // Kept/reverted timestamp; 0 while still measuring.
  PartitionMap placement;     // The installed map (kept for the revert and the report).
};

// Append-only audit log of repair actions, one open action per fingerprint at a time.
class RepairLog {
 public:
  RepairAction& Add(RepairAction action);
  // The action for `fingerprint`, regardless of state; nullptr when none was ever decided.
  // One action per fingerprint: a kept action needs no second repair, a reverted one proved
  // the repair wrong — either way the loop must not oscillate.
  RepairAction* Find(uint64_t fingerprint);
  const RepairAction* Find(uint64_t fingerprint) const;

  const std::vector<RepairAction>& actions() const { return actions_; }
  uint64_t applied() const;   // Actions currently applied or kept.
  uint64_t reverted() const;  // Actions the guard rolled back.

 private:
  std::vector<RepairAction> actions_;
};

// Tier-timeline-style rendering: one line per action with its transitions and slice count.
std::string RenderRepairTimeline(const RepairLog& log);

}  // namespace dfp

#endif  // DFP_SRC_SERVICE_PLACEMENT_REPAIR_H_
