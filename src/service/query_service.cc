#include "src/service/query_service.h"

#include <algorithm>
#include <utility>

#include "src/engine/codegen.h"
#include "src/profiling/reports.h"
#include "src/util/check.h"

namespace dfp {

uint64_t ServiceArenaBytes(const ServiceConfig& config) {
  const uint64_t per_session = config.session_hashtables_bytes + config.session_state_bytes +
                               config.session_output_bytes + 3 * kCacheCongruenceBytes;
  return config.max_active_sessions * per_session;
}

// One in-flight query: its own virtual worker pool (inside `run`) over its slot's private
// regions. The object is heap-allocated so the SamplingConfig and run stay pinned while the
// active list grows and shrinks.
struct QueryService::ActiveSession {
  TicketId ticket = 0;
  CachedPlanPtr entry;
  size_t slot = 0;
  std::unique_ptr<ParallelRun> run;
};

namespace {

// Creates a scratch region whose base is congruent to `model_base` modulo the cache-congruence
// stride, burning the gap as an anonymous pad region when needed.
uint32_t CreateCongruentRegion(Database& db, const std::string& name, uint64_t size,
                               uint64_t model_base) {
  const uint64_t stride = kCacheCongruenceBytes;
  const uint64_t next = db.mem().next_base();
  const uint64_t pad = (model_base % stride + stride - next % stride) % stride;
  if (pad != 0) {
    db.CreateScratchRegion(name + ".pad", pad);
  }
  return db.CreateScratchRegion(name, size);
}

}  // namespace

QueryService::QueryService(Database& db, ServiceConfig config)
    : db_(db),
      config_(std::move(config)),
      cache_(config_.code_budget_bytes),
      windows_(config_.continuous.window),
      governor_(config_.continuous.governor),
      seen_catalog_version_(db.catalog_version()),
      lane_cycles_(config_.parallel.workers, 0) {
  DFP_CHECK(config_.max_active_sessions >= 1);
  // One region set per session slot, each congruent to the engine's shared regions so a
  // session's cache behavior matches a standalone run on the shared regions exactly.
  const uint64_t ht_base = db_.mem().region(db_.hashtables_region()).base;
  const uint64_t state_base = db_.mem().region(db_.state_region()).base;
  const uint64_t out_base = db_.mem().region(db_.output_region()).base;
  for (uint32_t s = 0; s < config_.max_active_sessions; ++s) {
    const std::string prefix = "session" + std::to_string(s) + ".";
    ScratchRegions regions;
    regions.hashtables = CreateCongruentRegion(db_, prefix + "hashtables",
                                               config_.session_hashtables_bytes, ht_base);
    regions.state =
        CreateCongruentRegion(db_, prefix + "state", config_.session_state_bytes, state_base);
    regions.output =
        CreateCongruentRegion(db_, prefix + "output", config_.session_output_bytes, out_base);
    slots_.push_back(regions);
    free_slots_.push_back(s);
  }
}

QueryService::~QueryService() = default;

const QueryTicket& QueryService::ticket(TicketId id) const {
  DFP_CHECK(id >= 1 && id <= tickets_.size());
  return *tickets_[id - 1];
}

TicketId QueryService::Submit(PhysicalOpPtr plan, std::string name, uint64_t deadline_cycles) {
  auto ticket = std::make_unique<QueryTicket>();
  ticket->id = static_cast<TicketId>(tickets_.size() + 1);
  ticket->name = std::move(name);
  ticket->fingerprint = FingerprintPlan(*plan, db_.catalog_version());
  ticket->deadline_cycles =
      deadline_cycles != 0 ? deadline_cycles : config_.default_deadline_cycles;
  if (queue_.size() >= config_.queue_depth) {
    ticket->status = TicketStatus::kRejected;
    tickets_.push_back(std::move(ticket));
    return tickets_.back()->id;
  }
  ticket->pending_plan = std::move(plan);
  ticket->status = TicketStatus::kQueued;
  queue_.push_back(ticket->id);
  tickets_.push_back(std::move(ticket));
  return tickets_.back()->id;
}

void QueryService::ChargeSerialWork(uint64_t cycles) {
  auto least = std::min_element(lane_cycles_.begin(), lane_cycles_.end());
  *least += cycles;
}

void QueryService::Admit(TicketId id) {
  QueryTicket& ticket = TicketRef(id);

  // Schema changes retire every cached artifact; the new catalog version is already mixed into
  // fingerprints taken after the change, so this only reclaims budget from unreachable entries.
  if (db_.catalog_version() != seen_catalog_version_) {
    cache_.InvalidateAll();
    seen_catalog_version_ = db_.catalog_version();
  }

  CachedPlanPtr entry = cache_.Lookup(ticket.fingerprint);
  if (entry != nullptr) {
    ticket.cache_hit = true;
    ticket.compile_cycles = config_.compile_costs.cache_lookup_cycles;
    ticket.pending_plan.reset();  // The cached artifact replaces the submitted plan.
  } else {
    // Cold path: run the full compile with a profiling session attached, so the Tagging
    // Dictionary is built once and snapshotted with the artifact.
    ProfilingSession compile_session(config_.profiling);
    CodegenOptions options;
    options.parallel = true;
    entry = std::make_shared<CachedPlan>();
    entry->query = CompileQuery(db_, std::move(ticket.pending_plan),
                                config_.profile_executions ? &compile_session : nullptr,
                                ticket.name, options);
    entry->query.session = nullptr;  // The compile session dies here; executions bring their own.
    entry->fingerprint = ticket.fingerprint;
    entry->name = ticket.name;
    entry->dictionary = compile_session.dictionary();
    entry->catalog_version = db_.catalog_version();
    entry->code_bytes = CompiledCodeBytes(entry->query, db_.code_map());
    entry->compile_cycles = EstimateCompileCycles(entry->query, config_.compile_costs);
    ticket.compile_cycles = entry->compile_cycles;
    cache_.Insert(entry);
  }
  ChargeSerialWork(ticket.compile_cycles);
  fleet_.RecordCompile(ticket.fingerprint, ticket.name, ticket.compile_cycles, ticket.cache_hit);

  DFP_CHECK(!free_slots_.empty());
  const size_t slot = free_slots_.front();
  free_slots_.erase(free_slots_.begin());
  const ScratchRegions& regions = slots_[slot];
  db_.mem().ResetRegion(regions.hashtables);
  db_.mem().ResetRegion(regions.state);
  db_.mem().ResetRegion(regions.output);

  auto session = std::make_unique<ActiveSession>();
  session->ticket = id;
  session->entry = entry;
  session->slot = slot;
  ticket.plan = entry;

  SamplingConfig sampling;
  const SamplingConfig* sampling_ptr = nullptr;
  if (config_.profile_executions) {
    // The governor (when enabled) overrides the configured period with the fingerprint's tuned
    // one, so each plan family converges on its own overhead-budgeted sampling rate.
    ProfilingConfig profiling = config_.profiling;
    profiling.period =
        governor_.PeriodFor(ticket.fingerprint.structure, config_.profiling.period);
    ticket.sampling_period = profiling.period;
    ticket.session = std::make_unique<ProfilingSession>(profiling);
    // The snapshot taken at compile time makes warm executions resolve exactly like the cold one.
    ticket.session->dictionary() = entry->dictionary;
    sampling = ticket.session->MakeSamplingConfig();
    sampling_ptr = &sampling;
  }
  session->run = std::make_unique<ParallelRun>(db_, entry->query, config_.parallel, regions,
                                               sampling_ptr, id);
  ticket.status = TicketStatus::kRunning;
  active_.push_back(std::move(session));
}

bool QueryService::StepSession(ActiveSession& session) {
  QueryTicket& ticket = TicketRef(session.ticket);
  const ParallelRun::Unit unit = session.run->Step();
  lane_cycles_[unit.worker] += unit.cycles;

  if (ticket.deadline_cycles != 0 && !session.run->done() &&
      session.run->WallCycles() > ticket.deadline_cycles) {
    // Abandon the run: its partial state lives entirely in the slot's private regions, which are
    // reset at the next admission.
    ticket.status = TicketStatus::kTimedOut;
    ticket.execute_cycles = session.run->WallCycles();
    ticket.completed_at_cycles = ServiceNowCycles();
    ticket.session.reset();
    return true;
  }
  if (!session.run->done()) {
    return false;
  }

  ticket.result = session.run->Finish();
  ticket.execute_cycles = session.run->WallCycles();
  ticket.worker_metrics = session.run->worker_metrics();
  ticket.completed_at_cycles = ServiceNowCycles();
  ticket.status = TicketStatus::kDone;
  ticket.sampling_overhead = session.run->merged_sampling_overhead();
  ticket.busy_cycles = session.run->total_busy_cycles();

  // The per-operator aggregation is built once and shared by the cumulative fleet profile and
  // the windowed profile, so both views always agree on attribution.
  OperatorProfile profile;
  if (ticket.session != nullptr) {
    ticket.session->RecordExecution(session.run->TakeMergedSamples(), ticket.execute_cycles,
                                    session.run->merged_counters(), config_.parallel.workers);
    ticket.session->Resolve(db_.code_map());
    profile = BuildOperatorProfile(*ticket.session, session.entry->query);
    governor_.Observe(ticket.fingerprint.structure, ticket.name, ticket.sampling_overhead,
                      ticket.busy_cycles,
                      session.run->merged_counters()[config_.profiling.event],
                      ticket.sampling_period);
  }
  // Unprofiled executions still count toward the fleet's execute-cycle totals (empty profile).
  fleet_.RecordExecution(ticket.fingerprint, session.entry->query, profile,
                         ticket.execute_cycles);
  if (config_.continuous.windows_enabled) {
    windows_.Record(ticket.fingerprint.structure, ticket.name, ticket.completed_at_cycles,
                    profile, session.run->merged_counters(), ticket.execute_cycles,
                    ticket.result.row_count(), ticket.sampling_period);
  }
  return true;
}

void QueryService::SnapshotBaseline() {
  baseline_.Snapshot(windows_, config_.continuous.regression.min_samples);
}

std::vector<RegressionFinding> QueryService::DetectRegressions() const {
  return dfp::DetectRegressions(baseline_, windows_, config_.continuous.regression);
}

void QueryService::Drain() {
  while (!queue_.empty() || !active_.empty()) {
    while (active_.size() < config_.max_active_sessions && !queue_.empty()) {
      const TicketId next = queue_.front();
      queue_.pop_front();
      Admit(next);
    }
    // One unit per active session per round, in admission order: round-robin time-sharing of
    // the pool. Completed sessions release their slot before the next admission sweep.
    for (size_t i = 0; i < active_.size();) {
      if (StepSession(*active_[i])) {
        free_slots_.push_back(active_[i]->slot);
        std::sort(free_slots_.begin(), free_slots_.end());
        active_.erase(active_.begin() + i);
      } else {
        ++i;
      }
    }
  }
}

uint64_t QueryService::ServiceNowCycles() const {
  uint64_t max_lane = 0;
  for (uint64_t lane : lane_cycles_) {
    max_lane = std::max(max_lane, lane);
  }
  return max_lane;
}

}  // namespace dfp
