#include "src/service/query_service.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

#include "src/engine/codegen.h"
#include "src/plan/physical.h"
#include "src/profiling/reports.h"
#include "src/replay/recorder.h"
#include "src/tiering/patch.h"
#include "src/util/check.h"

namespace dfp {

uint64_t ServiceArenaBytes(const ServiceConfig& config) {
  const uint64_t per_session = config.session_hashtables_bytes + config.session_state_bytes +
                               config.session_output_bytes + 3 * kCacheCongruenceBytes;
  return config.max_active_sessions * per_session;
}

// One in-flight query: its own virtual worker pool (inside `run`) over its slot's private
// regions. The object is heap-allocated so the SamplingConfig and run stay pinned while the
// active list grows and shrinks.
struct QueryService::ActiveSession {
  TicketId ticket = 0;
  CachedPlanPtr entry;
  size_t slot = 0;
  std::unique_ptr<ParallelRun> run;
};

namespace {

// Creates a scratch region whose base is congruent to `model_base` modulo the cache-congruence
// stride, burning the gap as an anonymous pad region when needed.
uint32_t CreateCongruentRegion(Database& db, const std::string& name, uint64_t size,
                               uint64_t model_base) {
  const uint64_t stride = kCacheCongruenceBytes;
  const uint64_t next = db.mem().next_base();
  const uint64_t pad = (model_base % stride + stride - next % stride) % stride;
  if (pad != 0) {
    db.CreateScratchRegion(name + ".pad", pad);
  }
  return db.CreateScratchRegion(name, size);
}

std::string HexKey(uint64_t fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(fingerprint));
  return buffer;
}

}  // namespace

QueryService::QueryService(Database& db, ServiceConfig config)
    : db_(db),
      config_(std::move(config)),
      cache_(config_.code_budget_bytes, config_.tiering.enabled),
      windows_(config_.continuous.window),
      governor_(config_.continuous.governor),
      controller_(config_.tiering),
      slack_(config_.sched.slack_max_age),
      seen_catalog_version_(db.catalog_version()),
      lane_cycles_(config_.parallel.workers, 0) {
  DFP_CHECK(config_.max_active_sessions >= 1);
  // Re-optimization installs candidates through the parameterized cache's atomic swap and
  // re-binds their immediates; without tiering there is no patchable entry to swap.
  DFP_CHECK(!config_.reopt.enabled || config_.tiering.enabled);
  LoadState();
  // One region set per session slot, each congruent to the engine's shared regions so a
  // session's cache behavior matches a standalone run on the shared regions exactly.
  const uint64_t ht_base = db_.mem().region(db_.hashtables_region()).base;
  const uint64_t state_base = db_.mem().region(db_.state_region()).base;
  const uint64_t out_base = db_.mem().region(db_.output_region()).base;
  for (uint32_t s = 0; s < config_.max_active_sessions; ++s) {
    const std::string prefix = "session" + std::to_string(s) + ".";
    ScratchRegions regions;
    regions.hashtables = CreateCongruentRegion(db_, prefix + "hashtables",
                                               config_.session_hashtables_bytes, ht_base);
    regions.state =
        CreateCongruentRegion(db_, prefix + "state", config_.session_state_bytes, state_base);
    regions.output =
        CreateCongruentRegion(db_, prefix + "output", config_.session_output_bytes, out_base);
    slots_.push_back(regions);
    free_slots_.push_back(s);
  }
}

QueryService::~QueryService() { SaveState(); }

void QueryService::LoadState() {
  if (config_.state_path.empty()) {
    return;
  }
  std::ifstream in(config_.state_path);
  if (!in) {
    return;  // First start: nothing persisted yet.
  }
  uint64_t clock = 0;
  fleet_ = ReadServiceProfile(in, &windows_, &baseline_, &clock, &slack_, &cards_, &reopts_);
  // Resume the service clock: every lane starts at the persisted high-water mark, so new
  // executions fold into windows strictly after the persisted ones (the window rings reject
  // out-of-order indices).
  std::fill(lane_cycles_.begin(), lane_cycles_.end(), clock);
}

void QueryService::SaveState() const {
  if (config_.state_path.empty()) {
    return;
  }
  std::ofstream out(config_.state_path);
  if (!out) {
    return;
  }
  WriteServiceState(fleet_, windows_, baseline_, ServiceNowCycles(), out, &slack_, &cards_,
                    &reopts_);
}

const QueryTicket& QueryService::ticket(TicketId id) const {
  DFP_CHECK(id >= 1 && id <= tickets_.size());
  return *tickets_[id - 1];
}

TicketId QueryService::Submit(PhysicalOpPtr plan, std::string name, uint64_t deadline_cycles,
                              uint32_t weight) {
  auto ticket = std::make_unique<QueryTicket>();
  ticket->id = static_cast<TicketId>(tickets_.size() + 1);
  ticket->name = std::move(name);
  ticket->fingerprint = FingerprintPlan(*plan, db_.catalog_version());
  ticket->weight = std::max<uint32_t>(1, weight);
  ticket->deadline_cycles =
      deadline_cycles != 0 ? deadline_cycles : config_.default_deadline_cycles;
  // Slack-aware admission: a deadline below the fingerprint's expected critical-path length
  // cannot be met even on an idle pool (the path is the lower bound of any schedule), so the
  // query is bounced at submission instead of burning pool time and timing out mid-run. An
  // unobserved fingerprint (expected == 0) always passes — the first execution is how the
  // store learns.
  if (config_.sched.deadline_admission && ticket->deadline_cycles != 0) {
    const uint64_t expected =
        slack_.ExpectedCriticalPathCycles(ticket->fingerprint.structure);
    if (expected > ticket->deadline_cycles) {
      ticket->status = TicketStatus::kRejected;
      ticket->infeasible_deadline = true;
      ++infeasible_rejections_;
      sched_events_.push_back(
          {ServiceNowCycles(), "admission " + HexKey(ticket->fingerprint.structure) +
                                   " infeasible deadline " +
                                   std::to_string(ticket->deadline_cycles) + " expected " +
                                   std::to_string(expected)});
      tickets_.push_back(std::move(ticket));
      if (recorder_ != nullptr) {
        recorder_->OnSubmit(*tickets_.back(), *plan, ServiceNowCycles());
      }
      return tickets_.back()->id;
    }
  }
  if (queue_.size() >= config_.queue_depth) {
    ticket->status = TicketStatus::kRejected;
    tickets_.push_back(std::move(ticket));
    if (recorder_ != nullptr) {
      // `plan` is still alive on the rejected path; the recorder captures the submission so a
      // replay reproduces the same queue pressure (and the same rejection).
      recorder_->OnSubmit(*tickets_.back(), *plan, ServiceNowCycles());
    }
    return tickets_.back()->id;
  }
  ticket->pending_plan = std::move(plan);
  ticket->status = TicketStatus::kQueued;
  queue_.push_back(ticket->id);
  tickets_.push_back(std::move(ticket));
  if (recorder_ != nullptr) {
    recorder_->OnSubmit(*tickets_.back(), *tickets_.back()->pending_plan, ServiceNowCycles());
  }
  return tickets_.back()->id;
}

void QueryService::AttachRecorder(TraceRecorder& recorder) {
  DFP_CHECK(tickets_.empty());
  recorder.OnAttach(config_, db_.catalog_version(), ServiceNowCycles());
  recorder_ = &recorder;
}

void QueryService::ChargeSerialWork(uint64_t cycles) {
  auto least = std::min_element(lane_cycles_.begin(), lane_cycles_.end());
  *least += cycles;
}

bool QueryService::EntryBusy(const CachedPlanPtr& entry) const {
  for (const std::unique_ptr<ActiveSession>& session : active_) {
    if (session->entry == entry) {
      return true;
    }
  }
  return false;
}

bool QueryService::InvalidateCache() {
  if (db_.catalog_version() == seen_catalog_version_) {
    return false;
  }
  cache_.InvalidateAll();
  recompile_jobs_.clear();
  seen_catalog_version_ = db_.catalog_version();
  return true;
}

bool QueryService::Admit(TicketId id) {
  QueryTicket& ticket = TicketRef(id);

  // Schema changes retire every cached artifact; the new catalog version is already mixed into
  // fingerprints taken after the change, so this only reclaims budget from unreachable entries.
  // Pending background recompilations of retired entries die with them.
  if (db_.catalog_version() != seen_catalog_version_) {
    cache_.InvalidateAll();
    recompile_jobs_.clear();
    seen_catalog_version_ = db_.catalog_version();
  }

  const bool parameterized = config_.tiering.enabled;
  PlanLiterals incoming;
  if (parameterized && ticket.pending_plan != nullptr) {
    incoming = ExtractLiterals(*ticket.pending_plan);
  }

  // Quiescence check before committing to admission: re-binding a cached entry patches its
  // machine code in place, so an in-flight session still executing that code must drain first.
  // The ticket stays at the queue head; the scheduler steps the blockers and retries.
  if (parameterized) {
    CachedPlanPtr resident = cache_.Peek(ticket.fingerprint);
    if (resident != nullptr &&
        resident->fingerprint.literals != ticket.fingerprint.literals &&
        EntryBusy(resident)) {
      return false;
    }
  }

  CachedPlanPtr entry = cache_.Lookup(ticket.fingerprint);
  if (entry != nullptr) {
    ticket.cache_hit = true;
    ticket.compile_cycles = config_.compile_costs.cache_lookup_cycles;
    if (parameterized) {
      // Re-bind the cached code to this ticket's literals (zero sites when they already
      // match). The Tagging Dictionary snapshot is untouched: a patched plan attributes
      // exactly like the original compile.
      const PlanLiterals* bind = &incoming;
      PlanLiterals permuted;
      if (!entry->literal_permutation.empty()) {
        // A re-optimized entry reads its literals in rewritten-plan order (see
        // CachedPlan::literal_permutation); route each submission slot to the sites it feeds.
        permuted.bindings.reserve(entry->literal_permutation.size());
        for (uint32_t slot : entry->literal_permutation) {
          DFP_CHECK(slot < incoming.bindings.size());
          permuted.bindings.push_back(incoming.bindings[slot]);
        }
        bind = &permuted;
      }
      ticket.patched_sites = PatchCachedPlan(db_, *entry, *bind,
                                             ticket.fingerprint.literals);
      if (ticket.patched_sites > 0) {
        cache_.NotePatchedHit();
        ticket.compile_cycles +=
            ticket.patched_sites * config_.compile_costs.patch_per_site_cycles;
      }
    }
    ticket.pending_plan.reset();  // The cached artifact replaces the submitted plan.
  } else {
    // Cold path: run the full compile with a profiling session attached, so the Tagging
    // Dictionary is built once and snapshotted with the artifact. Under tiering, first
    // compiles run at the cheap baseline tier (no optimization passes) with slot-tagged
    // literals; the controller promotes hot fingerprints later.
    const PlanTier tier = parameterized ? PlanTier::kBaseline : PlanTier::kOptimized;
    ProfilingSession compile_session(config_.profiling);
    CodegenOptions options;
    options.parallel = true;
    options.optimize_ir = tier == PlanTier::kOptimized;
    // Re-optimization needs exact per-operator row counts: compile with tuple counters. The
    // counters live in the session state block, so the flag changes generated code — that is
    // part of the reopt opt-in, like the governor's period retuning.
    options.count_tuples = config_.reopt.enabled;
    if (parameterized) {
      options.literals = &incoming;
    }
    entry = std::make_shared<CachedPlan>();
    entry->query = CompileQuery(db_, std::move(ticket.pending_plan),
                                config_.profile_executions ? &compile_session : nullptr,
                                ticket.name, options);
    entry->query.session = nullptr;  // The compile session dies here; executions bring their own.
    entry->fingerprint = ticket.fingerprint;
    entry->name = ticket.name;
    entry->dictionary = compile_session.dictionary();
    entry->catalog_version = db_.catalog_version();
    entry->code_bytes = CompiledCodeBytes(entry->query, db_.code_map());
    entry->compile_cycles = EstimateCompileCycles(entry->query, config_.compile_costs, tier);
    entry->tier = tier;
    // The expr -> slot map points into the plan CompileQuery just took ownership of (it lives
    // in entry->query.plan), so the bindings stay resolvable for background recompiles.
    entry->literals = std::move(incoming);
    ticket.compile_cycles = entry->compile_cycles;
    cache_.Insert(entry);
  }
  ticket.tier = entry->tier;
  ChargeSerialWork(ticket.compile_cycles);
  fleet_.RecordCompile(ticket.fingerprint, ticket.name, ticket.compile_cycles, ticket.cache_hit);

  DFP_CHECK(!free_slots_.empty());
  const size_t slot = free_slots_.front();
  free_slots_.erase(free_slots_.begin());
  const ScratchRegions& regions = slots_[slot];
  db_.mem().ResetRegion(regions.hashtables);
  db_.mem().ResetRegion(regions.state);
  db_.mem().ResetRegion(regions.output);

  auto session = std::make_unique<ActiveSession>();
  session->ticket = id;
  session->entry = entry;
  session->slot = slot;
  ticket.plan = entry;

  SamplingConfig sampling;
  const SamplingConfig* sampling_ptr = nullptr;
  if (config_.profile_executions) {
    // The governor (when enabled) overrides the configured period with the fingerprint's tuned
    // one, so each plan family converges on its own overhead-budgeted sampling rate.
    ProfilingConfig profiling = config_.profiling;
    profiling.period =
        governor_.PeriodFor(ticket.fingerprint.structure, config_.profiling.period);
    ticket.sampling_period = profiling.period;
    ticket.session = std::make_unique<ProfilingSession>(profiling);
    // The snapshot taken at compile time makes warm executions resolve exactly like the cold one.
    ticket.session->dictionary() = entry->dictionary;
    sampling = ticket.session->MakeSamplingConfig();
    // Criticality-weighted periods (empty until a critical-path analysis of this fingerprint
    // exists): on-path pipelines sample finer than the base period, off-path ones coarser.
    sampling.pipeline_periods = governor_.PipelinePeriods(
        ticket.fingerprint.structure, profiling.period, entry->query.pipelines.size());
    sampling_ptr = &sampling;
  }
  // Slack-directed scheduling: hand the run this fingerprint's expected-slack profile (null on
  // the first execution, or when the feature is off — either way the run deals FIFO deques).
  const PlanSlack* slack_hint =
      config_.sched.slack_scheduling ? slack_.Find(ticket.fingerprint.structure) : nullptr;
  session->run = std::make_unique<ParallelRun>(db_, entry->query, config_.parallel, regions,
                                               sampling_ptr, id, slack_hint);
  ticket.status = TicketStatus::kRunning;
  active_.push_back(std::move(session));
  return true;
}

bool QueryService::StepSession(ActiveSession& session) {
  QueryTicket& ticket = TicketRef(session.ticket);
  const ParallelRun::Unit unit = session.run->Step();
  lane_cycles_[unit.worker] += unit.cycles;

  if (ticket.deadline_cycles != 0 && !session.run->done() &&
      session.run->WallCycles() > ticket.deadline_cycles) {
    // Abandon the run: its partial state lives entirely in the slot's private regions, which are
    // reset at the next admission.
    ticket.status = TicketStatus::kTimedOut;
    ticket.execute_cycles = session.run->WallCycles();
    ticket.completed_at_cycles = ServiceNowCycles();
    ticket.session.reset();
    if (recorder_ != nullptr) {
      recorder_->OnCompletion(ticket);
    }
    return true;
  }
  if (!session.run->done()) {
    return false;
  }

  ticket.result = session.run->Finish();
  ticket.execute_cycles = session.run->WallCycles();
  ticket.worker_metrics = session.run->worker_metrics();
  ticket.completed_at_cycles = ServiceNowCycles();
  ticket.status = TicketStatus::kDone;
  ticket.sampling_overhead = session.run->merged_sampling_overhead();
  ticket.busy_cycles = session.run->total_busy_cycles();

  // Critical-path analysis of the realized schedule: rebuild the task DAG from the run's
  // boundary records, classify each pipeline, and fan the result out to every consumer — the
  // fleet tracker (reports), the governor (per-pipeline periods for the NEXT execution of this
  // fingerprint), and the service profile (`crit` lines). The tier controller reads the
  // tracker's cumulative critical work below.
  ticket.task_boundaries = session.run->TakeTaskBoundaries();
  ticket.dag = BuildTaskDag(ticket.task_boundaries);
  ticket.verdicts = ClassifyPipelines(ticket.dag);
  if (!ticket.dag.nodes.empty()) {
    critpath_.Observe(ticket.fingerprint.structure, ticket.name, ticket.dag, ticket.verdicts);
    std::vector<uint64_t> shares;
    for (const PipelineCriticality& p : ticket.dag.pipelines) {
      if (p.pipeline >= shares.size()) {
        shares.resize(p.pipeline + 1, 0);
      }
      shares[p.pipeline] = p.share_pct;
    }
    governor_.ObserveCriticality(ticket.fingerprint.structure, ticket.name, std::move(shares));
    const PlanCriticality* crit = critpath_.Find(ticket.fingerprint.structure);
    if (crit != nullptr) {
      fleet_.RecordCriticality(ticket.fingerprint, ticket.name, ticket.dag.critical_work_cycles,
                               crit->top_share_pct, BottleneckName(crit->dominant_label()));
    }
  }

  // The per-operator aggregation is built once and shared by the cumulative fleet profile and
  // the windowed profile, so both views always agree on attribution.
  OperatorProfile profile;
  if (ticket.session != nullptr) {
    // Stamp every sample with the tier the code that produced it was compiled at, so profiles
    // can attribute cost per tier even across a mid-stream promotion.
    std::vector<Sample> samples = session.run->TakeMergedSamples();
    if (session.entry->tier != PlanTier::kOptimized) {
      for (Sample& sample : samples) {
        sample.tier = static_cast<uint8_t>(session.entry->tier);
      }
    }
    ticket.session->RecordExecution(std::move(samples), ticket.execute_cycles,
                                    session.run->merged_counters(), config_.parallel.workers);
    ticket.session->Resolve(db_.code_map());
    profile = BuildOperatorProfile(*ticket.session, session.entry->query);
    governor_.Observe(ticket.fingerprint.structure, ticket.name, ticket.sampling_overhead,
                      ticket.busy_cycles,
                      session.run->merged_counters()[config_.profiling.event],
                      ticket.sampling_period);
  }
  // Unprofiled executions still count toward the fleet's execute-cycle totals (empty profile).
  fleet_.RecordExecution(ticket.fingerprint, session.entry->query, profile,
                         ticket.execute_cycles);
  if (config_.continuous.windows_enabled) {
    windows_.Record(ticket.fingerprint.structure, ticket.name, ticket.completed_at_cycles,
                    profile, session.run->merged_counters(), ticket.execute_cycles,
                    ticket.result.row_count(), ticket.sampling_period, session.entry->tier);
  }
  // Profile-feedback scheduling: roll this run's slack-policy counters into the pool-wide
  // totals, fold the DAG into the expected-slack store (the profile the NEXT execution of this
  // fingerprint schedules and admits by), and step the guarded placement-repair loop. The store
  // only learns when a consumer of it is enabled, so a default-config service keeps producing
  // byte-identical state files.
  const SchedStats& run_sched = session.run->sched_stats();
  sched_stats_.slack_ordered_scans += run_sched.slack_ordered_scans;
  sched_stats_.slack_hits += run_sched.slack_hits;
  sched_stats_.deferred_morsels += run_sched.deferred_morsels;
  sched_stats_.slack_steals += run_sched.slack_steals;
  if (!ticket.dag.nodes.empty() &&
      (config_.sched.slack_scheduling || config_.sched.deadline_admission)) {
    slack_.Observe(ticket.fingerprint.structure, ticket.name, ticket.dag);
  }
  if (config_.sched.placement_repair && !ticket.dag.nodes.empty()) {
    StepPlacementRepair(ticket);
  }
  // Tier ladder: feed the controller the windowed evidence for this fingerprint; a promotion
  // decision enqueues a background recompile at the optimizing tier on the (serial) background
  // compile lane. The swap happens between steps, in ProcessRecompiles.
  if (config_.tiering.enabled && session.entry->tier == PlanTier::kBaseline) {
    const uint64_t opt_cycles =
        EstimateCompileCycles(session.entry->query, config_.compile_costs, PlanTier::kOptimized);
    if (controller_.Observe(ticket.fingerprint.structure, ticket.name, windows_,
                            ticket.execute_cycles, opt_cycles, ticket.completed_at_cycles,
                            critpath_.CriticalWorkCycles(ticket.fingerprint.structure))) {
      RecompileJob job;
      job.source = session.entry;
      const uint64_t start = std::max(ServiceNowCycles(), recompile_lane_busy_cycles_);
      job.ready_at_cycles = start + opt_cycles;
      job.compile_cycles = opt_cycles;
      recompile_lane_busy_cycles_ = job.ready_at_cycles;
      recompile_jobs_.push_back(std::move(job));
      tier_events_.push_back({ticket.completed_at_cycles,
                              "tier " + HexKey(ticket.fingerprint.structure) +
                                  " baseline optimized decided"});
    }
  }
  // Closed-loop re-optimization: fold this execution's exact tuple counts into the cardinality
  // store (the counters ran inside the generated code, so the counts are the ground truth the
  // estimates tried to predict), then step the guarded re-plan loop — trigger a candidate,
  // or keep/revert an applied one.
  if (config_.reopt.enabled) {
    const CardinalityMap observed = ObservedCardinalities(session.entry->query);
    if (!observed.empty()) {
      cards_.Observe(ticket.fingerprint.structure, ticket.name, observed,
                     EstimatedCardinalities(*session.entry->query.plan));
    }
    StepReopt(ticket, session.entry);
  }
  if (recorder_ != nullptr) {
    recorder_->OnCompletion(ticket);
  }
  return true;
}

void QueryService::StepReopt(QueryTicket& ticket, const CachedPlanPtr& entry) {
  const uint64_t fp = ticket.fingerprint.structure;
  ReoptAction* open = reopts_.Find(fp);
  if (open != nullptr) {
    if (open->state != ReoptState::kApplied) {
      // kDecided: candidate still compiling on the lane. kKept/kReverted: one action per
      // fingerprint — the loop never oscillates.
      return;
    }
    if (open->previous == nullptr) {
      // Loaded from a persisted profile: the swap did not survive the restart (a cold cache
      // re-admits the original plan), so the honest resolution is a revert.
      open->state = ReoptState::kReverted;
      open->resolved_tsc = ServiceNowCycles();
      reopt_events_.push_back({open->resolved_tsc, "reopt " + HexKey(fp) + " reverted"});
      return;
    }
    // Re-measure: judge the windows that arrived after the swap against the pre-swap snapshot.
    const GuardVerdict verdict = JudgeRegression(reopt_baseline_, windows_, fp,
                                                 config_.reopt.guard);
    if (verdict == GuardVerdict::kInsufficientEvidence) {
      return;
    }
    open->resolved_tsc = ServiceNowCycles();
    if (verdict == GuardVerdict::kRegressed) {
      // Revert = re-insert the replaced entry: its machine code never left the code map, so
      // this is the same atomic pointer swap the apply used, in the other direction.
      cache_.Insert(open->previous);
      open->state = ReoptState::kReverted;
    } else {
      open->state = ReoptState::kKept;
    }
    open->previous.reset();
    reopt_events_.push_back(
        {open->resolved_tsc, "reopt " + HexKey(fp) + " " + ReoptStateName(open->state)});
    return;
  }

  // Trigger: enough executions to trust the EWMAs, worst divergence past the threshold, and no
  // recompile of this family already on the lane (re-plan from the swapped result instead).
  const PlanCards* cards = cards_.Find(fp);
  if (cards == nullptr || cards->executions < config_.reopt.min_executions) {
    return;
  }
  const uint64_t divergence = cards_.MaxDivergencePct(fp);
  if (divergence < config_.reopt.divergence_pct) {
    return;
  }
  for (const RecompileJob& job : recompile_jobs_) {
    if (job.source->fingerprint.structure == fp) {
      return;
    }
  }
  CardinalityMap observed;
  for (const auto& [op, card] : cards->operators) {
    observed[op] = std::max<uint64_t>(card.observed_rows, 1);
  }
  ReoptRewriteOptions rewrite_options;
  rewrite_options.pessimize = config_.reopt.pessimize;
  rewrite_options.semi_join_reduction = config_.reopt.semi_join_reduction;
  rewrite_options.semi_join_blowup_pct = config_.reopt.semi_join_blowup_pct;
  ReoptRewrite rewrite = ReoptimizePlan(*entry->query.plan, observed, rewrite_options);
  if (!rewrite.changed) {
    return;
  }
  RecompileJob job;
  job.source = entry;
  job.candidate_plan = std::move(rewrite.plan);
  job.literal_permutation = ReoptLiteralPermutation(*entry->query.plan, observed,
                                                   rewrite_options);
  job.compile_cycles = EstimateCompileCycles(entry->query, config_.compile_costs, entry->tier);
  const uint64_t start = std::max(ServiceNowCycles(), recompile_lane_busy_cycles_);
  job.ready_at_cycles = start + job.compile_cycles;
  recompile_lane_busy_cycles_ = job.ready_at_cycles;
  recompile_jobs_.push_back(std::move(job));

  ReoptAction action;
  action.fingerprint = fp;
  action.plan_name = ticket.name;
  action.description = rewrite.description;
  action.divergence_pct = divergence;
  action.reordered = rewrite.reordered;
  action.semi_join = rewrite.semi_join;
  action.decided_tsc = ServiceNowCycles();
  action.previous = entry;
  reopt_events_.push_back({action.decided_tsc, "reopt " + HexKey(fp) + " decided divergence " +
                                                   std::to_string(divergence) + "% " +
                                                   rewrite.description});
  reopts_.Add(std::move(action));
}

void QueryService::StepPlacementRepair(QueryTicket& ticket) {
  const uint64_t fp = ticket.fingerprint.structure;
  RepairAction* open = repairs_.Find(fp);
  if (open != nullptr) {
    if (open->state != RepairState::kApplied) {
      return;  // Kept or reverted: one action per fingerprint, the loop never oscillates.
    }
    // Re-measure: judge the windows that arrived after the apply against the pre-apply
    // snapshot. Insufficient evidence keeps measuring; a clean verdict keeps the map; a
    // regressed one restores the default placement.
    const GuardVerdict verdict =
        JudgeRegression(repair_baseline_, windows_, fp, config_.continuous.regression);
    if (verdict == GuardVerdict::kInsufficientEvidence) {
      return;
    }
    open->resolved_tsc = ServiceNowCycles();
    if (verdict == GuardVerdict::kRegressed) {
      const Table& table = db_.table(open->table);
      for (size_t c = 0; c < table.schema().columns.size(); ++c) {
        db_.mem().ClearExtentPlacement(table.column_base(c));
      }
      open->state = RepairState::kReverted;
    } else {
      open->state = RepairState::kKept;
    }
    sched_events_.push_back({open->resolved_tsc, "repair " + HexKey(fp) + " " +
                                                     open->table + " " +
                                                     RepairStateName(open->state)});
    return;
  }
  // Trigger: the first remote-DRAM-bound verdict on a pipeline that scans a base table. The
  // observed DAG names the worker that consumed each morsel, so the repair re-partitions the
  // table's column extents toward those consumers' nodes.
  for (const PipelineVerdict& v : ticket.verdicts) {
    if (v.label != Bottleneck::kRemoteDramBound) {
      continue;
    }
    const CompiledQuery& query = ticket.plan->query;
    if (v.pipeline >= query.pipelines.size()) {
      continue;
    }
    const Pipeline& pipeline = query.pipelines[v.pipeline].pipeline;
    if (pipeline.steps.empty() ||
        pipeline.steps[0].role != PipelineStep::Role::kScanSource ||
        pipeline.steps[0].op == nullptr || pipeline.steps[0].op->table == nullptr) {
      continue;  // Sort-scan / group-scan pipelines have no extents to move.
    }
    const Table& table = *pipeline.steps[0].op->table;
    uint32_t nodes = config_.parallel.numa_nodes != 0 ? config_.parallel.numa_nodes
                                                      : config_.parallel.workers;
    nodes = std::min(nodes, config_.parallel.workers);
    PartitionMap map =
        ComputeConsumerPlacement(ticket.dag, v.pipeline, nodes, config_.sched.repair_pessimize);
    if (map.empty()) {
      continue;
    }
    RepairAction action;
    action.fingerprint = fp;
    action.plan_name = ticket.name;
    action.table = table.name();
    action.pipeline = v.pipeline;
    action.decided_tsc = ServiceNowCycles();
    sched_events_.push_back({action.decided_tsc, "repair " + HexKey(fp) + " " +
                                                     action.table + " decided"});
    for (size_t c = 0; c < table.schema().columns.size(); ++c) {
      db_.mem().SetExtentPlacement(table.column_base(c), map);
    }
    action.placement = std::move(map);
    action.state = RepairState::kApplied;
    action.applied_tsc = action.decided_tsc;
    // The guard's yardstick: everything in the windows up to and including this (pre-repair)
    // execution. JudgeRegression rolls up strictly after this watermark, so only post-apply
    // executions are measured against it.
    repair_baseline_.Snapshot(windows_, config_.continuous.regression.min_samples);
    sched_events_.push_back({action.applied_tsc, "repair " + HexKey(fp) + " " +
                                                     action.table + " applied"});
    repairs_.Add(std::move(action));
    return;  // At most one new action per completion.
  }
}

void QueryService::SnapshotBaseline() {
  baseline_.Snapshot(windows_, config_.continuous.regression.min_samples);
}

std::vector<RegressionFinding> QueryService::DetectRegressions() const {
  return dfp::DetectRegressions(baseline_, windows_, config_.continuous.regression,
                                config_.continuous.regression_alert,
                                config_.parallel.shard_id);
}

void QueryService::ProcessRecompiles(bool final) {
  // The background compile worker is serial: jobs complete in FIFO order, each ready when the
  // lane's clock reaches its finish time. During Drain the swap waits for the service clock to
  // pass that point (the worker runs concurrently with query execution, off the service lanes);
  // at the final call every queued job completes — the worker outlives the request stream.
  while (!recompile_jobs_.empty()) {
    RecompileJob& job = recompile_jobs_.front();
    const CachedPlanPtr old_entry = job.source;
    if (old_entry->catalog_version != db_.catalog_version()) {
      recompile_jobs_.erase(recompile_jobs_.begin());  // Retired by a schema change.
      continue;
    }
    const bool reopt_job = job.candidate_plan != nullptr;
    // The source must still be the resident entry: a reopt swap or a promotion may have
    // replaced it while this job sat on the lane, and compiling from the replaced artifact
    // would clobber the newer code. A dead reopt job resolves its pending action as reverted —
    // the candidate never ran.
    if (cache_.Peek(old_entry->fingerprint) != old_entry) {
      if (reopt_job) {
        ReoptAction* action = reopts_.Find(old_entry->fingerprint.structure);
        if (action != nullptr && action->state == ReoptState::kDecided) {
          action->state = ReoptState::kReverted;
          action->resolved_tsc = ServiceNowCycles();
          action->previous.reset();
          reopt_events_.push_back({action->resolved_tsc,
                                   "reopt " + HexKey(action->fingerprint) + " reverted"});
        }
      }
      recompile_jobs_.erase(recompile_jobs_.begin());
      continue;
    }
    if (!final && job.ready_at_cycles > ServiceNowCycles()) {
      return;  // Still compiling; later jobs queue behind it.
    }
    const uint64_t swapped_at = final ? std::max(ServiceNowCycles(), job.ready_at_cycles)
                                      : ServiceNowCycles();

    // Tier promotions recompile the cached plan tree at the optimizing tier; reopt jobs compile
    // the rewritten candidate at the tier the entry already earned, so the guard's post-swap
    // comparison isolates the plan change from tier effects. Either way the compiled tree
    // carries the literals of its ORIGINAL compile (patches rewrite machine code, never the
    // tree), so after compiling we re-patch the fresh code to the bindings the old entry
    // currently serves — the swap must be invisible to result values.
    ProfilingSession compile_session(config_.profiling);
    CodegenOptions options;
    options.parallel = true;
    options.optimize_ir = reopt_job ? old_entry->tier == PlanTier::kOptimized : true;
    options.count_tuples = config_.reopt.enabled;
    PhysicalOpPtr plan =
        reopt_job ? std::move(job.candidate_plan) : ClonePlan(*old_entry->query.plan);
    PlanLiterals literals = ExtractLiterals(*plan);
    options.literals = &literals;
    auto entry = std::make_shared<CachedPlan>();
    entry->query = CompileQuery(db_, std::move(plan),
                                config_.profile_executions ? &compile_session : nullptr,
                                old_entry->name, options);
    entry->query.session = nullptr;
    entry->fingerprint = old_entry->fingerprint;
    entry->name = old_entry->name;
    entry->dictionary = compile_session.dictionary();
    entry->catalog_version = old_entry->catalog_version;
    entry->tier = reopt_job ? old_entry->tier : PlanTier::kOptimized;
    entry->literals = std::move(literals);
    entry->literal_permutation =
        reopt_job ? std::move(job.literal_permutation) : old_entry->literal_permutation;
    // The served bindings in the new code's slot order. A fresh reopt candidate extracts in
    // rewritten order, so the old entry's (submission-ordered) bindings route through the
    // permutation; a promotion recompiles the resident tree, whose extraction order — rewritten
    // or not — matches the old entry's slots one-to-one.
    PlanLiterals served;
    if (reopt_job && !entry->literal_permutation.empty()) {
      served.bindings.reserve(entry->literal_permutation.size());
      for (uint32_t slot : entry->literal_permutation) {
        DFP_CHECK(slot < old_entry->literals.bindings.size());
        served.bindings.push_back(old_entry->literals.bindings[slot]);
      }
    } else {
      served.bindings = old_entry->literals.bindings;
    }
    PatchCachedPlan(db_, *entry, served, old_entry->fingerprint.literals);
    entry->code_bytes = CompiledCodeBytes(entry->query, db_.code_map());
    entry->compile_cycles = job.compile_cycles;

    // Atomic swap between steps: Insert replaces the same-key entry. Sessions still holding the
    // old shared_ptr drain on the old code (its segments stay registered in the code map).
    cache_.Insert(entry);
    if (reopt_job) {
      ReoptAction* action = reopts_.Find(entry->fingerprint.structure);
      DFP_CHECK(action != nullptr && action->state == ReoptState::kDecided);
      action->state = ReoptState::kApplied;
      action->applied_tsc = swapped_at;
      // The guard's yardstick: everything in the windows up to the swap. JudgeRegression rolls
      // up strictly after this watermark, so only candidate executions are measured against it.
      reopt_baseline_.Snapshot(windows_, config_.reopt.guard.min_samples);
      reopt_events_.push_back(
          {swapped_at, "reopt " + HexKey(entry->fingerprint.structure) + " applied"});
    } else {
      cache_.NoteTierSwap();
      controller_.MarkSwapped(entry->fingerprint.structure, swapped_at);
      tier_events_.push_back({swapped_at, "tier " + HexKey(entry->fingerprint.structure) +
                                              " baseline optimized swapped"});
    }
    recompile_jobs_.erase(recompile_jobs_.begin());
  }
}

void QueryService::Drain() {
  if (recorder_ != nullptr) {
    recorder_->OnDrain(static_cast<uint32_t>(tickets_.size()));
  }
  while (!queue_.empty() || !active_.empty()) {
    while (active_.size() < config_.max_active_sessions && !queue_.empty()) {
      if (!Admit(queue_.front())) {
        break;  // Deferred (patch quiescence): retry after the blocking sessions step.
      }
      queue_.pop_front();
    }
    // Weighted fair time-sharing of the pool: per round, a session of weight w takes w unit
    // steps, spread across the round at virtual times k/w (stable-sorted, so equal-weight
    // sessions keep admission order). At all-default weights this is exactly one step per
    // session per round — the historical round-robin schedule, cycle for cycle.
    struct Turn {
      size_t index;
      double vtime;
    };
    std::vector<Turn> turns;
    for (size_t i = 0; i < active_.size(); ++i) {
      const uint32_t weight = TicketRef(active_[i]->ticket).weight;
      for (uint32_t k = 1; k <= weight; ++k) {
        turns.push_back({i, static_cast<double>(k) / weight});
      }
    }
    std::stable_sort(turns.begin(), turns.end(),
                     [](const Turn& a, const Turn& b) { return a.vtime < b.vtime; });
    std::vector<bool> finished(active_.size(), false);
    for (const Turn& turn : turns) {
      if (!finished[turn.index]) {
        finished[turn.index] = StepSession(*active_[turn.index]);
      }
    }
    // Completed sessions release their slot before the next admission sweep.
    for (size_t i = active_.size(); i-- > 0;) {
      if (finished[i]) {
        free_slots_.push_back(active_[i]->slot);
        active_.erase(active_.begin() + i);
      }
    }
    std::sort(free_slots_.begin(), free_slots_.end());
    ProcessRecompiles(/*final=*/false);
  }
  ProcessRecompiles(/*final=*/true);
}

uint64_t QueryService::ServiceNowCycles() const {
  uint64_t max_lane = 0;
  for (uint64_t lane : lane_cycles_) {
    max_lane = std::max(max_lane, lane);
  }
  return max_lane;
}

}  // namespace dfp
