// Canonical plan fingerprints for the compiled-plan cache and fleet profile aggregation.
//
// The structural half hashes the physical dataflow graph — operator kinds, column types, key
// slots, join types, sort specs, expression shapes — with every literal payload parameterized
// out, and mixes in the database's catalog version so schema changes retire old fingerprints.
// Queries that differ only in their constants (the classic prepared-statement family) therefore
// share a fingerprint, which is the unit of fleet-level profile aggregation.
//
// The literal half hashes exactly the parameterized-out payloads (filter constants, LIKE
// patterns, IN lists, LIMIT counts) in traversal order. The classic plan cache keys on both
// halves: compiled machine code bakes constants in as immediates, so an artifact is only
// exactly reusable with identical constants.
//
// The pinned half hashes the subset of literals that the compiled artifact's *memory layout*
// depends on — today only LIMIT counts, which cap `bound_rows` and thereby size sort buffers
// and result arenas. The literal-parameterized cache (src/tiering/) keys on
// (structure, pinned): any free literal can be re-bound by patching immediates, but a plan
// with a different LIMIT needs a fresh compile.
#ifndef DFP_SRC_SERVICE_FINGERPRINT_H_
#define DFP_SRC_SERVICE_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "src/plan/physical.h"

namespace dfp {

struct PlanFingerprint {
  uint64_t structure = 0;  // Plan shape, literals parameterized out, catalog version mixed in.
  uint64_t literals = 0;   // The parameterized-out constant payloads, in traversal order.
  uint64_t pinned = 0;     // The layout-relevant subset of the literals (LIMIT counts).

  bool operator==(const PlanFingerprint& other) const {
    return structure == other.structure && literals == other.literals;
  }
  bool operator!=(const PlanFingerprint& other) const { return !(*this == other); }
};

PlanFingerprint FingerprintPlan(const PhysicalOp& root, uint64_t catalog_version);

// 16-hex-digit rendering of the structural half (the fleet aggregation key), as used by
// reports and the service-profile text format.
std::string FingerprintKey(const PlanFingerprint& fingerprint);

}  // namespace dfp

#endif  // DFP_SRC_SERVICE_FINGERPRINT_H_
