// Canonical plan fingerprints for the compiled-plan cache and fleet profile aggregation.
//
// The structural half hashes the physical dataflow graph — operator kinds, column types, key
// slots, join types, sort specs, expression shapes — with every literal payload parameterized
// out, and mixes in the database's catalog version so schema changes retire old fingerprints.
// Queries that differ only in their constants (the classic prepared-statement family) therefore
// share a fingerprint, which is the unit of fleet-level profile aggregation.
//
// The literal half hashes exactly the parameterized-out payloads (filter constants, LIKE
// patterns, IN lists, LIMIT counts) in traversal order. The plan cache keys on both halves:
// compiled machine code bakes constants in as immediates, so a cached artifact is only reusable
// for a structurally identical plan with identical constants. True parameter slots (reusing one
// artifact across literal bindings) would relax the second half and are future work.
#ifndef DFP_SRC_SERVICE_FINGERPRINT_H_
#define DFP_SRC_SERVICE_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "src/plan/physical.h"

namespace dfp {

struct PlanFingerprint {
  uint64_t structure = 0;  // Plan shape, literals parameterized out, catalog version mixed in.
  uint64_t literals = 0;   // The parameterized-out constant payloads, in traversal order.

  bool operator==(const PlanFingerprint& other) const {
    return structure == other.structure && literals == other.literals;
  }
  bool operator!=(const PlanFingerprint& other) const { return !(*this == other); }
};

PlanFingerprint FingerprintPlan(const PhysicalOp& root, uint64_t catalog_version);

// 16-hex-digit rendering of the structural half (the fleet aggregation key), as used by
// reports and the service-profile text format.
std::string FingerprintKey(const PlanFingerprint& fingerprint);

}  // namespace dfp

#endif  // DFP_SRC_SERVICE_FINGERPRINT_H_
