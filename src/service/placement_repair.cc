#include "src/service/placement_repair.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dfp {

PartitionMap ComputeConsumerPlacement(const TaskDag& dag, uint32_t pipeline, uint32_t nodes,
                                      bool pessimize) {
  // The pipeline's morsel row ranges with the node of the worker that consumed each.
  struct Range {
    uint64_t begin = 0;
    uint64_t end = 0;
    uint8_t node = 0;
  };
  std::vector<Range> ranges;
  uint64_t rows = 0;
  for (const TaskNode& node : dag.nodes) {
    const TaskBoundary& t = node.task;
    if (t.kind != TaskKind::kMorsel || t.pipeline != pipeline) {
      continue;
    }
    uint8_t owner = static_cast<uint8_t>(t.worker_id % nodes);
    if (pessimize) {
      owner = static_cast<uint8_t>((owner + 1) % nodes);
    }
    ranges.push_back(Range{t.morsel_begin, t.morsel_end, owner});
    rows = std::max(rows, t.morsel_end);
  }
  if (ranges.empty() || rows == 0) {
    return {};
  }
  // Morsel ranges partition [0, rows) disjointly (endgame splits included), so sorting by
  // begin yields a gap-free cover in row order.
  std::sort(ranges.begin(), ranges.end(),
            [](const Range& a, const Range& b) { return a.begin < b.begin; });
  PartitionMap map;
  for (const Range& r : ranges) {
    const uint64_t end_frac =
        r.end >= rows ? kPlacementDenom : r.end * kPlacementDenom / rows;
    if (!map.empty() && map.back().node == r.node) {
      map.back().end_frac = end_frac;  // Compress consecutive same-node ranges.
    } else if (!map.empty() && map.back().end_frac >= end_frac) {
      continue;  // Sub-resolution range (end rounds to the same fraction): fold away.
    } else {
      map.push_back(PartitionSlice{end_frac, r.node});
    }
  }
  map.back().end_frac = kPlacementDenom;
  return map;
}

const char* RepairStateName(RepairState state) {
  switch (state) {
    case RepairState::kDecided:
      return "decided";
    case RepairState::kApplied:
      return "applied";
    case RepairState::kKept:
      return "kept";
    case RepairState::kReverted:
      return "reverted";
  }
  return "?";
}

RepairAction& RepairLog::Add(RepairAction action) {
  actions_.push_back(std::move(action));
  return actions_.back();
}

RepairAction* RepairLog::Find(uint64_t fingerprint) {
  for (RepairAction& action : actions_) {
    if (action.fingerprint == fingerprint) {
      return &action;
    }
  }
  return nullptr;
}

const RepairAction* RepairLog::Find(uint64_t fingerprint) const {
  return const_cast<RepairLog*>(this)->Find(fingerprint);
}

uint64_t RepairLog::applied() const {
  uint64_t count = 0;
  for (const RepairAction& action : actions_) {
    if (action.state == RepairState::kApplied || action.state == RepairState::kKept) {
      ++count;
    }
  }
  return count;
}

uint64_t RepairLog::reverted() const {
  uint64_t count = 0;
  for (const RepairAction& action : actions_) {
    if (action.state == RepairState::kReverted) {
      ++count;
    }
  }
  return count;
}

std::string RenderRepairTimeline(const RepairLog& log) {
  std::ostringstream out;
  out << "=== Placement repairs (" << log.actions().size() << " action(s), "
      << log.applied() << " in effect, " << log.reverted() << " reverted) ===\n";
  char line[256];
  for (const RepairAction& action : log.actions()) {
    std::snprintf(line, sizeof(line),
                  "%016llx  %-24s pipeline %2u  table %-12s %zu slice(s)  %s\n",
                  static_cast<unsigned long long>(action.fingerprint),
                  action.plan_name.c_str(), action.pipeline, action.table.c_str(),
                  action.placement.size(), RepairStateName(action.state));
    out << line;
    std::snprintf(line, sizeof(line), "  decided @%llu  applied @%llu  resolved @%llu\n",
                  static_cast<unsigned long long>(action.decided_tsc),
                  static_cast<unsigned long long>(action.applied_tsc),
                  static_cast<unsigned long long>(action.resolved_tsc));
    out << line;
  }
  return out.str();
}

}  // namespace dfp
