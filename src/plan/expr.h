// Scalar and aggregate expressions over tuple slots.
//
// Expressions are evaluated two ways: compiled to VIR by the engine's code generator, and
// evaluated host-side by the Volcano interpreter (the correctness oracle). Both implementations
// share this representation and must agree on semantics (decimal rescaling, date arithmetic,
// interned-string equality, three-valued logic is intentionally out of scope: all values are
// non-null, as in the synthetic datasets).
#ifndef DFP_SRC_PLAN_EXPR_H_
#define DFP_SRC_PLAN_EXPR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/types.h"

namespace dfp {

enum class ExprKind : uint8_t {
  kColumnRef,
  kLiteral,
  kBinary,
  kUnary,
  kAggregate,  // Only valid in GroupBy operators' aggregate lists.
  kCase,
  kLike,
  kInList,
  kCast,
  kExtractYear,  // Calendar year of a date (computed arithmetically in generated code).
};

enum class BinOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kRem,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnOp : uint8_t { kNot, kNeg };

enum class AggOp : uint8_t { kSum, kCount, kMin, kMax, kAvg, kCountStar };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind = ExprKind::kLiteral;
  ColumnType type = ColumnType::kInt64;  // Result type.

  // kColumnRef: index into the evaluating operator's input tuple.
  int slot = -1;
  // kLiteral: register payload (scaled decimal, days, packed string, bit-cast double).
  int64_t literal = 0;
  // kBinary / kUnary.
  BinOp bin = BinOp::kAdd;
  UnOp un = UnOp::kNot;
  ExprPtr left;
  ExprPtr right;
  // kLike: left = input, pattern below.
  std::string pattern;
  // kInList: left = input, candidates are literal payloads of `type_of(left)`.
  std::vector<int64_t> list;
  // kCase: (condition, value) pairs plus else.
  std::vector<std::pair<ExprPtr, ExprPtr>> whens;
  ExprPtr else_value;
  // kAggregate: input below (null for COUNT(*)).
  AggOp agg = AggOp::kSum;

  ExprPtr Clone() const;

  // Renders the expression for plan labels and reports.
  std::string ToString() const;
};

// --- Factories ---
ExprPtr MakeColumnRef(int slot, ColumnType type);
ExprPtr MakeLiteral(ColumnType type, int64_t payload);
ExprPtr MakeBinary(BinOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeUnary(UnOp op, ExprPtr input);
ExprPtr MakeAggregate(AggOp op, ExprPtr input);
ExprPtr MakeLike(ExprPtr input, std::string pattern);
ExprPtr MakeInList(ExprPtr input, std::vector<int64_t> candidates);
ExprPtr MakeCase(std::vector<std::pair<ExprPtr, ExprPtr>> whens, ExprPtr else_value);
ExprPtr MakeCast(ExprPtr input, ColumnType target);
ExprPtr MakeExtractYear(ExprPtr date_input);

// Result type of a binary operation (throws dfp::Error on type mismatch).
ColumnType BinaryResultType(BinOp op, ColumnType left, ColumnType right);

bool IsComparison(BinOp op);

// Calls `fn(slot)` for every column slot the expression reads.
void ForEachSlot(const Expr& expr, const std::function<void(int)>& fn);

// Rewrites all slot indices through `mapping` (old slot -> new slot).
void RemapSlots(Expr& expr, const std::vector<int>& mapping);

}  // namespace dfp

#endif  // DFP_SRC_PLAN_EXPR_H_
