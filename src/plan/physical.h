// The physical dataflow graph: the topmost abstraction level of the profiling hierarchy.
//
// A query is a tree of physical operators. Each operator carries a plan-wide id that Tailored
// Profiling uses as the OperatorId of the dataflow-graph abstraction level (the Tagging
// Dictionary's Log A maps pipeline tasks to these ids).
#ifndef DFP_SRC_PLAN_PHYSICAL_H_
#define DFP_SRC_PLAN_PHYSICAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/plan/expr.h"
#include "src/storage/table.h"

namespace dfp {

using OperatorId = uint32_t;

enum class OpKind : uint8_t {
  kTableScan,
  kFilter,
  kMap,        // Appends computed columns to the tuple.
  kHashJoin,   // children[0] = build side, children[1] = probe side.
  kGroupBy,    // Hash aggregation; breaker.
  kGroupJoin,  // Fused group-by + join (paper Section 5.4); children like kHashJoin.
  kSort,       // Breaker; materializes, sorts, rescans.
  kLimit,
  kResultSink,  // Root; materializes the result rows.
};

enum class JoinType : uint8_t { kInner, kSemi, kAnti };

const char* OpKindName(OpKind kind);

struct OutputColumn {
  std::string name;
  ColumnType type = ColumnType::kInt64;
};

struct SortItem {
  int slot = 0;
  bool descending = false;
};

struct PhysicalOp {
  OpKind kind = OpKind::kTableScan;
  OperatorId id = 0;  // Assigned when the plan is finalized.
  std::string label;  // Human-readable ("HashJoin o_orderkey=l_orderkey").
  std::vector<std::unique_ptr<PhysicalOp>> children;
  std::vector<OutputColumn> output;

  // kTableScan.
  const Table* table = nullptr;

  // kFilter: exprs[0] = predicate (kBool).
  // kMap: exprs = computed columns appended to the input tuple (or replacing it, see below).
  // kGroupBy / kGroupJoin: aggregate expressions (kAggregate over input slots).
  std::vector<ExprPtr> exprs;

  // kMap only: when set, the computed columns REPLACE the input tuple (pure projection).
  bool projecting = false;

  // kHashJoin / kGroupJoin: key slots in the respective child's output.
  std::vector<int> build_keys;
  std::vector<int> probe_keys;
  JoinType join_type = JoinType::kInner;
  // kHashJoin: build-side slots appended to the probe tuple (inner joins only).
  std::vector<int> build_payload;

  // kGroupBy: grouping slots. kGroupJoin groups by its build keys.
  std::vector<int> group_keys;

  // kSort.
  std::vector<SortItem> sort_items;
  // kLimit (also honored by kSort for top-k output).
  int64_t limit = -1;

  // Upper bound on produced rows, filled by FinalizePlan (used to size hash tables/buffers).
  uint64_t bound_rows = 0;
  // Optimizer's cardinality estimate (used for join ordering and reports).
  double estimated_rows = 0;

  PhysicalOp* child(size_t i) const { return children[i].get(); }
};

using PhysicalOpPtr = std::unique_ptr<PhysicalOp>;

// Assigns operator ids (pre-order), computes row bounds and output schemas sanity, and returns
// the operator count. Must be called once on a complete plan before compilation/interpretation.
uint32_t FinalizePlan(PhysicalOp& root);

// All operators in pre-order (root first).
std::vector<PhysicalOp*> PlanOperators(PhysicalOp& root);

// Deep copy of a finalized (or unfinalized) plan: operators, expressions, ids, labels, and the
// bounds FinalizePlan computed. Table pointers are shared (catalog-owned). Used by the tiered
// compiler to recompile a cached plan in the background while the cached entry keeps serving.
PhysicalOpPtr ClonePlan(const PhysicalOp& root);

// Renders the plan as an indented tree, one operator per line, optionally annotating each
// operator via `annotate(op)` (used for cost-annotated plans, Figure 9b).
std::string RenderPlanTree(const PhysicalOp& root,
                           const std::function<std::string(const PhysicalOp&)>& annotate = {});

}  // namespace dfp

#endif  // DFP_SRC_PLAN_PHYSICAL_H_
