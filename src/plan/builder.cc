#include "src/plan/builder.h"

#include "src/util/check.h"
#include "src/util/str.h"

namespace dfp {
namespace {

int FindSlot(const std::vector<OutputColumn>& schema, const std::string& name) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int MustFindSlot(const std::vector<OutputColumn>& schema, const std::string& name) {
  int slot = FindSlot(schema, name);
  if (slot < 0) {
    throw Error("unknown column: '" + name + "'");
  }
  return slot;
}

}  // namespace

PlanBuilder PlanBuilder::Scan(const Table& table) {
  PlanBuilder builder;
  auto op = std::make_unique<PhysicalOp>();
  op->kind = OpKind::kTableScan;
  op->table = &table;
  op->label = StrFormat("TableScan %s", table.name().c_str());
  for (const ColumnDef& column : table.schema().columns) {
    op->output.push_back({column.name, column.type});
  }
  builder.root_ = std::move(op);
  return builder;
}

int PlanBuilder::Slot(const std::string& name) const {
  return MustFindSlot(root_->output, name);
}

ExprPtr PlanBuilder::Col(const std::string& name) const {
  int slot = Slot(name);
  return MakeColumnRef(slot, root_->output[static_cast<size_t>(slot)].type);
}

PlanBuilder& PlanBuilder::FilterBy(ExprPtr predicate, std::string label) {
  DFP_CHECK(predicate->type == ColumnType::kBool);
  auto op = std::make_unique<PhysicalOp>();
  op->kind = OpKind::kFilter;
  op->label = label.empty() ? "Filter " + predicate->ToString() : std::move(label);
  op->output = root_->output;
  op->exprs.push_back(std::move(predicate));
  op->children.push_back(std::move(root_));
  root_ = std::move(op);
  return *this;
}

PlanBuilder& PlanBuilder::MapTo(std::vector<std::pair<std::string, ExprPtr>> columns) {
  auto op = std::make_unique<PhysicalOp>();
  op->kind = OpKind::kMap;
  op->label = "Map";
  op->output = root_->output;
  for (auto& [name, expr] : columns) {
    op->output.push_back({name, expr->type});
    op->exprs.push_back(std::move(expr));
  }
  op->children.push_back(std::move(root_));
  root_ = std::move(op);
  return *this;
}

PlanBuilder& PlanBuilder::JoinWith(PlanBuilder build, std::vector<std::string> probe_keys,
                                   std::vector<std::string> build_keys,
                                   std::vector<std::string> build_payload, JoinType join_type,
                                   std::string label) {
  DFP_CHECK(probe_keys.size() == build_keys.size());
  auto op = std::make_unique<PhysicalOp>();
  op->kind = OpKind::kHashJoin;
  op->join_type = join_type;
  const char* join_name = join_type == JoinType::kInner
                              ? "HashJoin"
                              : (join_type == JoinType::kSemi ? "SemiJoin" : "AntiJoin");
  op->label = label.empty()
                  ? StrFormat("%s %s=%s", join_name, probe_keys.front().c_str(),
                              build_keys.front().c_str())
                  : std::move(label);
  for (const std::string& key : probe_keys) {
    op->probe_keys.push_back(MustFindSlot(root_->output, key));
  }
  for (const std::string& key : build_keys) {
    op->build_keys.push_back(MustFindSlot(build.root_->output, key));
  }
  op->output = root_->output;
  if (join_type == JoinType::kInner) {
    for (const std::string& column : build_payload) {
      int slot = MustFindSlot(build.root_->output, column);
      op->build_payload.push_back(slot);
      op->output.push_back(build.root_->output[static_cast<size_t>(slot)]);
    }
  } else {
    DFP_CHECK(build_payload.empty());
  }
  op->children.push_back(std::move(build.root_));  // children[0] = build.
  op->children.push_back(std::move(root_));        // children[1] = probe.
  root_ = std::move(op);
  return *this;
}

PlanBuilder& PlanBuilder::GroupByKeys(std::vector<std::string> keys,
                                      std::vector<std::pair<std::string, ExprPtr>> aggregates,
                                      std::string label) {
  auto op = std::make_unique<PhysicalOp>();
  op->kind = OpKind::kGroupBy;
  op->label = label.empty() ? "GroupBy" : std::move(label);
  for (const std::string& key : keys) {
    int slot = MustFindSlot(root_->output, key);
    op->group_keys.push_back(slot);
    op->output.push_back(root_->output[static_cast<size_t>(slot)]);
  }
  for (auto& [name, expr] : aggregates) {
    DFP_CHECK(expr->kind == ExprKind::kAggregate);
    op->output.push_back({name, expr->type});
    op->exprs.push_back(std::move(expr));
  }
  op->children.push_back(std::move(root_));
  root_ = std::move(op);
  return *this;
}

PlanBuilder& PlanBuilder::GroupJoinWith(PlanBuilder build, std::vector<std::string> probe_keys,
                                        std::vector<std::string> build_keys,
                                        std::vector<std::string> build_payload,
                                        std::vector<std::pair<std::string, ExprPtr>> aggregates,
                                        std::string label) {
  DFP_CHECK(probe_keys.size() == build_keys.size());
  auto op = std::make_unique<PhysicalOp>();
  op->kind = OpKind::kGroupJoin;
  op->label = label.empty() ? "GroupJoin" : std::move(label);
  for (const std::string& key : probe_keys) {
    op->probe_keys.push_back(MustFindSlot(root_->output, key));
  }
  for (const std::string& key : build_keys) {
    op->build_keys.push_back(MustFindSlot(build.root_->output, key));
  }
  for (const std::string& column : build_payload) {
    int slot = MustFindSlot(build.root_->output, column);
    op->build_payload.push_back(slot);
    op->output.push_back(build.root_->output[static_cast<size_t>(slot)]);
  }
  for (auto& [name, expr] : aggregates) {
    DFP_CHECK(expr->kind == ExprKind::kAggregate);
    op->output.push_back({name, expr->type});
    op->exprs.push_back(std::move(expr));
  }
  op->children.push_back(std::move(build.root_));
  op->children.push_back(std::move(root_));
  root_ = std::move(op);
  return *this;
}

PlanBuilder& PlanBuilder::OrderBy(std::vector<std::pair<std::string, bool>> keys, int64_t limit) {
  auto op = std::make_unique<PhysicalOp>();
  op->kind = OpKind::kSort;
  op->label = "Sort";
  op->output = root_->output;
  for (auto& [name, desc] : keys) {
    op->sort_items.push_back({MustFindSlot(root_->output, name), desc});
  }
  op->limit = limit;
  op->children.push_back(std::move(root_));
  root_ = std::move(op);
  return *this;
}

PlanBuilder& PlanBuilder::LimitTo(int64_t limit) {
  auto op = std::make_unique<PhysicalOp>();
  op->kind = OpKind::kLimit;
  op->label = StrFormat("Limit %lld", static_cast<long long>(limit));
  op->output = root_->output;
  op->limit = limit;
  op->children.push_back(std::move(root_));
  root_ = std::move(op);
  return *this;
}

PlanBuilder& PlanBuilder::Project(std::vector<std::string> columns) {
  // Projection is a Map whose computed columns replace the input tuple.
  std::vector<OutputColumn> new_schema;
  auto op = std::make_unique<PhysicalOp>();
  op->kind = OpKind::kMap;
  op->label = "Project";
  for (const std::string& name : columns) {
    int slot = MustFindSlot(root_->output, name);
    op->exprs.push_back(
        MakeColumnRef(slot, root_->output[static_cast<size_t>(slot)].type));
    new_schema.push_back(root_->output[static_cast<size_t>(slot)]);
  }
  // A projecting Map replaces the schema instead of appending.
  op->projecting = true;
  op->output = std::move(new_schema);
  op->children.push_back(std::move(root_));
  root_ = std::move(op);
  return *this;
}

PlanBuilder& PlanBuilder::JoinWithSlots(PlanBuilder build, std::vector<int> probe_keys,
                                        std::vector<int> build_keys,
                                        std::vector<int> build_payload, JoinType join_type,
                                        std::string label) {
  DFP_CHECK(probe_keys.size() == build_keys.size());
  auto op = std::make_unique<PhysicalOp>();
  op->kind = OpKind::kHashJoin;
  op->join_type = join_type;
  op->label = label.empty() ? "HashJoin" : std::move(label);
  op->probe_keys = std::move(probe_keys);
  op->build_keys = std::move(build_keys);
  op->output = root_->output;
  if (join_type == JoinType::kInner) {
    for (int slot : build_payload) {
      op->build_payload.push_back(slot);
      op->output.push_back(build.root_->output[static_cast<size_t>(slot)]);
    }
  } else {
    DFP_CHECK(build_payload.empty());
  }
  op->children.push_back(std::move(build.root_));
  op->children.push_back(std::move(root_));
  root_ = std::move(op);
  return *this;
}

PlanBuilder& PlanBuilder::GroupBySlots(std::vector<int> keys,
                                       std::vector<std::pair<std::string, ExprPtr>> aggregates,
                                       std::string label) {
  auto op = std::make_unique<PhysicalOp>();
  op->kind = OpKind::kGroupBy;
  op->label = label.empty() ? "GroupBy" : std::move(label);
  for (int slot : keys) {
    op->group_keys.push_back(slot);
    op->output.push_back(root_->output[static_cast<size_t>(slot)]);
  }
  for (auto& [name, expr] : aggregates) {
    DFP_CHECK(expr->kind == ExprKind::kAggregate);
    op->output.push_back({name, expr->type});
    op->exprs.push_back(std::move(expr));
  }
  op->children.push_back(std::move(root_));
  root_ = std::move(op);
  return *this;
}

PlanBuilder& PlanBuilder::OrderBySlots(std::vector<SortItem> items, int64_t limit) {
  auto op = std::make_unique<PhysicalOp>();
  op->kind = OpKind::kSort;
  op->label = "Sort";
  op->output = root_->output;
  op->sort_items = std::move(items);
  op->limit = limit;
  op->children.push_back(std::move(root_));
  root_ = std::move(op);
  return *this;
}

PlanBuilder& PlanBuilder::ProjectSlots(std::vector<std::pair<std::string, int>> columns) {
  auto op = std::make_unique<PhysicalOp>();
  op->kind = OpKind::kMap;
  op->label = "Project";
  op->projecting = true;
  for (auto& [name, slot] : columns) {
    const ColumnType type = root_->output[static_cast<size_t>(slot)].type;
    op->exprs.push_back(MakeColumnRef(slot, type));
    op->output.push_back({name, type});
  }
  op->children.push_back(std::move(root_));
  root_ = std::move(op);
  return *this;
}

PhysicalOpPtr PlanBuilder::Build() {
  auto sink = std::make_unique<PhysicalOp>();
  sink->kind = OpKind::kResultSink;
  sink->label = "ResultSink";
  sink->output = root_->output;
  sink->children.push_back(std::move(root_));
  FinalizePlan(*sink);
  return sink;
}

}  // namespace dfp
