#include "src/plan/physical.h"

#include "src/util/check.h"
#include "src/util/str.h"

namespace dfp {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kTableScan:
      return "TableScan";
    case OpKind::kFilter:
      return "Filter";
    case OpKind::kMap:
      return "Map";
    case OpKind::kHashJoin:
      return "HashJoin";
    case OpKind::kGroupBy:
      return "GroupBy";
    case OpKind::kGroupJoin:
      return "GroupJoin";
    case OpKind::kSort:
      return "Sort";
    case OpKind::kLimit:
      return "Limit";
    case OpKind::kResultSink:
      return "ResultSink";
  }
  return "?";
}

namespace {

void AssignIds(PhysicalOp& op, uint32_t* next) {
  op.id = (*next)++;
  for (auto& child : op.children) {
    AssignIds(*child, next);
  }
}

// Upper bound on the number of tuples an operator can emit, used to size hash tables and
// materialization buffers exactly (the engine's joins are key/foreign-key equi-joins, so a
// probe tuple matches at most one build group... conservatively we still use the probe bound).
uint64_t ComputeBounds(PhysicalOp& op) {
  uint64_t bound = 0;
  std::vector<uint64_t> child_bounds;
  child_bounds.reserve(op.children.size());
  for (auto& child : op.children) {
    child_bounds.push_back(ComputeBounds(*child));
  }
  switch (op.kind) {
    case OpKind::kTableScan:
      bound = op.table->row_count();
      break;
    case OpKind::kFilter:
    case OpKind::kMap:
    case OpKind::kSort:
    case OpKind::kResultSink:
      bound = child_bounds[0];
      break;
    case OpKind::kLimit:
      bound = op.limit >= 0 ? std::min<uint64_t>(child_bounds[0],
                                                 static_cast<uint64_t>(op.limit))
                            : child_bounds[0];
      break;
    case OpKind::kHashJoin:
      // PK-FK equi-join: each probe tuple matches at most one build tuple.
      bound = child_bounds[1];
      break;
    case OpKind::kGroupBy:
      bound = child_bounds[0];
      break;
    case OpKind::kGroupJoin:
      bound = child_bounds[0];  // One output row per build-side group at most.
      break;
  }
  op.bound_rows = bound;
  if (op.estimated_rows == 0) {
    op.estimated_rows = static_cast<double>(bound);
  }
  return bound;
}

void Validate(const PhysicalOp& op) {
  switch (op.kind) {
    case OpKind::kTableScan:
      DFP_CHECK(op.table != nullptr && op.children.empty());
      DFP_CHECK(op.output.size() == op.table->schema().columns.size());
      break;
    case OpKind::kFilter:
      DFP_CHECK(op.children.size() == 1 && op.exprs.size() == 1);
      DFP_CHECK(op.output.size() == op.child(0)->output.size());
      break;
    case OpKind::kMap:
      DFP_CHECK(op.children.size() == 1);
      if (op.projecting) {
        DFP_CHECK(op.output.size() == op.exprs.size());
      } else {
        DFP_CHECK(op.output.size() == op.child(0)->output.size() + op.exprs.size());
      }
      break;
    case OpKind::kHashJoin:
      DFP_CHECK(op.children.size() == 2);
      DFP_CHECK(!op.build_keys.empty() && op.build_keys.size() == op.probe_keys.size());
      if (op.join_type == JoinType::kInner) {
        DFP_CHECK(op.output.size() == op.child(1)->output.size() + op.build_payload.size());
      } else {
        DFP_CHECK(op.output.size() == op.child(1)->output.size());
      }
      break;
    case OpKind::kGroupBy:
      DFP_CHECK(op.children.size() == 1);
      DFP_CHECK(op.output.size() == op.group_keys.size() + op.exprs.size());
      break;
    case OpKind::kGroupJoin:
      DFP_CHECK(op.children.size() == 2);
      DFP_CHECK(!op.build_keys.empty() && op.build_keys.size() == op.probe_keys.size());
      DFP_CHECK(op.output.size() == op.build_payload.size() + op.exprs.size());
      break;
    case OpKind::kSort:
      DFP_CHECK(op.children.size() == 1 && !op.sort_items.empty());
      DFP_CHECK(op.output.size() == op.child(0)->output.size());
      break;
    case OpKind::kLimit:
      DFP_CHECK(op.children.size() == 1 && op.limit >= 0);
      break;
    case OpKind::kResultSink:
      DFP_CHECK(op.children.size() == 1);
      break;
  }
  for (const auto& child : op.children) {
    Validate(*child);
  }
}

}  // namespace

uint32_t FinalizePlan(PhysicalOp& root) {
  uint32_t next = 0;
  AssignIds(root, &next);
  ComputeBounds(root);
  Validate(root);
  return next;
}

std::vector<PhysicalOp*> PlanOperators(PhysicalOp& root) {
  std::vector<PhysicalOp*> out;
  std::vector<PhysicalOp*> stack = {&root};
  while (!stack.empty()) {
    PhysicalOp* op = stack.back();
    stack.pop_back();
    out.push_back(op);
    for (auto it = op->children.rbegin(); it != op->children.rend(); ++it) {
      stack.push_back(it->get());
    }
  }
  return out;
}

PhysicalOpPtr ClonePlan(const PhysicalOp& root) {
  auto clone = std::make_unique<PhysicalOp>();
  clone->kind = root.kind;
  clone->id = root.id;
  clone->label = root.label;
  clone->output = root.output;
  clone->table = root.table;
  clone->exprs.reserve(root.exprs.size());
  for (const ExprPtr& expr : root.exprs) {
    clone->exprs.push_back(expr->Clone());
  }
  clone->projecting = root.projecting;
  clone->build_keys = root.build_keys;
  clone->probe_keys = root.probe_keys;
  clone->join_type = root.join_type;
  clone->build_payload = root.build_payload;
  clone->group_keys = root.group_keys;
  clone->sort_items = root.sort_items;
  clone->limit = root.limit;
  clone->bound_rows = root.bound_rows;
  clone->estimated_rows = root.estimated_rows;
  clone->children.reserve(root.children.size());
  for (const PhysicalOpPtr& child : root.children) {
    clone->children.push_back(ClonePlan(*child));
  }
  return clone;
}

namespace {

void RenderNode(const PhysicalOp& op, int depth,
                const std::function<std::string(const PhysicalOp&)>& annotate, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(op.label.empty() ? OpKindName(op.kind) : op.label);
  if (annotate) {
    std::string extra = annotate(op);
    if (!extra.empty()) {
      out->append(" ");
      out->append(extra);
    }
  }
  out->push_back('\n');
  for (const auto& child : op.children) {
    RenderNode(*child, depth + 1, annotate, out);
  }
}

}  // namespace

std::string RenderPlanTree(const PhysicalOp& root,
                           const std::function<std::string(const PhysicalOp&)>& annotate) {
  std::string out;
  RenderNode(root, 0, annotate, &out);
  return out;
}

}  // namespace dfp
