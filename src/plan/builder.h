// Fluent construction of physical plans — the library's hand-written-plan API.
//
// Used directly by examples, benchmarks, and tests, and by the SQL binder after join ordering.
#ifndef DFP_SRC_PLAN_BUILDER_H_
#define DFP_SRC_PLAN_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "src/plan/physical.h"

namespace dfp {

// (name, expression) pairs for Map/GroupBy; variadic helper because initializer lists cannot
// carry move-only ExprPtr values: NamedExprs("a", expr_a, "b", expr_b).
using NamedExpr = std::pair<std::string, ExprPtr>;

inline void AppendNamedExprs(std::vector<NamedExpr>*) {}

template <typename... Rest>
void AppendNamedExprs(std::vector<NamedExpr>* out, std::string name, ExprPtr expr,
                      Rest&&... rest) {
  out->emplace_back(std::move(name), std::move(expr));
  AppendNamedExprs(out, std::forward<Rest>(rest)...);
}

template <typename... Args>
std::vector<NamedExpr> NamedExprs(Args&&... args) {
  std::vector<NamedExpr> out;
  AppendNamedExprs(&out, std::forward<Args>(args)...);
  return out;
}

class PlanBuilder {
 public:
  // Starts a plan with a full table scan.
  static PlanBuilder Scan(const Table& table);

  // Current output schema of the plan under construction.
  const std::vector<OutputColumn>& schema() const { return root_->output; }

  // Slot index of the named output column (throws dfp::Error if absent or ambiguous is fine:
  // the first match wins; qualify names in SQL for disambiguation).
  int Slot(const std::string& name) const;

  // Column reference to the named output column.
  ExprPtr Col(const std::string& name) const;

  PlanBuilder& FilterBy(ExprPtr predicate, std::string label = "");

  // Appends computed columns.
  PlanBuilder& MapTo(std::vector<std::pair<std::string, ExprPtr>> columns);

  // Hash join: `build` becomes the build side, *this the probe side. `build_payload` lists the
  // build-side columns appended to the probe tuple (inner joins only).
  PlanBuilder& JoinWith(PlanBuilder build, std::vector<std::string> probe_keys,
                        std::vector<std::string> build_keys,
                        std::vector<std::string> build_payload,
                        JoinType join_type = JoinType::kInner, std::string label = "");

  // Hash aggregation. `aggregates` are (output name, aggregate expression) pairs.
  PlanBuilder& GroupByKeys(std::vector<std::string> keys,
                           std::vector<std::pair<std::string, ExprPtr>> aggregates,
                           std::string label = "");

  // Fused group-by + join (paper Section 5.4): groups the build side by its keys, aggregates
  // probe-side matches. Output = build_payload columns ++ aggregates over the probe tuple.
  PlanBuilder& GroupJoinWith(PlanBuilder build, std::vector<std::string> probe_keys,
                             std::vector<std::string> build_keys,
                             std::vector<std::string> build_payload,
                             std::vector<std::pair<std::string, ExprPtr>> aggregates,
                             std::string label = "");

  PlanBuilder& OrderBy(std::vector<std::pair<std::string, bool>> keys, int64_t limit = -1);

  PlanBuilder& LimitTo(int64_t limit);

  // Keeps only the named columns, in order (pure projection; implemented via Map of refs).
  PlanBuilder& Project(std::vector<std::string> columns);

  // Wraps the plan in a ResultSink and finalizes it (assigns operator ids and bounds).
  PhysicalOpPtr Build();

  // --- Slot-based variants (used by the SQL binder, immune to duplicate column names) ---

  PlanBuilder& JoinWithSlots(PlanBuilder build, std::vector<int> probe_keys,
                             std::vector<int> build_keys, std::vector<int> build_payload,
                             JoinType join_type = JoinType::kInner, std::string label = "");

  PlanBuilder& GroupBySlots(std::vector<int> keys,
                            std::vector<std::pair<std::string, ExprPtr>> aggregates,
                            std::string label = "");

  PlanBuilder& OrderBySlots(std::vector<SortItem> items, int64_t limit = -1);

  PlanBuilder& ProjectSlots(std::vector<std::pair<std::string, int>> columns);

 private:
  PhysicalOpPtr root_;
};

}  // namespace dfp

#endif  // DFP_SRC_PLAN_BUILDER_H_
