#include "src/plan/eval.h"

#include <bit>

#include "src/util/check.h"
#include "src/util/date.h"
#include "src/util/decimal.h"
#include "src/util/str.h"

namespace dfp {
namespace {

inline double AsD(int64_t payload) { return std::bit_cast<double>(payload); }
inline int64_t FromD(double value) { return std::bit_cast<int64_t>(value); }

// Promotes a payload of type `from` to type `to` for mixed arithmetic (int64 -> decimal/double).
int64_t Promote(int64_t payload, ColumnType from, ColumnType to) {
  if (from == to) {
    return payload;
  }
  if (from == ColumnType::kInt64 && to == ColumnType::kDecimal) {
    return payload * kDecimalScale;
  }
  if (from == ColumnType::kInt64 && to == ColumnType::kDouble) {
    return FromD(static_cast<double>(payload));
  }
  if (from == ColumnType::kDate && to == ColumnType::kDate) {
    return payload;
  }
  // Date +/- int64: both sides stay integral day counts.
  if ((from == ColumnType::kInt64 && to == ColumnType::kDate) ||
      (from == ColumnType::kDate && to == ColumnType::kInt64)) {
    return payload;
  }
  if (from == ColumnType::kDecimal && to == ColumnType::kDouble) {
    return FromD(DecimalToDouble(payload));
  }
  throw Error(std::string("cannot promote ") + ColumnTypeName(from) + " to " +
              ColumnTypeName(to));
}

int CompareStrings(const StringHeap* strings, int64_t a, int64_t b) {
  DFP_CHECK(strings != nullptr);
  std::string_view sa = strings->Get(static_cast<uint64_t>(a));
  std::string_view sb = strings->Get(static_cast<uint64_t>(b));
  int cmp = sa.compare(sb);
  return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
}

}  // namespace

int64_t EvalScalar(const Expr& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      DFP_CHECK(expr.slot >= 0 && static_cast<size_t>(expr.slot) < ctx.tuple.size());
      return ctx.tuple[static_cast<size_t>(expr.slot)];
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kUnary: {
      int64_t value = EvalScalar(*expr.left, ctx);
      if (expr.un == UnOp::kNot) {
        return value == 0 ? 1 : 0;
      }
      return expr.left->type == ColumnType::kDouble ? FromD(-AsD(value)) : -value;
    }
    case ExprKind::kBinary: {
      const BinOp op = expr.bin;
      // Short-circuit logic first.
      if (op == BinOp::kAnd) {
        return EvalScalar(*expr.left, ctx) != 0 && EvalScalar(*expr.right, ctx) != 0 ? 1 : 0;
      }
      if (op == BinOp::kOr) {
        return EvalScalar(*expr.left, ctx) != 0 || EvalScalar(*expr.right, ctx) != 0 ? 1 : 0;
      }
      int64_t lhs = EvalScalar(*expr.left, ctx);
      int64_t rhs = EvalScalar(*expr.right, ctx);
      if (IsComparison(op)) {
        int cmp;
        if (expr.left->type == ColumnType::kString) {
          // Equality of interned strings is payload equality; ordering reads bytes.
          if (op == BinOp::kEq) {
            return lhs == rhs;
          }
          if (op == BinOp::kNe) {
            return lhs != rhs;
          }
          cmp = CompareStrings(ctx.strings, lhs, rhs);
        } else if (expr.left->type == ColumnType::kDouble ||
                   expr.right->type == ColumnType::kDouble) {
          double a = expr.left->type == ColumnType::kDouble ? AsD(lhs)
                                                            : static_cast<double>(lhs);
          double b = expr.right->type == ColumnType::kDouble ? AsD(rhs)
                                                             : static_cast<double>(rhs);
          cmp = a < b ? -1 : (a > b ? 1 : 0);
        } else {
          // Integral comparisons; mixed int/decimal promotes to decimal.
          ColumnType common =
              expr.left->type == expr.right->type
                  ? expr.left->type
                  : BinaryResultType(BinOp::kAdd, expr.left->type, expr.right->type);
          int64_t a = Promote(lhs, expr.left->type, common);
          int64_t b = Promote(rhs, expr.right->type, common);
          cmp = a < b ? -1 : (a > b ? 1 : 0);
        }
        switch (op) {
          case BinOp::kEq:
            return cmp == 0;
          case BinOp::kNe:
            return cmp != 0;
          case BinOp::kLt:
            return cmp < 0;
          case BinOp::kLe:
            return cmp <= 0;
          case BinOp::kGt:
            return cmp > 0;
          default:
            return cmp >= 0;
        }
      }
      // Arithmetic.
      const ColumnType result = expr.type;
      lhs = Promote(lhs, expr.left->type, result);
      rhs = Promote(rhs, expr.right->type, result);
      if (result == ColumnType::kDouble) {
        switch (op) {
          case BinOp::kAdd:
            return FromD(AsD(lhs) + AsD(rhs));
          case BinOp::kSub:
            return FromD(AsD(lhs) - AsD(rhs));
          case BinOp::kMul:
            return FromD(AsD(lhs) * AsD(rhs));
          case BinOp::kDiv:
            return FromD(AsD(lhs) / AsD(rhs));
          default:
            throw Error("unsupported double operation");
        }
      }
      switch (op) {
        case BinOp::kAdd:
          return lhs + rhs;
        case BinOp::kSub:
          return lhs - rhs;
        case BinOp::kMul:
          return result == ColumnType::kDecimal ? DecimalMul(lhs, rhs) : lhs * rhs;
        case BinOp::kDiv:
          DFP_CHECK(rhs != 0);
          return result == ColumnType::kDecimal ? DecimalDiv(lhs, rhs) : lhs / rhs;
        case BinOp::kRem:
          DFP_CHECK(rhs != 0);
          return lhs % rhs;
        default:
          throw Error("unsupported integer operation");
      }
    }
    case ExprKind::kCase: {
      for (const auto& [cond, value] : expr.whens) {
        if (EvalScalar(*cond, ctx) != 0) {
          return EvalScalar(*value, ctx);
        }
      }
      return EvalScalar(*expr.else_value, ctx);
    }
    case ExprKind::kLike: {
      DFP_CHECK(ctx.strings != nullptr);
      int64_t value = EvalScalar(*expr.left, ctx);
      return LikeMatch(ctx.strings->Get(static_cast<uint64_t>(value)), expr.pattern) ? 1 : 0;
    }
    case ExprKind::kInList: {
      int64_t value = EvalScalar(*expr.left, ctx);
      for (int64_t candidate : expr.list) {
        if (candidate == value) {
          return 1;
        }
      }
      return 0;
    }
    case ExprKind::kCast: {
      int64_t value = EvalScalar(*expr.left, ctx);
      return Promote(value, expr.left->type, expr.type);
    }
    case ExprKind::kExtractYear: {
      int year = 0;
      int month = 0;
      int day = 0;
      YmdFromDate(static_cast<int32_t>(EvalScalar(*expr.left, ctx)), &year, &month, &day);
      return year;
    }
    case ExprKind::kAggregate:
      throw Error("aggregate expression evaluated in scalar context");
  }
  DFP_UNREACHABLE();
}

}  // namespace dfp
