#include "src/plan/rewrite.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <utility>
#include <vector>

#include "src/util/check.h"

namespace dfp {

CardinalityMap EstimatedCardinalities(const PhysicalOp& root) {
  CardinalityMap out;
  const std::function<void(const PhysicalOp&)> walk = [&](const PhysicalOp& op) {
    out[op.id] = op.estimated_rows <= 0 ? op.bound_rows
                                        : static_cast<uint64_t>(std::llround(op.estimated_rows));
    for (const PhysicalOpPtr& child : op.children) {
      walk(*child);
    }
  };
  walk(root);
  return out;
}

void InjectCardinalities(PhysicalOp& root, const CardinalityMap& observed) {
  for (PhysicalOp* op : PlanOperators(root)) {
    auto it = observed.find(op->id);
    if (it != observed.end()) {
      op->estimated_rows = static_cast<double>(std::max<uint64_t>(it->second, 1));
    }
  }
}

namespace {

// Location of the topmost reorderable join spine: the unique_ptr slot holding its top join plus
// the ancestor chain from the root down to that slot (root-first, with the child index taken).
struct SpineSite {
  PhysicalOpPtr* slot = nullptr;
  std::vector<std::pair<PhysicalOp*, size_t>> ancestors;
};

bool FindSpine(PhysicalOpPtr& slot, SpineSite* site) {
  PhysicalOp* op = slot.get();
  if (op->kind == OpKind::kHashJoin && op->child(1)->kind == OpKind::kHashJoin) {
    site->slot = &slot;
    return true;
  }
  for (size_t i = 0; i < op->children.size(); ++i) {
    site->ancestors.emplace_back(op, i);
    if (FindSpine(op->children[i], site)) {
      return true;
    }
    site->ancestors.pop_back();
  }
  return false;
}

bool IsIdentity(const std::vector<int>& perm) {
  for (size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != static_cast<int>(i)) {
      return false;
    }
  }
  return true;
}

// Applies `perm` (old slot -> new slot of child `child_index`'s output) to `op`, rewriting its
// slot references and output schema. Returns the permutation of op's own output; an empty
// result means op's output is unchanged and propagation stops.
std::vector<int> PropagateThroughOp(PhysicalOp& op, size_t child_index, std::vector<int> perm) {
  PhysicalOp& child = *op.children[child_index];
  switch (op.kind) {
    case OpKind::kFilter:
      RemapSlots(*op.exprs[0], perm);
      op.output = child.output;
      return perm;
    case OpKind::kMap: {
      for (ExprPtr& expr : op.exprs) {
        RemapSlots(*expr, perm);
      }
      if (op.projecting) {
        return {};  // The projection fixes the schema from here up.
      }
      const size_t computed = op.exprs.size();
      std::vector<OutputColumn> tail(op.output.end() - static_cast<ptrdiff_t>(computed),
                                     op.output.end());
      op.output = child.output;
      op.output.insert(op.output.end(), tail.begin(), tail.end());
      for (size_t j = 0; j < computed; ++j) {
        perm.push_back(static_cast<int>(perm.size()));
      }
      return perm;
    }
    case OpKind::kHashJoin: {
      if (child_index == 0) {  // Build side permuted: keys/payload follow, output is unchanged.
        for (int& key : op.build_keys) {
          key = perm[static_cast<size_t>(key)];
        }
        for (int& slot : op.build_payload) {
          slot = perm[static_cast<size_t>(slot)];
        }
        return {};
      }
      for (int& key : op.probe_keys) {
        key = perm[static_cast<size_t>(key)];
      }
      if (op.join_type == JoinType::kInner) {
        const size_t payload = op.build_payload.size();
        std::vector<OutputColumn> tail(op.output.end() - static_cast<ptrdiff_t>(payload),
                                       op.output.end());
        op.output = child.output;
        op.output.insert(op.output.end(), tail.begin(), tail.end());
        for (size_t j = 0; j < payload; ++j) {
          perm.push_back(static_cast<int>(perm.size()));
        }
      } else {
        op.output = child.output;
      }
      return perm;
    }
    case OpKind::kGroupJoin:
      if (child_index == 0) {
        for (int& key : op.build_keys) {
          key = perm[static_cast<size_t>(key)];
        }
        for (int& slot : op.build_payload) {
          slot = perm[static_cast<size_t>(slot)];
        }
      } else {
        for (int& key : op.probe_keys) {
          key = perm[static_cast<size_t>(key)];
        }
        for (ExprPtr& expr : op.exprs) {
          RemapSlots(*expr, perm);
        }
      }
      return {};  // Output is build keys + aggregates: independent of probe column order.
    case OpKind::kGroupBy:
      for (int& key : op.group_keys) {
        key = perm[static_cast<size_t>(key)];
      }
      for (ExprPtr& expr : op.exprs) {
        RemapSlots(*expr, perm);
      }
      return {};
    case OpKind::kSort:
      for (SortItem& item : op.sort_items) {
        item.slot = perm[static_cast<size_t>(item.slot)];
      }
      op.output = child.output;
      return perm;
    case OpKind::kLimit:
      op.output = child.output;
      return perm;
    case OpKind::kResultSink: {
      // The permutation survived to the root: restore the original column order with a
      // projecting Map so the materialized result stays bit-identical to the original plan's.
      auto restore = std::make_unique<PhysicalOp>();
      restore->kind = OpKind::kMap;
      restore->projecting = true;
      restore->label = "Map reopt-restore";
      restore->output.resize(perm.size());
      restore->exprs.resize(perm.size());
      for (size_t j = 0; j < perm.size(); ++j) {
        const size_t moved = static_cast<size_t>(perm[j]);
        restore->output[j] = child.output[moved];
        restore->exprs[j] = MakeColumnRef(static_cast<int>(moved), child.output[moved].type);
      }
      restore->children.push_back(std::move(op.children[child_index]));
      op.children[child_index] = std::move(restore);
      op.output = op.children[child_index]->output;
      return {};
    }
    case OpKind::kTableScan:
      break;
  }
  DFP_CHECK(false);  // Scans have no children; every other kind is handled above.
  return {};
}

bool SubtreeHasReduction(const PhysicalOp& op) {
  if (op.label.rfind("SemiJoinReduction", 0) == 0) {
    return true;
  }
  for (const PhysicalOpPtr& child : op.children) {
    if (SubtreeHasReduction(*child)) {
      return true;
    }
  }
  return false;
}

}  // namespace

ReoptRewrite ReoptimizePlan(const PhysicalOp& original, const CardinalityMap& observed,
                            const ReoptRewriteOptions& options) {
  ReoptRewrite out;
  PhysicalOpPtr clone = ClonePlan(original);
  const CardinalityMap planned = EstimatedCardinalities(*clone);
  InjectCardinalities(*clone, observed);

  SpineSite site;
  if (!FindSpine(clone, &site)) {
    return out;
  }

  // Legality: every spine join must key its probe side on the base stream's own columns (slots
  // below the base width), never on a lower join's payload — otherwise the order is forced.
  std::vector<PhysicalOp*> spine;
  for (PhysicalOp* cursor = site.slot->get(); cursor->kind == OpKind::kHashJoin;
       cursor = cursor->child(1)) {
    spine.push_back(cursor);
  }
  PhysicalOp* base = spine.back()->child(1);
  const int base_width = static_cast<int>(base->output.size());
  for (const PhysicalOp* join : spine) {
    for (int key : join->probe_keys) {
      if (key >= base_width) {
        return out;
      }
    }
  }

  // Detach the chain. `joins` ends up bottom-to-top, matching slot-layout order.
  std::vector<PhysicalOpPtr> joins;
  PhysicalOpPtr base_ptr;
  {
    PhysicalOpPtr cursor = std::move(*site.slot);
    while (cursor->kind == OpKind::kHashJoin) {
      PhysicalOpPtr next = std::move(cursor->children[1]);
      joins.push_back(std::move(cursor));
      cursor = std::move(next);
    }
    base_ptr = std::move(cursor);
  }
  std::reverse(joins.begin(), joins.end());
  const size_t n_spine = joins.size();

  // The binder's greedy rule on measurements: smallest build side lowest. estimated_rows already
  // carries the injected observations (with plan-time estimates as the fallback).
  std::vector<size_t> order(n_spine);
  std::iota(order.begin(), order.end(), 0);
  const auto build_rows = [](const PhysicalOp& join) -> uint64_t {
    const double estimate = join.child(0)->estimated_rows;
    return estimate <= 0 ? join.child(0)->bound_rows
                         : static_cast<uint64_t>(std::llround(estimate));
  };
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const uint64_t rows_a = build_rows(*joins[a]);
    const uint64_t rows_b = build_rows(*joins[b]);
    return options.pessimize ? rows_a > rows_b : rows_a < rows_b;
  });
  bool reordered = false;
  for (size_t pos = 0; pos < n_spine; ++pos) {
    reordered |= order[pos] != pos;
  }

  // Slot permutation of the spine-top output: the base block stays put, payload blocks move
  // with their joins. Semi/anti joins contribute no payload.
  std::vector<std::vector<OutputColumn>> payload_cols(n_spine);
  std::vector<size_t> old_start(n_spine);
  std::vector<size_t> new_start(n_spine);
  size_t offset = static_cast<size_t>(base_width);
  for (size_t k = 0; k < n_spine; ++k) {
    const PhysicalOp& join = *joins[k];
    const size_t payload =
        join.join_type == JoinType::kInner ? join.build_payload.size() : 0;
    payload_cols[k].assign(join.output.end() - static_cast<ptrdiff_t>(payload),
                           join.output.end());
    old_start[k] = offset;
    offset += payload;
  }
  const size_t total = offset;
  offset = static_cast<size_t>(base_width);
  for (size_t pos = 0; pos < n_spine; ++pos) {
    const size_t k = order[pos];
    new_start[k] = offset;
    offset += payload_cols[k].size();
  }
  std::vector<int> perm(total);
  for (int i = 0; i < base_width; ++i) {
    perm[static_cast<size_t>(i)] = i;
  }
  for (size_t k = 0; k < n_spine; ++k) {
    for (size_t t = 0; t < payload_cols[k].size(); ++t) {
      perm[old_start[k] + t] = static_cast<int>(new_start[k] + t);
    }
  }

  // Rebuild bottom-up in the measured order, recomputing each join's output schema.
  PhysicalOpPtr cursor = std::move(base_ptr);
  for (size_t pos = 0; pos < n_spine; ++pos) {
    PhysicalOpPtr join = std::move(joins[order[pos]]);
    join->output = cursor->output;
    join->output.insert(join->output.end(), payload_cols[order[pos]].begin(),
                        payload_cols[order[pos]].end());
    join->children[1] = std::move(cursor);
    cursor = std::move(join);
  }
  *site.slot = std::move(cursor);

  // Semi-join reduction: duplicate the worst-blowup upper join as a semi filter directly above
  // the base stream. Legal because all spine keys hit the base block, and because the chosen
  // join (inner or semi) would drop the non-matching rows anyway — the reduction only moves
  // that death earlier. Gated on MEASURED blowup, never estimates.
  bool semi_inserted = false;
  if (options.semi_join_reduction && n_spine >= 2) {
    std::vector<PhysicalOp*> rebuilt;
    for (PhysicalOp* walk = site.slot->get(); walk->kind == OpKind::kHashJoin;
         walk = walk->child(1)) {
      rebuilt.push_back(walk);
    }
    PhysicalOp* best = nullptr;
    uint64_t best_ratio = 0;
    for (size_t i = 0; i + 1 < rebuilt.size(); ++i) {  // The bottom join gains nothing.
      PhysicalOp* join = rebuilt[i];
      if (join->join_type == JoinType::kAnti) {
        continue;  // Anti keeps the non-matching rows; filtering them early is wrong.
      }
      auto obs = observed.find(join->child(0)->id);
      if (obs == observed.end()) {
        continue;
      }
      auto est = planned.find(join->child(0)->id);
      const uint64_t planned_rows = est == planned.end() ? 0 : est->second;
      const uint64_t ratio = 100 * obs->second / std::max<uint64_t>(planned_rows, 1);
      if (ratio >= options.semi_join_blowup_pct && ratio > best_ratio) {
        best = join;
        best_ratio = ratio;
      }
    }
    PhysicalOp* bottom = rebuilt.back();
    if (best != nullptr && !SubtreeHasReduction(*bottom->child(1))) {
      auto reducer = std::make_unique<PhysicalOp>();
      reducer->kind = OpKind::kHashJoin;
      reducer->join_type = JoinType::kSemi;
      reducer->label =
          "SemiJoinReduction " + (best->label.empty() ? "HashJoin" : best->label);
      reducer->build_keys = best->build_keys;
      reducer->probe_keys = best->probe_keys;
      reducer->children.push_back(ClonePlan(*best->child(0)));
      reducer->children.push_back(std::move(bottom->children[1]));
      reducer->output = reducer->child(1)->output;
      bottom->children[1] = std::move(reducer);
      semi_inserted = true;
    }
  }

  if (!reordered && !semi_inserted) {
    return out;  // Measurements agree with the plan.
  }

  if (!IsIdentity(perm)) {
    std::vector<int> carried = perm;
    for (auto it = site.ancestors.rbegin(); it != site.ancestors.rend(); ++it) {
      carried = PropagateThroughOp(*it->first, it->second, std::move(carried));
      if (carried.empty() || IsIdentity(carried)) {
        carried.clear();
        break;
      }
    }
    // A surviving permutation means the plan root was not a ResultSink: unsupported shape.
    DFP_CHECK(carried.empty());
  }

  FinalizePlan(*clone);
  out.plan = std::move(clone);
  out.changed = true;
  out.reordered = reordered;
  out.semi_join = semi_inserted;
  if (reordered) {
    out.description = "reorder ";
    for (size_t pos = 0; pos < n_spine; ++pos) {
      if (pos > 0) {
        out.description += ',';
      }
      out.description += std::to_string(order[pos]);
    }
  }
  if (semi_inserted) {
    out.description += out.description.empty() ? "semijoin" : " semijoin";
  }
  return out;
}

}  // namespace dfp
