#include "src/plan/expr.h"

#include <bit>
#include <functional>

#include "src/util/check.h"
#include "src/util/date.h"
#include "src/util/decimal.h"
#include "src/util/str.h"

namespace dfp {

ExprPtr Expr::Clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->type = type;
  copy->slot = slot;
  copy->literal = literal;
  copy->bin = bin;
  copy->un = un;
  copy->pattern = pattern;
  copy->list = list;
  copy->agg = agg;
  if (left != nullptr) {
    copy->left = left->Clone();
  }
  if (right != nullptr) {
    copy->right = right->Clone();
  }
  if (else_value != nullptr) {
    copy->else_value = else_value->Clone();
  }
  for (const auto& [cond, value] : whens) {
    copy->whens.emplace_back(cond->Clone(), value->Clone());
  }
  return copy;
}

ExprPtr MakeColumnRef(int slot, ColumnType type) {
  auto expr = std::make_unique<Expr>();
  expr->kind = ExprKind::kColumnRef;
  expr->slot = slot;
  expr->type = type;
  return expr;
}

ExprPtr MakeLiteral(ColumnType type, int64_t payload) {
  auto expr = std::make_unique<Expr>();
  expr->kind = ExprKind::kLiteral;
  expr->type = type;
  expr->literal = payload;
  return expr;
}

bool IsComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

ColumnType BinaryResultType(BinOp op, ColumnType left, ColumnType right) {
  if (IsComparison(op) || op == BinOp::kAnd || op == BinOp::kOr) {
    return ColumnType::kBool;
  }
  // Arithmetic: types must agree, except int64 combines with decimal to decimal and with double
  // to double.
  auto promote = [&](ColumnType a, ColumnType b) -> ColumnType {
    if (a == b) {
      return a;
    }
    if ((a == ColumnType::kInt64 && b == ColumnType::kDecimal) ||
        (a == ColumnType::kDecimal && b == ColumnType::kInt64)) {
      return ColumnType::kDecimal;
    }
    if ((a == ColumnType::kInt64 && b == ColumnType::kDouble) ||
        (a == ColumnType::kDouble && b == ColumnType::kInt64)) {
      return ColumnType::kDouble;
    }
    if ((a == ColumnType::kDate && b == ColumnType::kInt64) ||
        (a == ColumnType::kInt64 && b == ColumnType::kDate)) {
      return ColumnType::kDate;  // Date +/- days.
    }
    throw Error(std::string("type mismatch in arithmetic: ") + ColumnTypeName(a) + " vs " +
                ColumnTypeName(b));
  };
  return promote(left, right);
}

ExprPtr MakeBinary(BinOp op, ExprPtr left, ExprPtr right) {
  DFP_CHECK(left != nullptr && right != nullptr);
  auto expr = std::make_unique<Expr>();
  expr->kind = ExprKind::kBinary;
  expr->bin = op;
  expr->type = BinaryResultType(op, left->type, right->type);
  expr->left = std::move(left);
  expr->right = std::move(right);
  return expr;
}

ExprPtr MakeUnary(UnOp op, ExprPtr input) {
  auto expr = std::make_unique<Expr>();
  expr->kind = ExprKind::kUnary;
  expr->un = op;
  expr->type = op == UnOp::kNot ? ColumnType::kBool : input->type;
  expr->left = std::move(input);
  return expr;
}

ExprPtr MakeAggregate(AggOp op, ExprPtr input) {
  auto expr = std::make_unique<Expr>();
  expr->kind = ExprKind::kAggregate;
  expr->agg = op;
  switch (op) {
    case AggOp::kCount:
    case AggOp::kCountStar:
      expr->type = ColumnType::kInt64;
      break;
    case AggOp::kAvg:
      expr->type = ColumnType::kDouble;
      break;
    default:
      DFP_CHECK(input != nullptr);
      expr->type = input->type;
      break;
  }
  expr->left = std::move(input);
  return expr;
}

ExprPtr MakeLike(ExprPtr input, std::string pattern) {
  DFP_CHECK(input->type == ColumnType::kString);
  auto expr = std::make_unique<Expr>();
  expr->kind = ExprKind::kLike;
  expr->type = ColumnType::kBool;
  expr->left = std::move(input);
  expr->pattern = std::move(pattern);
  return expr;
}

ExprPtr MakeInList(ExprPtr input, std::vector<int64_t> candidates) {
  auto expr = std::make_unique<Expr>();
  expr->kind = ExprKind::kInList;
  expr->type = ColumnType::kBool;
  expr->left = std::move(input);
  expr->list = std::move(candidates);
  return expr;
}

ExprPtr MakeCase(std::vector<std::pair<ExprPtr, ExprPtr>> whens, ExprPtr else_value) {
  DFP_CHECK(!whens.empty() && else_value != nullptr);
  auto expr = std::make_unique<Expr>();
  expr->kind = ExprKind::kCase;
  expr->type = whens.front().second->type;
  expr->whens = std::move(whens);
  expr->else_value = std::move(else_value);
  return expr;
}

ExprPtr MakeCast(ExprPtr input, ColumnType target) {
  auto expr = std::make_unique<Expr>();
  expr->kind = ExprKind::kCast;
  expr->type = target;
  expr->left = std::move(input);
  return expr;
}

ExprPtr MakeExtractYear(ExprPtr date_input) {
  DFP_CHECK(date_input->type == ColumnType::kDate);
  auto expr = std::make_unique<Expr>();
  expr->kind = ExprKind::kExtractYear;
  expr->type = ColumnType::kInt64;
  expr->left = std::move(date_input);
  return expr;
}

void ForEachSlot(const Expr& expr, const std::function<void(int)>& fn) {
  if (expr.kind == ExprKind::kColumnRef) {
    fn(expr.slot);
  }
  if (expr.left != nullptr) {
    ForEachSlot(*expr.left, fn);
  }
  if (expr.right != nullptr) {
    ForEachSlot(*expr.right, fn);
  }
  if (expr.else_value != nullptr) {
    ForEachSlot(*expr.else_value, fn);
  }
  for (const auto& [cond, value] : expr.whens) {
    ForEachSlot(*cond, fn);
    ForEachSlot(*value, fn);
  }
}

void RemapSlots(Expr& expr, const std::vector<int>& mapping) {
  if (expr.kind == ExprKind::kColumnRef) {
    DFP_CHECK(expr.slot >= 0 && static_cast<size_t>(expr.slot) < mapping.size());
    expr.slot = mapping[static_cast<size_t>(expr.slot)];
    DFP_CHECK(expr.slot >= 0);
  }
  if (expr.left != nullptr) {
    RemapSlots(*expr.left, mapping);
  }
  if (expr.right != nullptr) {
    RemapSlots(*expr.right, mapping);
  }
  if (expr.else_value != nullptr) {
    RemapSlots(*expr.else_value, mapping);
  }
  for (auto& [cond, value] : expr.whens) {
    RemapSlots(*cond, mapping);
    RemapSlots(*value, mapping);
  }
}

namespace {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kRem:
      return "%";
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "<>";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAnd:
      return "and";
    case BinOp::kOr:
      return "or";
  }
  return "?";
}

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kSum:
      return "sum";
    case AggOp::kCount:
      return "count";
    case AggOp::kMin:
      return "min";
    case AggOp::kMax:
      return "max";
    case AggOp::kAvg:
      return "avg";
    case AggOp::kCountStar:
      return "count(*)";
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumnRef:
      return StrFormat("#%d", slot);
    case ExprKind::kLiteral:
      switch (type) {
        case ColumnType::kDecimal:
          return DecimalToString(literal);
        case ColumnType::kDate:
          return DateToString(static_cast<int32_t>(literal));
        case ColumnType::kDouble:
          return StrFormat("%g", std::bit_cast<double>(literal));
        case ColumnType::kString:
          return "'str'";
        default:
          return StrFormat("%lld", static_cast<long long>(literal));
      }
    case ExprKind::kBinary:
      return "(" + left->ToString() + " " + BinOpName(bin) + " " + right->ToString() + ")";
    case ExprKind::kUnary:
      return un == UnOp::kNot ? "not " + left->ToString() : "-" + left->ToString();
    case ExprKind::kAggregate:
      if (agg == AggOp::kCountStar) {
        return "count(*)";
      }
      return std::string(AggOpName(agg)) + "(" + left->ToString() + ")";
    case ExprKind::kCase:
      return "case(...)";
    case ExprKind::kLike:
      return left->ToString() + " like '" + pattern + "'";
    case ExprKind::kInList:
      return left->ToString() + " in (...)";
    case ExprKind::kCast:
      return StrFormat("cast(%s as %s)", left->ToString().c_str(), ColumnTypeName(type));
    case ExprKind::kExtractYear:
      return "year(" + left->ToString() + ")";
  }
  return "?";
}

}  // namespace dfp
