// Cardinality-driven plan rewriting for closed-loop re-optimization.
//
// The service measures per-operator output rows (tuple counters surfaced through the windowed
// fleet profile) and, when the measurements contradict the estimates that picked a plan's join
// order, re-runs the ordering decision here with the observed cardinalities injected as the
// estimates. The rewrite is purely structural: the candidate must return bit-identical results
// to the original, so any column motion introduced by reordering payload-carrying joins is
// tracked as a slot permutation and undone by a projecting Map under the ResultSink.
#ifndef DFP_SRC_PLAN_REWRITE_H_
#define DFP_SRC_PLAN_REWRITE_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/plan/physical.h"

namespace dfp {

// Row counts keyed by OperatorId. std::map keeps iteration deterministic, which matters because
// rewrite decisions feed compiled code and must replay byte-for-byte.
using CardinalityMap = std::map<OperatorId, uint64_t>;

// Plan-time cardinality estimates by operator id (from PhysicalOp::estimated_rows, falling back
// to bound_rows for unfinalized estimates).
CardinalityMap EstimatedCardinalities(const PhysicalOp& root);

// Overwrites estimated_rows with observed row counts by operator id. Zero observations are
// clamped to one so a later FinalizePlan does not silently re-derive them from bounds.
void InjectCardinalities(PhysicalOp& root, const CardinalityMap& observed);

struct ReoptRewriteOptions {
  // Sort spine joins by DESCENDING observed build rows: deliberately the worst order. Fault
  // injection so tests and the bench can force the guard's revert path.
  bool pessimize = false;
  // Enable the semi-join-reduction insertion (gated on measured build-side blowup).
  bool semi_join_reduction = false;
  // Insert the reduction when observed build rows >= blowup_pct/100 x the plan-time estimate.
  uint64_t semi_join_blowup_pct = 300;
};

struct ReoptRewrite {
  PhysicalOpPtr plan;       // Finalized candidate; null when nothing changed.
  bool changed = false;
  bool reordered = false;   // Join order differs from the original.
  bool semi_join = false;   // A semi-join reduction was inserted.
  std::string description;  // One-line summary for events and timelines.
};

// Re-runs the physical planning decisions that depend on cardinalities, with `observed` injected
// as the estimates. The topmost hash-join spine (a chain of HashJoins linked through their probe
// children, all keyed on the base probe stream) is reordered by ascending observed build-side
// rows — the binder's greedy smallest-build-lowest rule, re-evaluated on measurements. With
// semi_join_reduction enabled, the spine join whose measured build side blew up the most past
// the gate is duplicated as a semi-join filter directly above the base stream, so non-matching
// rows die before the lower joins touch them. Returns changed=false when the measured order
// already matches the plan or no legal spine exists.
ReoptRewrite ReoptimizePlan(const PhysicalOp& original, const CardinalityMap& observed,
                            const ReoptRewriteOptions& options = {});

}  // namespace dfp

#endif  // DFP_SRC_PLAN_REWRITE_H_
