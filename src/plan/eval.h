// Host-side expression evaluation — the semantics reference shared with the code generator.
//
// Used by the Volcano interpreter (correctness oracle) and by tests. Must agree exactly with the
// VIR the engine generates: decimal rescaling, truncating integer division, date-as-days
// arithmetic, interned-string equality, short-circuit AND/OR, byte-wise string ordering.
#ifndef DFP_SRC_PLAN_EVAL_H_
#define DFP_SRC_PLAN_EVAL_H_

#include <cstdint>
#include <span>

#include "src/plan/expr.h"
#include "src/storage/stringheap.h"

namespace dfp {

struct EvalContext {
  std::span<const int64_t> tuple;    // Slot payloads.
  const StringHeap* strings = nullptr;  // Needed for LIKE and string ordering.
};

// Evaluates a scalar (non-aggregate) expression to its register payload.
int64_t EvalScalar(const Expr& expr, const EvalContext& ctx);

}  // namespace dfp

#endif  // DFP_SRC_PLAN_EVAL_H_
