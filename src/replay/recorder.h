// TraceRecorder: the capture half of fleet record/replay.
//
// Attached to a fresh QueryService (QueryService::AttachRecorder), the recorder observes every
// submission, completion, and Drain() boundary and accumulates a WorkloadTrace: plan templates
// on first sight of a structural fingerprint, per-query literal bindings and arrival clocks,
// and per-completion metrics including an FNV-1a hash of the serialized sample stream.
// Finish() seals the trace with the fleet-level summary (throughput, cache stats, tier
// timeline, per-fingerprint latency quantiles and hottest operators) that a ReplayReport diffs
// against.
//
// Determinism contract: the service must be fresh (zero service clock, no prior tickets) when
// the recorder attaches — the service is a pure function of (config, submission sequence), so
// a trace replayed from sequence start against an equally fresh service reproduces every
// observation bit for bit. Attaching to a warmed-up service throws.
#ifndef DFP_SRC_REPLAY_RECORDER_H_
#define DFP_SRC_REPLAY_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/replay/trace.h"

namespace dfp {

class TraceRecorder {
 public:
  // When set (before recording), the raw serialized sample stream of every profiled completion
  // is retained alongside its hash — the differential tests diff these byte for byte.
  void set_keep_streams(bool keep) { keep_streams_ = keep; }

  // Hooks, invoked by QueryService (AttachRecorder / Submit / Drain / StepSession).
  void OnAttach(const ServiceConfig& config, uint64_t catalog_version, uint64_t now_cycles);
  void OnSubmit(const QueryTicket& ticket, const PhysicalOp& plan, uint64_t arrival_cycles);
  void OnDrain(uint32_t submissions_so_far);
  void OnCompletion(const QueryTicket& ticket);

  // Seals the trace with the fleet summary taken from `service` (the one recorded against,
  // after its final Drain). Returns the finished trace; `trace()` keeps exposing it.
  const WorkloadTrace& Finish(const QueryService& service);

  const WorkloadTrace& trace() const { return trace_; }
  // Per-query serialized sample streams (index = seq - 1; empty string when the execution was
  // unprofiled or keep_streams was off).
  const std::vector<std::string>& streams() const { return streams_; }

 private:
  WorkloadTrace trace_;
  std::vector<std::string> streams_;
  bool attached_ = false;
  bool keep_streams_ = false;
};

}  // namespace dfp

#endif  // DFP_SRC_REPLAY_RECORDER_H_
