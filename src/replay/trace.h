// Deterministic workload traces: the recorded half of fleet record/replay.
//
// A WorkloadTrace captures everything needed to re-run admitted traffic bit-for-bit against a
// fresh QueryService — and everything needed to diff the re-run against what was observed the
// first time:
//
//  - the service knobs the traffic ran under (scheduler, session limits, sampling, tiering...),
//    so a replay reconstructs the same configuration and a what-if run overrides parts of it;
//  - one serialized plan template per structural fingerprint (src/replay/plan_codec.h), plus
//    per-query literal bindings, so every submission can be rebuilt without the SQL front end;
//  - the submission schedule: per query its arrival service-clock TSC, session weight, deadline,
//    and admission outcome, with Drain() boundaries preserved as explicit markers (the scheduler
//    admits inside Drain, so batch boundaries are part of the workload, not an artifact);
//  - the recorded observations: per-query completion metrics including an FNV-1a hash of the
//    serialized sample stream, and a fleet summary (throughput, per-fingerprint latency
//    quantiles, hottest operators, tier timeline totals) that the ReplayReport diffs against.
//
// The text format is versioned like the sample streams (v1 today); readers reject future
// versions instead of guessing. Serialization is a fixed point: parse(write(trace)) == trace
// and write(parse(text)) == text, which the compat tests pin down.
#ifndef DFP_SRC_REPLAY_TRACE_H_
#define DFP_SRC_REPLAY_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/engine/parallel.h"
#include "src/pmu/event.h"
#include "src/service/fingerprint.h"
#include "src/service/plan_cache.h"
#include "src/service/query_service.h"
#include "src/tiering/literals.h"
#include "src/tiering/report.h"

namespace dfp {

// FNV-1a 64-bit over a byte string — the stream-identity hash stored per recorded query.
uint64_t Fnv1a64(const std::string& bytes);

// The service configuration a trace was recorded under, flattened to value types so it
// round-trips through text. ApplyKnobs rebuilds a ServiceConfig; CaptureKnobs flattens one.
// Regression thresholds and the state_path are deliberately not captured: neither influences
// execution, and replay always starts from a fresh service (see TraceRecorder).
struct TraceKnobs {
  // Parallel pool.
  uint32_t workers = 4;
  uint64_t morsel_rows = 0;
  uint8_t scheduler = static_cast<uint8_t>(SchedulerPolicy::kWorkStealing);
  uint32_t numa_nodes = 0;
  // Admission.
  uint32_t max_active_sessions = 2;
  uint32_t queue_depth = 16;
  uint64_t default_deadline_cycles = 0;
  // Plan cache and session arenas.
  uint64_t code_budget_bytes = 1ull << 20;
  uint64_t session_hashtables_bytes = 48ull << 20;
  uint64_t session_state_bytes = 512ull * 1024;
  uint64_t session_output_bytes = 24ull << 20;
  // Profiling.
  bool profile_executions = true;
  uint8_t pmu_event = 0;
  uint64_t sampling_period = 5000;
  bool capture_address = false;
  uint8_t attribution = 0;
  bool tag_all_instructions = false;
  bool enable_sampling = true;
  bool packed_tags = false;
  // Compile cost model.
  CompileCostModel compile_costs;
  // Continuous profiling.
  bool windows_enabled = true;
  uint64_t window_width_cycles = 20'000'000;
  uint64_t ring_windows = 8;
  bool governor_enabled = false;
  double governor_budget = 0.02;
  uint64_t governor_min_period = 500;
  uint64_t governor_max_period = 5'000'000;
  double governor_smoothing = 0.7;
  // Tiering.
  bool tiering_enabled = false;
  double break_even_ratio = 1.0;
  uint64_t min_executions = 2;
  // Profile-feedback scheduling (trace v2). The `sched` knob line is written only when some
  // field differs from these defaults, so traces of services that never enabled the loop stay
  // byte-identical v1 files.
  bool slack_scheduling = false;
  bool placement_repair = false;
  bool deadline_admission = false;
  uint64_t slack_max_age = 64;
  bool repair_pessimize = false;
  // Closed-loop re-optimization (trace v3), captured in full — including the guard thresholds,
  // since a replayed keep/revert verdict must judge by the recorded bar. The `reopt` knob line
  // is written only when some field differs from these defaults.
  bool reopt_enabled = false;
  uint64_t reopt_divergence_pct = 400;
  uint64_t reopt_min_executions = 3;
  bool reopt_semi_join_reduction = false;
  uint64_t reopt_semi_join_blowup_pct = 300;
  bool reopt_pessimize = false;
  RegressionThresholds reopt_guard = ReoptGuardThresholds();

  bool operator==(const TraceKnobs& other) const;
};

TraceKnobs CaptureKnobs(const ServiceConfig& config);
ServiceConfig ApplyKnobs(const TraceKnobs& knobs);

enum class TraceOutcome : uint8_t {
  kAdmitted = 0,  // Entered the queue (and, the queue being drained, eventually ran).
  kRejected = 1,  // Bounced at submission: queue full.
};

// One recorded submission plus its observed completion.
struct TraceQuery {
  uint32_t seq = 0;  // 1-based submission index (== TicketId in the recording service).
  std::string name;
  PlanFingerprint fingerprint;
  uint64_t arrival_cycles = 0;  // Service clock at submission.
  uint32_t weight = 1;
  uint64_t deadline_cycles = 0;
  TraceOutcome outcome = TraceOutcome::kAdmitted;
  std::vector<LiteralBinding> literals;  // Full binding vector in fingerprint walk order.

  // Observed completion (valid when `completed`; rejected queries never complete).
  bool completed = false;
  uint8_t status = 0;  // TicketStatus of the finished ticket (kDone or kTimedOut).
  bool cache_hit = false;
  uint8_t tier = 0;  // PlanTier the executed code was compiled at.
  uint64_t patched_sites = 0;
  uint64_t compile_cycles = 0;
  uint64_t execute_cycles = 0;
  uint64_t completed_at_cycles = 0;
  uint64_t result_rows = 0;
  uint64_t samples = 0;
  uint64_t stream_hash = 0;  // FNV-1a of the WriteSamples() text; 0 when unprofiled.
};

// One plan family's recorded aggregate, diffed per fingerprint by the ReplayReport.
struct TraceFingerprintSummary {
  uint64_t structure = 0;
  std::string name;
  uint64_t executions = 0;
  uint64_t execute_cycles = 0;
  uint64_t latency_p50 = 0;  // Window-rollup quantiles (simulated cycles).
  uint64_t latency_p95 = 0;
  uint64_t latency_max = 0;
  std::string top_operator;  // Label of the hottest operator by cumulative samples.
  uint64_t top_operator_samples = 0;
};

// Fleet-level observations of the recorded run.
struct TraceSummary {
  uint64_t queries = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  uint64_t timed_out = 0;
  uint64_t service_cycles = 0;  // ServiceNowCycles() after the last drain.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t patched_hits = 0;
  uint64_t tier_swaps = 0;
  uint64_t samples = 0;
  uint64_t stream_hash = 0;  // FNV chain over per-query stream hashes in seq order.
  TierTimelineTotals tiers;
  std::vector<TraceFingerprintSummary> fingerprints;  // Ascending by structure.
};

// One plan template: the first-seen finalized plan of a structural fingerprint, serialized.
struct PlanTemplate {
  uint64_t structure = 0;
  std::string name;
  std::string plan_text;  // src/replay/plan_codec block (ends with "endplan\n").
};

// The recorded event schedule. Query events reference `WorkloadTrace::queries` by seq; drain
// events mark where the recording client called QueryService::Drain().
struct TraceEvent {
  enum class Kind : uint8_t { kQuery, kDone, kDrain };
  Kind kind = Kind::kQuery;
  uint32_t seq = 0;  // Query/done: submission index. Drain: submissions seen so far.
};

struct WorkloadTrace {
  uint64_t catalog_version = 0;
  uint64_t start_cycles = 0;  // Service clock when recording began (0 for a fresh service).
  TraceKnobs knobs;
  std::vector<PlanTemplate> templates;  // Ascending by structure (first-seen plan each).
  std::vector<TraceQuery> queries;      // Submission order; queries[i].seq == i + 1.
  std::vector<TraceEvent> events;       // Chronological submit/complete/drain schedule.
  TraceSummary summary;

  const TraceQuery& query(uint32_t seq) const { return queries[seq - 1]; }
  const PlanTemplate* FindTemplate(uint64_t structure) const;
};

// Line-oriented text format (see DESIGN.md §2f for the grammar):
//   # dfp trace v1|v2|v3
//   catalog <version>
//   start <cycles>
//   knobs <flattened TraceKnobs fields, doubles as IEEE-754 bit patterns>
//   costs <nine CompileCostModel fields>
//   sched <slack-scheduling> <placement-repair> <deadline-admission> <slack-max-age>
//         <repair-pessimize>                                   (v2; only when non-default)
//   reopt <enabled> <divergence-pct> <min-executions> <semi-join> <blowup-pct> <pessimize>
//         <five guard doubles as IEEE-754 bit patterns> <guard-min-samples>
//                                                              (v3; only when non-default)
//   template <structure-hex> <name-token>
//   <plan codec block ... endplan>
//   query <seq> <name-token> <structure-hex> <literals-hex> <pinned-hex> <arrival> <weight>
//         <deadline> <admitted|rejected> <nbindings> (V <value> | P <pattern-token> | M <limit>)*
//   done <seq> <status> <hit> <tier> <patched> <compile> <execute> <completed> <rows> <samples>
//        <streamhash-hex>
//   drain <submissions-so-far>
//   summary <totals...>
//   tiers <samples> <baseline> <optimized> <transitions> <swapped>
//   fp <structure-hex> <execs> <cycles> <p50> <p95> <max> <topsamples> <top-token> <name-token>
//   end
// Versioning is content-driven: the writer emits v3 only when the reopt knob line is present
// and v2 only when the sched knob line is, so older traces stay byte-identical v1/v2 files.
// Readers reject versions above v3 ("written by a newer build" — no forward guessing) and
// throw dfp::Error on truncation or malformed lines.
void WriteTrace(const WorkloadTrace& trace, std::ostream& out);
std::string EncodeTraceText(const WorkloadTrace& trace);

// Inverse of WriteTrace. `db` resolves the plan templates' table references (pass the catalog
// the trace was recorded against — the replayer separately enforces the catalog version).
WorkloadTrace ReadTrace(std::istream& in);

}  // namespace dfp

#endif  // DFP_SRC_REPLAY_TRACE_H_
