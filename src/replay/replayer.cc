#include "src/replay/replayer.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "src/critpath/report.h"
#include "src/replay/plan_codec.h"
#include "src/replay/recorder.h"
#include "src/service/service_profile.h"
#include "src/shard/coordinator.h"
#include "src/tiering/report.h"
#include "src/util/check.h"
#include "src/util/str.h"

namespace dfp {
namespace {

// Clears every default-derived cardinality estimate so FinalizePlan re-derives it from the
// recomputed row bounds: after re-binding literals — which can change a LIMIT and therefore
// the bounds — this reproduces exactly the estimates a freshly built plan would carry.
// Estimates that differ from the operator's bound were set by hand (the SQL binder's join
// ordering, a test's scenario) and were serialized bit-exactly by the plan codec; those must
// survive, because re-finalizing resets only zeroes (FinalizePlan fills estimated_rows only
// when it is 0) and morsel sizing (ResolveMorselRows) reads the estimate the recording ran
// with. Zeroing unconditionally would silently diverge the execution schedule of any template
// whose recorded plan carried non-default estimates.
void ResetEstimates(PhysicalOp& op) {
  if (op.estimated_rows == static_cast<double>(op.bound_rows)) {
    op.estimated_rows = 0;
  }
  for (auto& child : op.children) {
    ResetEstimates(*child);
  }
}

void AppendJsonString(const std::string& text, std::ostream& out) {
  out << '"';
  for (unsigned char c : text) {
    if (c == '"' || c == '\\') {
      out << '\\' << static_cast<char>(c);
    } else if (c < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out << buffer;
    } else {
      out << static_cast<char>(c);
    }
  }
  out << '"';
}

bool TiersEqual(const TierTimelineTotals& a, const TierTimelineTotals& b) {
  return a.samples == b.samples && a.baseline_samples == b.baseline_samples &&
         a.optimized_samples == b.optimized_samples && a.transitions == b.transitions &&
         a.swapped == b.swapped;
}

bool QueryDiverged(const TraceQuery& a, const TraceQuery& b) {
  return a.name != b.name || a.fingerprint.structure != b.fingerprint.structure ||
         a.fingerprint.literals != b.fingerprint.literals ||
         a.fingerprint.pinned != b.fingerprint.pinned || a.arrival_cycles != b.arrival_cycles ||
         a.weight != b.weight || a.deadline_cycles != b.deadline_cycles ||
         a.outcome != b.outcome || a.completed != b.completed || a.status != b.status ||
         a.cache_hit != b.cache_hit || a.tier != b.tier || a.patched_sites != b.patched_sites ||
         a.compile_cycles != b.compile_cycles || a.execute_cycles != b.execute_cycles ||
         a.completed_at_cycles != b.completed_at_cycles || a.result_rows != b.result_rows ||
         a.samples != b.samples || a.stream_hash != b.stream_hash;
}

// Shard-count what-if: the recorded traffic re-runs against an N-shard ShardedService. The
// coordinator owns the sub-tickets (one per shard for fan-out queries), so there is no single
// TraceRecorder to capture the run; the replayed trace is assembled by hand — the submission
// half copied from the recording, the completion half observed from coordinator tickets.
// Streams and samples are deliberately left zero (a sharded run's streams are v7 and cannot
// match the recording byte-wise anyway); the gate for this what-if is results_diverged == 0.
ReplayRun ReplayTraceSharded(ShardCatalog& catalog, const WorkloadTrace& trace,
                             const ReplayOptions& options) {
  if (catalog.shards() != options.knobs.shard_count) {
    throw Error("shard-count what-if: ShardCatalog size does not match knobs.shard_count");
  }
  if (catalog.catalog_version() != trace.catalog_version) {
    throw Error(StrFormat("replay catalog mismatch: trace recorded at catalog version %llu, "
                          "shard catalog is at %llu",
                          static_cast<unsigned long long>(trace.catalog_version),
                          static_cast<unsigned long long>(catalog.catalog_version())));
  }
  const uint32_t multiplier = std::max<uint32_t>(1, options.knobs.session_multiplier);

  // Parse every plan template once per shard, template-major: every shard heap interns the
  // same literal strings in the same order, preserving the cross-shard reference alignment
  // (src/shard/partition.h).
  std::map<uint64_t, std::vector<PhysicalOpPtr>> templates;
  for (const PlanTemplate& entry : trace.templates) {
    std::vector<PhysicalOpPtr>& per_shard = templates[entry.structure];
    for (uint32_t s = 0; s < catalog.shards(); ++s) {
      per_shard.push_back(ParsePlanText(entry.plan_text, catalog.db(s)));
    }
  }

  ShardServiceConfig config;
  config.service = ReplayServiceConfig(trace, options.knobs);
  config.service.state_path.clear();
  config.merge_sampling = DefaultMergeSampling();
  ShardedService service(catalog, config);

  std::vector<uint32_t> submitted_seq;  // Recorded seq of each coordinator ticket, in order.
  for (const TraceEvent& event : trace.events) {
    switch (event.kind) {
      case TraceEvent::Kind::kQuery: {
        const TraceQuery& q = trace.query(event.seq);
        auto it = templates.find(q.fingerprint.structure);
        if (it == templates.end()) {
          throw Error("trace query " + std::to_string(q.seq) +
                      " references a structure with no plan template");
        }
        for (uint32_t copy = 0; copy < multiplier; ++copy) {
          std::vector<PhysicalOpPtr> plans;
          plans.reserve(catalog.shards());
          for (uint32_t s = 0; s < catalog.shards(); ++s) {
            PhysicalOpPtr plan = ClonePlan(*it->second[s]);
            BindLiterals(*plan, q.literals);
            ResetEstimates(*plan);
            FinalizePlan(*plan);
            plans.push_back(std::move(plan));
          }
          const PlanFingerprint rebuilt = FingerprintPlan(*plans[0], catalog.catalog_version());
          if (rebuilt.structure != q.fingerprint.structure ||
              rebuilt.literals != q.fingerprint.literals ||
              rebuilt.pinned != q.fingerprint.pinned) {
            throw Error("replayed plan fingerprint mismatch for trace query " +
                        std::to_string(q.seq) + " (" + q.name +
                        "): corrupt trace or incompatible build");
          }
          service.SubmitPlans(q.name, std::move(plans), q.deadline_cycles, q.weight);
          submitted_seq.push_back(q.seq);
        }
        break;
      }
      case TraceEvent::Kind::kDone:
        break;
      case TraceEvent::Kind::kDrain:
        service.Drain();
        break;
    }
  }
  service.Drain();  // Idempotent; resolves anything a truncated trace left pending.

  ReplayRun run;
  run.trace.catalog_version = trace.catalog_version;
  run.trace.start_cycles = 0;
  run.trace.knobs = CaptureKnobs(config.service);
  for (TicketId id = 1; id <= service.ticket_count(); ++id) {
    const ShardTicket& ticket = service.ticket(id);
    const TraceQuery& recorded = trace.query(submitted_seq[id - 1]);
    TraceQuery replayed;
    replayed.seq = id;
    replayed.name = recorded.name;
    replayed.fingerprint = recorded.fingerprint;
    replayed.arrival_cycles = recorded.arrival_cycles;
    replayed.weight = recorded.weight;
    replayed.deadline_cycles = recorded.deadline_cycles;
    replayed.outcome = ticket.status == TicketStatus::kRejected ? TraceOutcome::kRejected
                                                                : TraceOutcome::kAdmitted;
    replayed.literals = recorded.literals;
    replayed.completed =
        ticket.status == TicketStatus::kDone || ticket.status == TicketStatus::kTimedOut;
    replayed.status = static_cast<uint8_t>(ticket.status);
    replayed.compile_cycles = ticket.compile_cycles;
    replayed.execute_cycles = ticket.execute_cycles;
    if (ticket.status == TicketStatus::kDone) {
      replayed.result_rows = ticket.result.row_count();
    }
    run.trace.queries.push_back(std::move(replayed));
    run.trace.events.push_back({TraceEvent::Kind::kQuery, id});
  }
  run.trace.events.push_back(
      {TraceEvent::Kind::kDrain, static_cast<uint32_t>(service.ticket_count())});

  TraceSummary& summary = run.trace.summary;
  summary.queries = service.ticket_count();
  uint64_t service_cycles = 0;
  for (uint32_t s = 0; s < service.shards(); ++s) {
    service_cycles = std::max(service_cycles, service.shard(s).ServiceNowCycles());
  }
  summary.service_cycles = service_cycles;
  for (const TraceQuery& q : run.trace.queries) {
    if (q.completed && q.status == static_cast<uint8_t>(TicketStatus::kDone)) {
      ++summary.completed;
    } else if (q.outcome == TraceOutcome::kRejected) {
      ++summary.rejected;
    } else if (q.status == static_cast<uint8_t>(TicketStatus::kTimedOut)) {
      ++summary.timed_out;
    }
  }

  run.service_profile_text = RenderFleetAggregate(service.AggregateFleet());
  return run;
}

}  // namespace

bool WhatIfKnobs::IsIdentity() const {
  return session_multiplier == 1 && scheduler == -1 && max_active_sessions == 0 &&
         queue_depth == 0 && workers == 0 && tiering_enabled == -1 && break_even_ratio == 0 &&
         code_budget_bytes == 0 && governor_enabled == -1 && governor_budget == 0 &&
         slack_scheduling == -1 && reopt == -1 && shard_count == 0;
}

ServiceConfig ReplayServiceConfig(const WorkloadTrace& trace, const WhatIfKnobs& knobs) {
  ServiceConfig config = ApplyKnobs(trace.knobs);
  if (knobs.scheduler >= 0) {
    config.parallel.scheduler = static_cast<SchedulerPolicy>(knobs.scheduler);
  }
  if (knobs.max_active_sessions != 0) {
    config.max_active_sessions = knobs.max_active_sessions;
  }
  if (knobs.queue_depth != 0) {
    config.queue_depth = knobs.queue_depth;
  }
  if (knobs.workers != 0) {
    config.parallel.workers = knobs.workers;
  }
  if (knobs.tiering_enabled >= 0) {
    config.tiering.enabled = knobs.tiering_enabled != 0;
  }
  if (knobs.break_even_ratio != 0) {
    config.tiering.break_even_ratio = knobs.break_even_ratio;
  }
  if (knobs.code_budget_bytes != 0) {
    config.code_budget_bytes = knobs.code_budget_bytes;
  }
  if (knobs.governor_enabled >= 0) {
    config.continuous.governor.enabled = knobs.governor_enabled != 0;
  }
  if (knobs.governor_budget != 0) {
    config.continuous.governor.overhead_budget = knobs.governor_budget;
  }
  if (knobs.slack_scheduling >= 0) {
    config.sched.slack_scheduling = knobs.slack_scheduling != 0;
  }
  if (knobs.reopt >= 0) {
    config.reopt.enabled = knobs.reopt != 0;
    if (config.reopt.enabled) {
      // Reopt candidates install through the parameterized cache; forcing the loop on against
      // a trace recorded without tiering forces tiering on too.
      config.tiering.enabled = true;
    }
  }
  return config;
}

ReplayRun ReplayTrace(Database& db, const WorkloadTrace& trace, const ReplayOptions& options) {
  if (options.knobs.shard_count > 0) {
    if (options.shards == nullptr) {
      throw Error("shard-count what-if requires ReplayOptions::shards");
    }
    return ReplayTraceSharded(*options.shards, trace, options);
  }
  if (db.catalog_version() != trace.catalog_version) {
    throw Error(StrFormat("replay catalog mismatch: trace recorded at catalog version %llu, "
                          "database is at %llu",
                          static_cast<unsigned long long>(trace.catalog_version),
                          static_cast<unsigned long long>(db.catalog_version())));
  }
  const uint32_t multiplier = std::max<uint32_t>(1, options.knobs.session_multiplier);

  // Parse every plan template once; clones are cut per submission.
  std::map<uint64_t, PhysicalOpPtr> templates;
  for (const PlanTemplate& entry : trace.templates) {
    templates.emplace(entry.structure, ParsePlanText(entry.plan_text, db));
  }

  QueryService service(db, ReplayServiceConfig(trace, options.knobs));
  TraceRecorder recorder;
  recorder.set_keep_streams(options.keep_streams);
  service.AttachRecorder(recorder);

  for (const TraceEvent& event : trace.events) {
    switch (event.kind) {
      case TraceEvent::Kind::kQuery: {
        const TraceQuery& q = trace.query(event.seq);
        auto it = templates.find(q.fingerprint.structure);
        if (it == templates.end()) {
          throw Error("trace query " + std::to_string(q.seq) +
                      " references a structure with no plan template");
        }
        for (uint32_t copy = 0; copy < multiplier; ++copy) {
          PhysicalOpPtr plan = ClonePlan(*it->second);
          BindLiterals(*plan, q.literals);
          ResetEstimates(*plan);
          FinalizePlan(*plan);
          const PlanFingerprint rebuilt = FingerprintPlan(*plan, db.catalog_version());
          if (rebuilt.structure != q.fingerprint.structure ||
              rebuilt.literals != q.fingerprint.literals ||
              rebuilt.pinned != q.fingerprint.pinned) {
            throw Error("replayed plan fingerprint mismatch for trace query " +
                        std::to_string(q.seq) + " (" + q.name +
                        "): corrupt trace or incompatible build");
          }
          service.Submit(std::move(plan), q.name, q.deadline_cycles, q.weight);
        }
        break;
      }
      case TraceEvent::Kind::kDone:
        break;  // Completions happen inside Drain; the recorder logs them afresh.
      case TraceEvent::Kind::kDrain:
        service.Drain();
        break;
    }
  }
  // A well-formed recording ends drained (its last event is the final Drain); only flush when
  // the trace left submissions pending, so the replayed event schedule stays byte-identical to
  // the recorded one on the zero-diff path.
  bool pending = false;
  for (TicketId id = 1; id <= service.ticket_count(); ++id) {
    const TicketStatus status = service.ticket(id).status;
    if (status == TicketStatus::kQueued || status == TicketStatus::kRunning) {
      pending = true;
      break;
    }
  }
  if (pending) {
    service.Drain();
  }

  recorder.Finish(service);
  ReplayRun run;
  run.trace = recorder.trace();
  std::ostringstream profile;
  WriteServiceProfile(service.fleet_profile(), service.windows(), profile);
  run.service_profile_text = profile.str();
  run.tier_timeline_text = RenderTierTimeline(service.windows(), service.tier_controller());
  if (options.keep_streams) {
    run.sample_streams = recorder.streams();
  }
  if (options.keep_dags) {
    for (TicketId id = 1; id <= service.ticket_count(); ++id) {
      const QueryTicket& ticket = service.ticket(id);
      if (ticket.status == TicketStatus::kDone) {
        run.dag_texts.push_back(SerializeAnalysis(ticket.dag, ticket.verdicts));
      }
    }
  }
  return run;
}

bool ReplayFingerprintDiff::identical() const {
  return recorded_executions == replayed_executions &&
         recorded_execute_cycles == replayed_execute_cycles && recorded_p50 == replayed_p50 &&
         recorded_p95 == replayed_p95 && recorded_max == replayed_max &&
         recorded_top_operator == replayed_top_operator &&
         recorded_top_samples == replayed_top_samples;
}

ReplayReport DiffTraces(const WorkloadTrace& recorded, const WorkloadTrace& replayed) {
  ReplayReport report;
  report.knobs_identical = recorded.knobs == replayed.knobs;
  const TraceSummary& a = recorded.summary;
  const TraceSummary& b = replayed.summary;
  report.recorded_queries = a.queries;
  report.replayed_queries = b.queries;
  report.recorded_completed = a.completed;
  report.replayed_completed = b.completed;
  report.recorded_rejected = a.rejected;
  report.replayed_rejected = b.rejected;
  report.recorded_timed_out = a.timed_out;
  report.replayed_timed_out = b.timed_out;
  report.recorded_cycles = a.service_cycles;
  report.replayed_cycles = b.service_cycles;
  report.recorded_samples = a.samples;
  report.replayed_samples = b.samples;
  report.recorded_cache_hits = a.cache_hits;
  report.replayed_cache_hits = b.cache_hits;
  report.recorded_patched_hits = a.patched_hits;
  report.replayed_patched_hits = b.patched_hits;
  report.recorded_tier_swaps = a.tier_swaps;
  report.replayed_tier_swaps = b.tier_swaps;
  report.streams_identical =
      a.queries == b.queries && a.stream_hash == b.stream_hash && a.samples == b.samples;
  if (recorded.queries.size() == replayed.queries.size()) {
    for (size_t i = 0; i < recorded.queries.size(); ++i) {
      if (QueryDiverged(recorded.queries[i], replayed.queries[i])) {
        ++report.queries_diverged;
        if (recorded.queries[i].result_rows != replayed.queries[i].result_rows) {
          ++report.results_diverged;
        }
      }
    }
  } else {
    report.queries_diverged = std::max(recorded.queries.size(), replayed.queries.size()) -
                              std::min(recorded.queries.size(), replayed.queries.size());
  }
  report.recorded_tiers = a.tiers;
  report.replayed_tiers = b.tiers;
  report.tiers_identical = TiersEqual(a.tiers, b.tiers);

  // Merge the two per-fingerprint summary lists (each ascending by structure).
  size_t i = 0;
  size_t j = 0;
  while (i < a.fingerprints.size() || j < b.fingerprints.size()) {
    ReplayFingerprintDiff diff;
    const bool take_a =
        j >= b.fingerprints.size() ||
        (i < a.fingerprints.size() && a.fingerprints[i].structure <= b.fingerprints[j].structure);
    const bool take_b =
        i >= a.fingerprints.size() ||
        (j < b.fingerprints.size() && b.fingerprints[j].structure <= a.fingerprints[i].structure);
    if (take_a) {
      const TraceFingerprintSummary& fp = a.fingerprints[i++];
      diff.structure = fp.structure;
      diff.name = fp.name;
      diff.recorded_executions = fp.executions;
      diff.recorded_execute_cycles = fp.execute_cycles;
      diff.recorded_p50 = fp.latency_p50;
      diff.recorded_p95 = fp.latency_p95;
      diff.recorded_max = fp.latency_max;
      diff.recorded_top_operator = fp.top_operator;
      diff.recorded_top_samples = fp.top_operator_samples;
    }
    if (take_b) {
      const TraceFingerprintSummary& fp = b.fingerprints[j++];
      diff.structure = fp.structure;
      diff.name = fp.name;
      diff.replayed_executions = fp.executions;
      diff.replayed_execute_cycles = fp.execute_cycles;
      diff.replayed_p50 = fp.latency_p50;
      diff.replayed_p95 = fp.latency_p95;
      diff.replayed_max = fp.latency_max;
      diff.replayed_top_operator = fp.top_operator;
      diff.replayed_top_samples = fp.top_operator_samples;
    }
    report.fingerprints.push_back(std::move(diff));
  }

  bool fingerprints_identical = a.fingerprints.size() == b.fingerprints.size();
  for (const ReplayFingerprintDiff& diff : report.fingerprints) {
    fingerprints_identical = fingerprints_identical && diff.identical();
  }
  report.identical = report.knobs_identical && a.queries == b.queries &&
                     a.completed == b.completed && a.rejected == b.rejected &&
                     a.timed_out == b.timed_out && a.service_cycles == b.service_cycles &&
                     a.cache_hits == b.cache_hits && a.cache_misses == b.cache_misses &&
                     a.patched_hits == b.patched_hits && a.tier_swaps == b.tier_swaps &&
                     report.streams_identical && report.queries_diverged == 0 &&
                     report.tiers_identical && fingerprints_identical;
  return report;
}

std::string RenderReplayReport(const ReplayReport& report) {
  std::ostringstream out;
  out << "replay report: " << (report.identical ? "IDENTICAL" : "DIVERGED")
      << (report.knobs_identical ? "" : " (what-if knobs active)") << "\n";
  auto row = [&out](const char* label, uint64_t recorded, uint64_t replayed) {
    out << StrFormat("  %-16s %12llu -> %12llu%s\n", label,
                     static_cast<unsigned long long>(recorded),
                     static_cast<unsigned long long>(replayed),
                     recorded == replayed ? "" : "  *");
  };
  row("queries", report.recorded_queries, report.replayed_queries);
  row("completed", report.recorded_completed, report.replayed_completed);
  row("rejected", report.recorded_rejected, report.replayed_rejected);
  row("timed out", report.recorded_timed_out, report.replayed_timed_out);
  row("service cycles", report.recorded_cycles, report.replayed_cycles);
  row("samples", report.recorded_samples, report.replayed_samples);
  row("cache hits", report.recorded_cache_hits, report.replayed_cache_hits);
  row("patched hits", report.recorded_patched_hits, report.replayed_patched_hits);
  row("tier swaps", report.recorded_tier_swaps, report.replayed_tier_swaps);
  out << "  streams " << (report.streams_identical ? "identical" : "DIVERGED") << ", "
      << report.queries_diverged << " queries diverged (" << report.results_diverged
      << " result rows), tier timeline "
      << (report.tiers_identical ? "identical" : "DIVERGED") << "\n";
  for (const ReplayFingerprintDiff& fp : report.fingerprints) {
    out << StrFormat("  fp %016llx %-10s execs %llu->%llu p50 %llu->%llu p95 %llu->%llu top %s",
                     static_cast<unsigned long long>(fp.structure), fp.name.c_str(),
                     static_cast<unsigned long long>(fp.recorded_executions),
                     static_cast<unsigned long long>(fp.replayed_executions),
                     static_cast<unsigned long long>(fp.recorded_p50),
                     static_cast<unsigned long long>(fp.replayed_p50),
                     static_cast<unsigned long long>(fp.recorded_p95),
                     static_cast<unsigned long long>(fp.replayed_p95),
                     fp.recorded_top_operator.c_str());
    if (fp.replayed_top_operator != fp.recorded_top_operator) {
      out << "->" << fp.replayed_top_operator;
    }
    out << (fp.identical() ? "" : "  *") << "\n";
  }
  return out.str();
}

void WriteReplayReportJson(const ReplayReport& report, std::ostream& out) {
  out << "{\n";
  out << "  \"identical\": " << (report.identical ? "true" : "false") << ",\n";
  out << "  \"knobs_identical\": " << (report.knobs_identical ? "true" : "false") << ",\n";
  out << "  \"session_multiplier\": " << report.session_multiplier << ",\n";
  auto pair = [&out](const char* key, uint64_t recorded, uint64_t replayed) {
    out << "  \"" << key << "\": {\"recorded\": " << recorded << ", \"replayed\": " << replayed
        << "},\n";
  };
  pair("queries", report.recorded_queries, report.replayed_queries);
  pair("completed", report.recorded_completed, report.replayed_completed);
  pair("rejected", report.recorded_rejected, report.replayed_rejected);
  pair("timed_out", report.recorded_timed_out, report.replayed_timed_out);
  pair("service_cycles", report.recorded_cycles, report.replayed_cycles);
  pair("samples", report.recorded_samples, report.replayed_samples);
  pair("cache_hits", report.recorded_cache_hits, report.replayed_cache_hits);
  pair("patched_hits", report.recorded_patched_hits, report.replayed_patched_hits);
  pair("tier_swaps", report.recorded_tier_swaps, report.replayed_tier_swaps);
  out << "  \"streams_identical\": " << (report.streams_identical ? "true" : "false") << ",\n";
  out << "  \"queries_diverged\": " << report.queries_diverged << ",\n";
  out << "  \"results_diverged\": " << report.results_diverged << ",\n";
  out << "  \"tiers_identical\": " << (report.tiers_identical ? "true" : "false") << ",\n";
  out << "  \"fingerprints\": [";
  for (size_t i = 0; i < report.fingerprints.size(); ++i) {
    const ReplayFingerprintDiff& fp = report.fingerprints[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"structure\": ";
    AppendJsonString(StrFormat("%016llx", static_cast<unsigned long long>(fp.structure)), out);
    out << ", \"name\": ";
    AppendJsonString(fp.name, out);
    out << ", \"identical\": " << (fp.identical() ? "true" : "false")
        << ", \"executions\": [" << fp.recorded_executions << ", " << fp.replayed_executions
        << "], \"execute_cycles\": [" << fp.recorded_execute_cycles << ", "
        << fp.replayed_execute_cycles << "], \"p50\": [" << fp.recorded_p50 << ", "
        << fp.replayed_p50 << "], \"p95\": [" << fp.recorded_p95 << ", " << fp.replayed_p95
        << "], \"max\": [" << fp.recorded_max << ", " << fp.replayed_max
        << "], \"top_operator\": [";
    AppendJsonString(fp.recorded_top_operator, out);
    out << ", ";
    AppendJsonString(fp.replayed_top_operator, out);
    out << "], \"top_samples\": [" << fp.recorded_top_samples << ", " << fp.replayed_top_samples
        << "]}";
  }
  out << (report.fingerprints.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
}

}  // namespace dfp
