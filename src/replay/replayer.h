// Replayer and what-if harness: the playback half of fleet record/replay.
//
// ReplayTrace reconstructs a recorded workload against a fresh QueryService: each recorded
// submission is rebuilt by cloning its structural fingerprint's plan template, re-binding the
// recorded literal bindings (src/tiering/literals.h BindLiterals), and re-finalizing — then
// submitted with the recorded weight and deadline at the recorded Drain() boundaries. The
// replay itself runs through a TraceRecorder, so it produces a second WorkloadTrace built by
// the exact code path that produced the first; DiffTraces turns the pair into a ReplayReport.
//
// Determinism contract (DESIGN.md §2f): the service is a pure function of (config, submission
// sequence). Replaying an unmodified build with identity knobs therefore reproduces the
// recording bit for bit — byte-identical sample streams, identical service profiles, identical
// tier timelines, an all-zero diff. Any deviation is a real behavior change, which is what the
// differential replay tests and the replay-smoke CI job detect.
//
// What-if knobs answer capacity questions against recorded traffic without touching
// production: "what breaks at 10x sessions?" is session_multiplier = 10 (admission rejections
// appear in the report); scheduler policy, tier break-even, cache budget, and governor budget
// can be overridden the same way.
#ifndef DFP_SRC_REPLAY_REPLAYER_H_
#define DFP_SRC_REPLAY_REPLAYER_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/replay/trace.h"

namespace dfp {

class ShardCatalog;  // src/shard/partition.h — shard-count what-if replays.

// Overrides applied on top of a trace's recorded knobs. Zero / -1 = keep the recorded value.
struct WhatIfKnobs {
  // Load scaling: submit every recorded query this many times (same plan, same literals,
  // back to back at its recorded schedule position). Queue overflow then rejects naturally.
  uint32_t session_multiplier = 1;
  int scheduler = -1;                // SchedulerPolicy underlying value; -1 = recorded.
  uint32_t max_active_sessions = 0;  // 0 = recorded.
  uint32_t queue_depth = 0;          // 0 = recorded.
  uint32_t workers = 0;              // 0 = recorded.
  int tiering_enabled = -1;          // -1 = recorded, 0/1 = force off/on.
  double break_even_ratio = 0;       // 0 = recorded.
  uint64_t code_budget_bytes = 0;    // 0 = recorded.
  int governor_enabled = -1;         // -1 = recorded, 0/1 = force off/on.
  double governor_budget = 0;        // 0 = recorded.
  // Slack-directed deque ordering (src/critpath/slack.h): -1 = recorded, 0/1 = force off/on.
  // The policy only permutes schedules, so a what-if flip changes timing but never results —
  // bench_service gates on exactly that.
  int slack_scheduling = -1;
  // Closed-loop re-optimization (src/reopt/): -1 = recorded, 0/1 = force off/on. A reopt
  // what-if changes compiled code, plan shapes, and timing, but a rewritten plan computes the
  // same relation — the gate is results_diverged == 0, like the shard-count what-if.
  int reopt = -1;
  // Replay the recorded traffic against an N-shard ShardedService (src/shard/) instead of a
  // single QueryService: 0 = recorded topology (unsharded). Requires ReplayOptions::shards to
  // supply a matching ShardCatalog. Sharding re-partitions execution but never results, so a
  // shard-count what-if gates on results_diverged == 0 even though timing and streams change.
  uint32_t shard_count = 0;

  // True when every field keeps the recorded value — the zero-diff contract applies.
  bool IsIdentity() const;
};

// The service configuration a replay will run under: the trace's recorded knobs with `knobs`
// overrides applied. Exposed so callers can size the Database (extra_bytes must cover
// ServiceArenaBytes of this config) before calling ReplayTrace.
ServiceConfig ReplayServiceConfig(const WorkloadTrace& trace, const WhatIfKnobs& knobs = {});

struct ReplayOptions {
  WhatIfKnobs knobs;
  // Retain each replayed query's serialized sample stream (byte-identity diffing).
  bool keep_streams = false;
  // Retain each completed query's serialized critical-path analysis (SerializeAnalysis of its
  // task DAG and pipeline verdicts, src/critpath/) — the replay DAG-identity tests compare
  // these against the recorded run byte for byte.
  bool keep_dags = false;
  // Shard catalog for a shard-count what-if (knobs.shard_count > 0): must hold exactly
  // knobs.shard_count shards of the SAME dataset and DatabaseConfig the trace was recorded
  // against (the replayed literal bindings carry packed string references, valid on the shard
  // heaps through the intern-replay invariant of src/shard/partition.h). Borrowed, not owned.
  ShardCatalog* shards = nullptr;
};

// One finished replay: the replayed run's own trace (recorded through the same TraceRecorder
// path), plus the rendered service views the differential tests compare textually.
struct ReplayRun {
  WorkloadTrace trace;
  std::string service_profile_text;  // WriteServiceProfile of the replay service.
  std::string tier_timeline_text;    // RenderTierTimeline of the replay service.
  std::vector<std::string> sample_streams;  // Per replayed query; filled when keep_streams.
  std::vector<std::string> dag_texts;  // Per completed query, in ticket order; keep_dags.
};

// Replays `trace` against `db`. Throws dfp::Error when the catalog version does not match the
// recording, when a plan template is missing or malformed, or when a rebuilt plan's
// fingerprint disagrees with the recorded one (corrupt or mismatched trace).
ReplayRun ReplayTrace(Database& db, const WorkloadTrace& trace,
                      const ReplayOptions& options = {});

// Per-fingerprint recorded-vs-replayed comparison (latency quantiles, execution counts, top
// operator attribution). A fingerprint appearing on only one side gets zeros on the other.
struct ReplayFingerprintDiff {
  uint64_t structure = 0;
  std::string name;
  uint64_t recorded_executions = 0;
  uint64_t replayed_executions = 0;
  uint64_t recorded_execute_cycles = 0;
  uint64_t replayed_execute_cycles = 0;
  uint64_t recorded_p50 = 0;
  uint64_t replayed_p50 = 0;
  uint64_t recorded_p95 = 0;
  uint64_t replayed_p95 = 0;
  uint64_t recorded_max = 0;
  uint64_t replayed_max = 0;
  std::string recorded_top_operator;
  std::string replayed_top_operator;
  uint64_t recorded_top_samples = 0;
  uint64_t replayed_top_samples = 0;

  bool identical() const;
};

// The recorded-vs-replayed diff. `identical` is the zero-diff gate: every compared quantity —
// per-query outcomes and metrics, stream hashes, throughput, cache stats, tier timeline, and
// every fingerprint row — matched exactly.
struct ReplayReport {
  bool identical = false;
  bool knobs_identical = false;  // False for any what-if run, by construction.
  uint32_t session_multiplier = 1;
  uint64_t recorded_queries = 0;
  uint64_t replayed_queries = 0;
  uint64_t recorded_completed = 0;
  uint64_t replayed_completed = 0;
  uint64_t recorded_rejected = 0;
  uint64_t replayed_rejected = 0;
  uint64_t recorded_timed_out = 0;
  uint64_t replayed_timed_out = 0;
  uint64_t recorded_cycles = 0;   // Service clock after the final drain.
  uint64_t replayed_cycles = 0;
  uint64_t recorded_samples = 0;
  uint64_t replayed_samples = 0;
  uint64_t recorded_cache_hits = 0;
  uint64_t replayed_cache_hits = 0;
  uint64_t recorded_patched_hits = 0;
  uint64_t replayed_patched_hits = 0;
  uint64_t recorded_tier_swaps = 0;
  uint64_t replayed_tier_swaps = 0;
  // Streams: the chained per-query stream hash matched (vacuously false when query counts
  // differ — a scaled what-if run compares throughput, not streams).
  bool streams_identical = false;
  // Seq-by-seq divergences, counted only when both sides saw the same query count.
  uint64_t queries_diverged = 0;
  uint64_t results_diverged = 0;  // Subset of the above: result row counts differed.
  TierTimelineTotals recorded_tiers;
  TierTimelineTotals replayed_tiers;
  bool tiers_identical = false;
  std::vector<ReplayFingerprintDiff> fingerprints;  // Ascending by structure.
};

ReplayReport DiffTraces(const WorkloadTrace& recorded, const WorkloadTrace& replayed);

// Human-readable rendering of the report.
std::string RenderReplayReport(const ReplayReport& report);

// Deterministic JSON (fixed key order; integers, booleans, and escaped strings only) — the
// replay-smoke CI job diffs two of these byte for byte.
void WriteReplayReportJson(const ReplayReport& report, std::ostream& out);

}  // namespace dfp

#endif  // DFP_SRC_REPLAY_REPLAYER_H_
