// Text codec for physical plans: the piece of the trace format that makes recorded traffic
// self-contained.
//
// A workload trace (src/replay/trace.h) stores one serialized plan template per structural
// fingerprint; replaying a query clones the template and re-binds the recorded literals. The
// codec therefore must reproduce a finalized plan *exactly* — operator ids, bound rows, the
// optimizer's cardinality estimates (bit-exact doubles), expression trees, labels, table
// references — so that re-fingerprinting the parsed plan yields the recorded hash. Tables are
// serialized by catalog name and resolved against the replaying Database; everything else is
// value-serialized in the line-oriented style of the other dfp text formats.
#ifndef DFP_SRC_REPLAY_PLAN_CODEC_H_
#define DFP_SRC_REPLAY_PLAN_CODEC_H_

#include <iosfwd>
#include <string>

#include "src/engine/database.h"
#include "src/plan/physical.h"

namespace dfp {

// Escapes a string into a single whitespace-free token (percent-encoding of '%', whitespace,
// and control bytes; the empty string encodes as a bare "%"). Inverse of DecodeToken.
std::string EncodeToken(const std::string& text);
std::string DecodeToken(const std::string& token);  // Throws dfp::Error on malformed escapes.

// Writes `root` as a self-delimiting block of "op"/"x" lines terminated by "endplan".
void WritePlan(const PhysicalOp& root, std::ostream& out);
std::string EncodePlanText(const PhysicalOp& root);

// Inverse of WritePlan: consumes one plan block (through its "endplan" terminator) from `in`,
// resolving table references against `db`'s catalog. Throws dfp::Error on malformed input,
// unknown tables, or truncation.
PhysicalOpPtr ParsePlan(std::istream& in, const Database& db);
PhysicalOpPtr ParsePlanText(const std::string& text, const Database& db);

}  // namespace dfp

#endif  // DFP_SRC_REPLAY_PLAN_CODEC_H_
