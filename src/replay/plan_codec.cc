#include "src/replay/plan_codec.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "src/util/check.h"

namespace dfp {
namespace {

// Enum bounds for parse-side validation (serialization writes the raw underlying value).
constexpr int kMaxOpKind = static_cast<int>(OpKind::kResultSink);
constexpr int kMaxExprKind = static_cast<int>(ExprKind::kExtractYear);
constexpr int kMaxColumnType = static_cast<int>(ColumnType::kBool);
constexpr int kMaxBinOp = static_cast<int>(BinOp::kOr);
constexpr int kMaxUnOp = static_cast<int>(UnOp::kNeg);
constexpr int kMaxAggOp = static_cast<int>(AggOp::kCountStar);
constexpr int kMaxJoinType = static_cast<int>(JoinType::kAnti);

[[noreturn]] void Malformed(const std::string& line) {
  throw Error("malformed plan line: '" + line + "'");
}

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string HexU64(uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(value));
  return buffer;
}

void WriteExpr(const Expr& expr, std::ostream& out) {
  out << "x " << static_cast<int>(expr.kind) << " " << static_cast<int>(expr.type) << " "
      << expr.slot << " " << expr.literal << " " << static_cast<int>(expr.bin) << " "
      << static_cast<int>(expr.un) << " " << static_cast<int>(expr.agg) << " "
      << EncodeToken(expr.pattern) << " " << expr.list.size();
  for (int64_t candidate : expr.list) {
    out << " " << candidate;
  }
  out << " " << expr.whens.size() << " " << (expr.left != nullptr ? 1 : 0) << " "
      << (expr.right != nullptr ? 1 : 0) << " " << (expr.else_value != nullptr ? 1 : 0) << "\n";
  // Children in the fixed order every plan walker in this codebase uses: whens pairs, left,
  // right, else (cf. src/service/fingerprint.cc, src/tiering/literals.cc).
  for (const auto& [condition, value] : expr.whens) {
    WriteExpr(*condition, out);
    WriteExpr(*value, out);
  }
  if (expr.left != nullptr) {
    WriteExpr(*expr.left, out);
  }
  if (expr.right != nullptr) {
    WriteExpr(*expr.right, out);
  }
  if (expr.else_value != nullptr) {
    WriteExpr(*expr.else_value, out);
  }
}

ExprPtr ParseExpr(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw Error("truncated plan: expression expected");
  }
  std::istringstream stream(line);
  std::string kind_token;
  stream >> kind_token;
  if (kind_token != "x") {
    Malformed(line);
  }
  int kind = 0;
  int type = 0;
  int bin = 0;
  int un = 0;
  int agg = 0;
  size_t list_size = 0;
  std::string pattern_token;
  auto expr = std::make_unique<Expr>();
  if (!(stream >> kind >> type >> expr->slot >> expr->literal >> bin >> un >> agg >>
        pattern_token >> list_size) ||
      kind < 0 || kind > kMaxExprKind || type < 0 || type > kMaxColumnType || bin < 0 ||
      bin > kMaxBinOp || un < 0 || un > kMaxUnOp || agg < 0 || agg > kMaxAggOp) {
    Malformed(line);
  }
  expr->kind = static_cast<ExprKind>(kind);
  expr->type = static_cast<ColumnType>(type);
  expr->bin = static_cast<BinOp>(bin);
  expr->un = static_cast<UnOp>(un);
  expr->agg = static_cast<AggOp>(agg);
  expr->pattern = DecodeToken(pattern_token);
  expr->list.resize(list_size);
  for (int64_t& candidate : expr->list) {
    if (!(stream >> candidate)) {
      Malformed(line);
    }
  }
  size_t whens = 0;
  int has_left = 0;
  int has_right = 0;
  int has_else = 0;
  if (!(stream >> whens >> has_left >> has_right >> has_else)) {
    Malformed(line);
  }
  std::string trailing;
  if (stream >> trailing) {
    Malformed(line);
  }
  for (size_t i = 0; i < whens; ++i) {
    ExprPtr condition = ParseExpr(in);
    ExprPtr value = ParseExpr(in);
    expr->whens.emplace_back(std::move(condition), std::move(value));
  }
  if (has_left != 0) {
    expr->left = ParseExpr(in);
  }
  if (has_right != 0) {
    expr->right = ParseExpr(in);
  }
  if (has_else != 0) {
    expr->else_value = ParseExpr(in);
  }
  return expr;
}

void WriteOp(const PhysicalOp& op, std::ostream& out) {
  out << "op " << static_cast<int>(op.kind) << " " << op.id << " " << op.children.size() << " "
      << (op.projecting ? 1 : 0) << " " << static_cast<int>(op.join_type) << " " << op.limit
      << " " << op.bound_rows << " " << HexU64(DoubleBits(op.estimated_rows)) << " "
      << (op.table != nullptr ? EncodeToken(op.table->name()) : "-") << " "
      << EncodeToken(op.label) << " " << op.output.size();
  for (const OutputColumn& column : op.output) {
    out << " " << EncodeToken(column.name) << " " << static_cast<int>(column.type);
  }
  auto write_slots = [&out](const std::vector<int>& slots) {
    out << " " << slots.size();
    for (int slot : slots) {
      out << " " << slot;
    }
  };
  write_slots(op.build_keys);
  write_slots(op.probe_keys);
  write_slots(op.build_payload);
  write_slots(op.group_keys);
  out << " " << op.sort_items.size();
  for (const SortItem& item : op.sort_items) {
    out << " " << item.slot << " " << (item.descending ? 1 : 0);
  }
  out << " " << op.exprs.size() << "\n";
  for (const ExprPtr& expr : op.exprs) {
    WriteExpr(*expr, out);
  }
  for (const PhysicalOpPtr& child : op.children) {
    WriteOp(*child, out);
  }
}

PhysicalOpPtr ParseOp(std::istream& in, const Database& db) {
  std::string line;
  if (!std::getline(in, line)) {
    throw Error("truncated plan: operator expected");
  }
  std::istringstream stream(line);
  std::string kind_token;
  stream >> kind_token;
  if (kind_token != "op") {
    Malformed(line);
  }
  int kind = 0;
  size_t children = 0;
  int projecting = 0;
  int join = 0;
  std::string est_hex;
  std::string table_token;
  std::string label_token;
  size_t outputs = 0;
  auto op = std::make_unique<PhysicalOp>();
  if (!(stream >> kind >> op->id >> children >> projecting >> join >> op->limit >>
        op->bound_rows >> est_hex >> table_token >> label_token >> outputs) ||
      kind < 0 || kind > kMaxOpKind || join < 0 || join > kMaxJoinType || projecting < 0 ||
      projecting > 1 || est_hex.size() != 16) {
    Malformed(line);
  }
  op->kind = static_cast<OpKind>(kind);
  op->projecting = projecting != 0;
  op->join_type = static_cast<JoinType>(join);
  op->estimated_rows = BitsToDouble(std::stoull(est_hex, nullptr, 16));
  op->label = DecodeToken(label_token);
  if (table_token != "-") {
    const std::string table_name = DecodeToken(table_token);
    if (!db.HasTable(table_name)) {
      throw Error("plan references unknown table '" + table_name + "'");
    }
    op->table = &db.table(table_name);
  }
  op->output.resize(outputs);
  for (OutputColumn& column : op->output) {
    std::string name_token;
    int type = 0;
    if (!(stream >> name_token >> type) || type < 0 || type > kMaxColumnType) {
      Malformed(line);
    }
    column.name = DecodeToken(name_token);
    column.type = static_cast<ColumnType>(type);
  }
  auto read_slots = [&stream, &line](std::vector<int>& slots) {
    size_t count = 0;
    if (!(stream >> count)) {
      Malformed(line);
    }
    slots.resize(count);
    for (int& slot : slots) {
      if (!(stream >> slot)) {
        Malformed(line);
      }
    }
  };
  read_slots(op->build_keys);
  read_slots(op->probe_keys);
  read_slots(op->build_payload);
  read_slots(op->group_keys);
  size_t sorts = 0;
  if (!(stream >> sorts)) {
    Malformed(line);
  }
  op->sort_items.resize(sorts);
  for (SortItem& item : op->sort_items) {
    int descending = 0;
    if (!(stream >> item.slot >> descending) || descending < 0 || descending > 1) {
      Malformed(line);
    }
    item.descending = descending != 0;
  }
  size_t exprs = 0;
  if (!(stream >> exprs)) {
    Malformed(line);
  }
  std::string trailing;
  if (stream >> trailing) {
    Malformed(line);
  }
  op->exprs.reserve(exprs);
  for (size_t i = 0; i < exprs; ++i) {
    op->exprs.push_back(ParseExpr(in));
  }
  op->children.reserve(children);
  for (size_t i = 0; i < children; ++i) {
    op->children.push_back(ParseOp(in, db));
  }
  return op;
}

}  // namespace

std::string EncodeToken(const std::string& text) {
  if (text.empty()) {
    return "%";
  }
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    if (c == '%' || std::isspace(c) != 0 || c < 0x20 || c == 0x7F) {
      char buffer[4];
      std::snprintf(buffer, sizeof(buffer), "%%%02X", c);
      out += buffer;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

std::string DecodeToken(const std::string& token) {
  if (token == "%") {
    return "";
  }
  std::string out;
  out.reserve(token.size());
  for (size_t i = 0; i < token.size(); ++i) {
    if (token[i] != '%') {
      out += token[i];
      continue;
    }
    if (i + 2 >= token.size() || std::isxdigit(static_cast<unsigned char>(token[i + 1])) == 0 ||
        std::isxdigit(static_cast<unsigned char>(token[i + 2])) == 0) {
      throw Error("malformed token escape in '" + token + "'");
    }
    out += static_cast<char>(std::stoi(token.substr(i + 1, 2), nullptr, 16));
    i += 2;
  }
  return out;
}

void WritePlan(const PhysicalOp& root, std::ostream& out) {
  WriteOp(root, out);
  out << "endplan\n";
}

std::string EncodePlanText(const PhysicalOp& root) {
  std::ostringstream out;
  WritePlan(root, out);
  return out.str();
}

PhysicalOpPtr ParsePlan(std::istream& in, const Database& db) {
  PhysicalOpPtr root = ParseOp(in, db);
  std::string line;
  if (!std::getline(in, line) || line != "endplan") {
    throw Error("plan block missing its 'endplan' terminator");
  }
  return root;
}

PhysicalOpPtr ParsePlanText(const std::string& text, const Database& db) {
  std::istringstream in(text);
  return ParsePlan(in, db);
}

}  // namespace dfp
