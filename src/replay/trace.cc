#include "src/replay/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/replay/plan_codec.h"
#include "src/util/check.h"

namespace dfp {
namespace {

constexpr char kTraceHeaderPrefix[] = "# dfp trace v";
constexpr uint64_t kMaxTraceVersion = 3;

// True when the knobs carry a non-default profile-feedback scheduling configuration — the
// content that requires the v2 layout (the optional `sched` line).
bool HasSchedKnobs(const TraceKnobs& k) {
  return k.slack_scheduling || k.placement_repair || k.deadline_admission ||
         k.slack_max_age != 64 || k.repair_pessimize;
}

uint64_t DoubleBits(double value);

// Same, for the closed-loop re-optimization configuration (the v3 `reopt` line).
bool HasReoptKnobs(const TraceKnobs& k) {
  const TraceKnobs defaults;
  return k.reopt_enabled || k.reopt_divergence_pct != defaults.reopt_divergence_pct ||
         k.reopt_min_executions != defaults.reopt_min_executions ||
         k.reopt_semi_join_reduction ||
         k.reopt_semi_join_blowup_pct != defaults.reopt_semi_join_blowup_pct ||
         k.reopt_pessimize ||
         DoubleBits(k.reopt_guard.min_share) != DoubleBits(defaults.reopt_guard.min_share) ||
         DoubleBits(k.reopt_guard.share_drift) !=
             DoubleBits(defaults.reopt_guard.share_drift) ||
         DoubleBits(k.reopt_guard.share_noise_z) !=
             DoubleBits(defaults.reopt_guard.share_noise_z) ||
         DoubleBits(k.reopt_guard.cycles_per_row_ratio) !=
             DoubleBits(defaults.reopt_guard.cycles_per_row_ratio) ||
         DoubleBits(k.reopt_guard.remote_share_drift) !=
             DoubleBits(defaults.reopt_guard.remote_share_drift) ||
         k.reopt_guard.min_samples != defaults.reopt_guard.min_samples;
}

[[noreturn]] void Malformed(const std::string& line) {
  throw Error("malformed trace line: '" + line + "'");
}

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string HexU64(uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(value));
  return buffer;
}

uint64_t ParseHexU64(const std::string& token, const std::string& line) {
  if (token.size() != 16 || token.find_first_not_of("0123456789abcdef") != std::string::npos) {
    Malformed(line);
  }
  return std::stoull(token, nullptr, 16);
}

// Reads the next line, requiring its first token to be `keyword`; returns a stream positioned
// after the keyword.
std::istringstream ExpectLine(std::istream& in, const std::string& keyword, std::string& line) {
  if (!std::getline(in, line)) {
    throw Error("truncated trace: '" + keyword + "' line expected");
  }
  std::istringstream stream(line);
  std::string token;
  stream >> token;
  if (token != keyword) {
    Malformed(line);
  }
  return stream;
}

void RejectTrailing(std::istringstream& stream, const std::string& line) {
  std::string trailing;
  if (stream >> trailing) {
    Malformed(line);
  }
}

}  // namespace

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

bool TraceKnobs::operator==(const TraceKnobs& other) const {
  const CompileCostModel& a = compile_costs;
  const CompileCostModel& b = other.compile_costs;
  return workers == other.workers && morsel_rows == other.morsel_rows &&
         scheduler == other.scheduler && numa_nodes == other.numa_nodes &&
         max_active_sessions == other.max_active_sessions && queue_depth == other.queue_depth &&
         default_deadline_cycles == other.default_deadline_cycles &&
         code_budget_bytes == other.code_budget_bytes &&
         session_hashtables_bytes == other.session_hashtables_bytes &&
         session_state_bytes == other.session_state_bytes &&
         session_output_bytes == other.session_output_bytes &&
         profile_executions == other.profile_executions && pmu_event == other.pmu_event &&
         sampling_period == other.sampling_period && capture_address == other.capture_address &&
         attribution == other.attribution &&
         tag_all_instructions == other.tag_all_instructions &&
         enable_sampling == other.enable_sampling && packed_tags == other.packed_tags &&
         a.base_cycles == b.base_cycles && a.per_ir_instr == b.per_ir_instr &&
         a.per_machine_instr == b.per_machine_instr &&
         a.cache_lookup_cycles == b.cache_lookup_cycles &&
         a.baseline_base_cycles == b.baseline_base_cycles &&
         a.baseline_per_ir_instr == b.baseline_per_ir_instr &&
         a.baseline_per_machine_instr == b.baseline_per_machine_instr &&
         a.patch_per_site_cycles == b.patch_per_site_cycles &&
         windows_enabled == other.windows_enabled &&
         window_width_cycles == other.window_width_cycles && ring_windows == other.ring_windows &&
         governor_enabled == other.governor_enabled &&
         DoubleBits(governor_budget) == DoubleBits(other.governor_budget) &&
         governor_min_period == other.governor_min_period &&
         governor_max_period == other.governor_max_period &&
         DoubleBits(governor_smoothing) == DoubleBits(other.governor_smoothing) &&
         tiering_enabled == other.tiering_enabled &&
         DoubleBits(break_even_ratio) == DoubleBits(other.break_even_ratio) &&
         min_executions == other.min_executions &&
         slack_scheduling == other.slack_scheduling &&
         placement_repair == other.placement_repair &&
         deadline_admission == other.deadline_admission &&
         slack_max_age == other.slack_max_age && repair_pessimize == other.repair_pessimize &&
         reopt_enabled == other.reopt_enabled &&
         reopt_divergence_pct == other.reopt_divergence_pct &&
         reopt_min_executions == other.reopt_min_executions &&
         reopt_semi_join_reduction == other.reopt_semi_join_reduction &&
         reopt_semi_join_blowup_pct == other.reopt_semi_join_blowup_pct &&
         reopt_pessimize == other.reopt_pessimize &&
         DoubleBits(reopt_guard.min_share) == DoubleBits(other.reopt_guard.min_share) &&
         DoubleBits(reopt_guard.share_drift) == DoubleBits(other.reopt_guard.share_drift) &&
         DoubleBits(reopt_guard.share_noise_z) == DoubleBits(other.reopt_guard.share_noise_z) &&
         DoubleBits(reopt_guard.cycles_per_row_ratio) ==
             DoubleBits(other.reopt_guard.cycles_per_row_ratio) &&
         DoubleBits(reopt_guard.remote_share_drift) ==
             DoubleBits(other.reopt_guard.remote_share_drift) &&
         reopt_guard.min_samples == other.reopt_guard.min_samples;
}

TraceKnobs CaptureKnobs(const ServiceConfig& config) {
  TraceKnobs knobs;
  knobs.workers = config.parallel.workers;
  knobs.morsel_rows = config.parallel.morsel_rows;
  knobs.scheduler = static_cast<uint8_t>(config.parallel.scheduler);
  knobs.numa_nodes = config.parallel.numa_nodes;
  knobs.max_active_sessions = config.max_active_sessions;
  knobs.queue_depth = config.queue_depth;
  knobs.default_deadline_cycles = config.default_deadline_cycles;
  knobs.code_budget_bytes = config.code_budget_bytes;
  knobs.session_hashtables_bytes = config.session_hashtables_bytes;
  knobs.session_state_bytes = config.session_state_bytes;
  knobs.session_output_bytes = config.session_output_bytes;
  knobs.profile_executions = config.profile_executions;
  knobs.pmu_event = static_cast<uint8_t>(config.profiling.event);
  knobs.sampling_period = config.profiling.period;
  knobs.capture_address = config.profiling.capture_address;
  knobs.attribution = static_cast<uint8_t>(config.profiling.attribution);
  knobs.tag_all_instructions = config.profiling.tag_all_instructions;
  knobs.enable_sampling = config.profiling.enable_sampling;
  knobs.packed_tags = config.profiling.packed_tags;
  knobs.compile_costs = config.compile_costs;
  knobs.windows_enabled = config.continuous.windows_enabled;
  knobs.window_width_cycles = config.continuous.window.width_cycles;
  knobs.ring_windows = config.continuous.window.ring_windows;
  knobs.governor_enabled = config.continuous.governor.enabled;
  knobs.governor_budget = config.continuous.governor.overhead_budget;
  knobs.governor_min_period = config.continuous.governor.min_period;
  knobs.governor_max_period = config.continuous.governor.max_period;
  knobs.governor_smoothing = config.continuous.governor.smoothing;
  knobs.tiering_enabled = config.tiering.enabled;
  knobs.break_even_ratio = config.tiering.break_even_ratio;
  knobs.min_executions = config.tiering.min_executions;
  knobs.slack_scheduling = config.sched.slack_scheduling;
  knobs.placement_repair = config.sched.placement_repair;
  knobs.deadline_admission = config.sched.deadline_admission;
  knobs.slack_max_age = config.sched.slack_max_age;
  knobs.repair_pessimize = config.sched.repair_pessimize;
  knobs.reopt_enabled = config.reopt.enabled;
  knobs.reopt_divergence_pct = config.reopt.divergence_pct;
  knobs.reopt_min_executions = config.reopt.min_executions;
  knobs.reopt_semi_join_reduction = config.reopt.semi_join_reduction;
  knobs.reopt_semi_join_blowup_pct = config.reopt.semi_join_blowup_pct;
  knobs.reopt_pessimize = config.reopt.pessimize;
  knobs.reopt_guard = config.reopt.guard;
  return knobs;
}

ServiceConfig ApplyKnobs(const TraceKnobs& knobs) {
  ServiceConfig config;
  config.parallel.workers = knobs.workers;
  config.parallel.morsel_rows = knobs.morsel_rows;
  config.parallel.scheduler = static_cast<SchedulerPolicy>(knobs.scheduler);
  config.parallel.numa_nodes = knobs.numa_nodes;
  config.max_active_sessions = knobs.max_active_sessions;
  config.queue_depth = knobs.queue_depth;
  config.default_deadline_cycles = knobs.default_deadline_cycles;
  config.code_budget_bytes = knobs.code_budget_bytes;
  config.session_hashtables_bytes = knobs.session_hashtables_bytes;
  config.session_state_bytes = knobs.session_state_bytes;
  config.session_output_bytes = knobs.session_output_bytes;
  config.profile_executions = knobs.profile_executions;
  config.profiling.event = static_cast<PmuEvent>(knobs.pmu_event);
  config.profiling.period = knobs.sampling_period;
  config.profiling.capture_address = knobs.capture_address;
  config.profiling.attribution = static_cast<AttributionMode>(knobs.attribution);
  config.profiling.tag_all_instructions = knobs.tag_all_instructions;
  config.profiling.enable_sampling = knobs.enable_sampling;
  config.profiling.packed_tags = knobs.packed_tags;
  config.compile_costs = knobs.compile_costs;
  config.continuous.windows_enabled = knobs.windows_enabled;
  config.continuous.window.width_cycles = knobs.window_width_cycles;
  config.continuous.window.ring_windows = knobs.ring_windows;
  config.continuous.governor.enabled = knobs.governor_enabled;
  config.continuous.governor.overhead_budget = knobs.governor_budget;
  config.continuous.governor.min_period = knobs.governor_min_period;
  config.continuous.governor.max_period = knobs.governor_max_period;
  config.continuous.governor.smoothing = knobs.governor_smoothing;
  config.tiering.enabled = knobs.tiering_enabled;
  config.tiering.break_even_ratio = knobs.break_even_ratio;
  config.tiering.min_executions = knobs.min_executions;
  config.sched.slack_scheduling = knobs.slack_scheduling;
  config.sched.placement_repair = knobs.placement_repair;
  config.sched.deadline_admission = knobs.deadline_admission;
  config.sched.slack_max_age = knobs.slack_max_age;
  config.sched.repair_pessimize = knobs.repair_pessimize;
  config.reopt.enabled = knobs.reopt_enabled;
  config.reopt.divergence_pct = knobs.reopt_divergence_pct;
  config.reopt.min_executions = knobs.reopt_min_executions;
  config.reopt.semi_join_reduction = knobs.reopt_semi_join_reduction;
  config.reopt.semi_join_blowup_pct = knobs.reopt_semi_join_blowup_pct;
  config.reopt.pessimize = knobs.reopt_pessimize;
  config.reopt.guard = knobs.reopt_guard;
  return config;
}

const PlanTemplate* WorkloadTrace::FindTemplate(uint64_t structure) const {
  for (const PlanTemplate& entry : templates) {
    if (entry.structure == structure) {
      return &entry;
    }
  }
  return nullptr;
}

void WriteTrace(const WorkloadTrace& trace, std::ostream& out) {
  const bool sched = HasSchedKnobs(trace.knobs);
  const bool reopt = HasReoptKnobs(trace.knobs);
  out << kTraceHeaderPrefix << (reopt ? 3 : sched ? 2 : 1) << "\n";
  out << "catalog " << trace.catalog_version << "\n";
  out << "start " << trace.start_cycles << "\n";
  const TraceKnobs& k = trace.knobs;
  out << "knobs " << k.workers << " " << k.morsel_rows << " " << static_cast<int>(k.scheduler)
      << " " << k.numa_nodes << " " << k.max_active_sessions << " " << k.queue_depth << " "
      << k.default_deadline_cycles << " " << k.code_budget_bytes << " "
      << k.session_hashtables_bytes << " " << k.session_state_bytes << " "
      << k.session_output_bytes << " " << (k.profile_executions ? 1 : 0) << " "
      << static_cast<int>(k.pmu_event) << " " << k.sampling_period << " "
      << (k.capture_address ? 1 : 0) << " " << static_cast<int>(k.attribution) << " "
      << (k.tag_all_instructions ? 1 : 0) << " " << (k.enable_sampling ? 1 : 0) << " "
      << (k.packed_tags ? 1 : 0) << " " << (k.windows_enabled ? 1 : 0) << " "
      << k.window_width_cycles << " " << k.ring_windows << " " << (k.governor_enabled ? 1 : 0)
      << " " << HexU64(DoubleBits(k.governor_budget)) << " " << k.governor_min_period << " "
      << k.governor_max_period << " " << HexU64(DoubleBits(k.governor_smoothing)) << " "
      << (k.tiering_enabled ? 1 : 0) << " " << HexU64(DoubleBits(k.break_even_ratio)) << " "
      << k.min_executions << "\n";
  const CompileCostModel& c = k.compile_costs;
  out << "costs " << c.base_cycles << " " << c.per_ir_instr << " " << c.per_machine_instr << " "
      << c.cache_lookup_cycles << " " << c.baseline_base_cycles << " " << c.baseline_per_ir_instr
      << " " << c.baseline_per_machine_instr << " " << c.patch_per_site_cycles << "\n";
  if (sched) {
    out << "sched " << (k.slack_scheduling ? 1 : 0) << " " << (k.placement_repair ? 1 : 0) << " "
        << (k.deadline_admission ? 1 : 0) << " " << k.slack_max_age << " "
        << (k.repair_pessimize ? 1 : 0) << "\n";
  }
  if (reopt) {
    out << "reopt " << (k.reopt_enabled ? 1 : 0) << " " << k.reopt_divergence_pct << " "
        << k.reopt_min_executions << " " << (k.reopt_semi_join_reduction ? 1 : 0) << " "
        << k.reopt_semi_join_blowup_pct << " " << (k.reopt_pessimize ? 1 : 0) << " "
        << HexU64(DoubleBits(k.reopt_guard.min_share)) << " "
        << HexU64(DoubleBits(k.reopt_guard.share_drift)) << " "
        << HexU64(DoubleBits(k.reopt_guard.share_noise_z)) << " "
        << HexU64(DoubleBits(k.reopt_guard.cycles_per_row_ratio)) << " "
        << HexU64(DoubleBits(k.reopt_guard.remote_share_drift)) << " "
        << k.reopt_guard.min_samples << "\n";
  }
  for (const PlanTemplate& entry : trace.templates) {
    out << "template " << HexU64(entry.structure) << " " << EncodeToken(entry.name) << "\n";
    out << entry.plan_text;  // Self-delimiting: ends with "endplan\n".
  }
  for (const TraceEvent& event : trace.events) {
    switch (event.kind) {
      case TraceEvent::Kind::kQuery: {
        const TraceQuery& q = trace.query(event.seq);
        out << "query " << q.seq << " " << EncodeToken(q.name) << " "
            << HexU64(q.fingerprint.structure) << " " << HexU64(q.fingerprint.literals) << " "
            << HexU64(q.fingerprint.pinned) << " " << q.arrival_cycles << " " << q.weight << " "
            << q.deadline_cycles << " "
            << (q.outcome == TraceOutcome::kAdmitted ? "admitted" : "rejected") << " "
            << q.literals.size();
        for (const LiteralBinding& binding : q.literals) {
          switch (binding.kind) {
            case LiteralBinding::Kind::kValue:
              out << " V " << binding.value;
              break;
            case LiteralBinding::Kind::kPattern:
              out << " P " << EncodeToken(binding.pattern);
              break;
            case LiteralBinding::Kind::kLimit:
              out << " M " << binding.value;
              break;
          }
        }
        out << "\n";
        break;
      }
      case TraceEvent::Kind::kDone: {
        const TraceQuery& q = trace.query(event.seq);
        out << "done " << q.seq << " " << static_cast<int>(q.status) << " "
            << (q.cache_hit ? 1 : 0) << " " << static_cast<int>(q.tier) << " " << q.patched_sites
            << " " << q.compile_cycles << " " << q.execute_cycles << " " << q.completed_at_cycles
            << " " << q.result_rows << " " << q.samples << " " << HexU64(q.stream_hash) << "\n";
        break;
      }
      case TraceEvent::Kind::kDrain:
        out << "drain " << event.seq << "\n";
        break;
    }
  }
  const TraceSummary& s = trace.summary;
  out << "summary " << s.queries << " " << s.completed << " " << s.rejected << " " << s.timed_out
      << " " << s.service_cycles << " " << s.cache_hits << " " << s.cache_misses << " "
      << s.patched_hits << " " << s.tier_swaps << " " << s.samples << " "
      << HexU64(s.stream_hash) << "\n";
  out << "tiers " << s.tiers.samples << " " << s.tiers.baseline_samples << " "
      << s.tiers.optimized_samples << " " << s.tiers.transitions << " " << s.tiers.swapped
      << "\n";
  for (const TraceFingerprintSummary& fp : s.fingerprints) {
    out << "fp " << HexU64(fp.structure) << " " << fp.executions << " " << fp.execute_cycles
        << " " << fp.latency_p50 << " " << fp.latency_p95 << " " << fp.latency_max << " "
        << fp.top_operator_samples << " " << EncodeToken(fp.top_operator) << " "
        << EncodeToken(fp.name) << "\n";
  }
  out << "end\n";
}

std::string EncodeTraceText(const WorkloadTrace& trace) {
  std::ostringstream out;
  WriteTrace(trace, out);
  return out.str();
}

WorkloadTrace ReadTrace(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw Error("empty trace: version header expected");
  }
  if (line.rfind(kTraceHeaderPrefix, 0) != 0) {
    throw Error("not a dfp trace: '" + line + "'");
  }
  uint64_t version = 0;
  try {
    size_t used = 0;
    version = std::stoull(line.substr(sizeof(kTraceHeaderPrefix) - 1), &used);
    if (used != line.size() - (sizeof(kTraceHeaderPrefix) - 1)) {
      Malformed(line);
    }
  } catch (const Error&) {
    throw;
  } catch (...) {
    Malformed(line);
  }
  if (version == 0 || version > kMaxTraceVersion) {
    throw Error("trace version " + std::to_string(version) +
                " not supported by this build (max " + std::to_string(kMaxTraceVersion) +
                "); written by a newer build?");
  }

  WorkloadTrace trace;
  {
    std::istringstream stream = ExpectLine(in, "catalog", line);
    if (!(stream >> trace.catalog_version)) {
      Malformed(line);
    }
    RejectTrailing(stream, line);
  }
  {
    std::istringstream stream = ExpectLine(in, "start", line);
    if (!(stream >> trace.start_cycles)) {
      Malformed(line);
    }
    RejectTrailing(stream, line);
  }
  {
    std::istringstream stream = ExpectLine(in, "knobs", line);
    TraceKnobs& k = trace.knobs;
    int scheduler = 0;
    int profile = 0;
    int event = 0;
    int capture = 0;
    int attribution = 0;
    int tag_all = 0;
    int sampling = 0;
    int packed = 0;
    int windows = 0;
    int governor = 0;
    int tiering = 0;
    std::string budget_hex;
    std::string smoothing_hex;
    std::string break_even_hex;
    if (!(stream >> k.workers >> k.morsel_rows >> scheduler >> k.numa_nodes >>
          k.max_active_sessions >> k.queue_depth >> k.default_deadline_cycles >>
          k.code_budget_bytes >> k.session_hashtables_bytes >> k.session_state_bytes >>
          k.session_output_bytes >> profile >> event >> k.sampling_period >> capture >>
          attribution >> tag_all >> sampling >> packed >> windows >> k.window_width_cycles >>
          k.ring_windows >> governor >> budget_hex >> k.governor_min_period >>
          k.governor_max_period >> smoothing_hex >> tiering >> break_even_hex >>
          k.min_executions) ||
        scheduler < 0 || scheduler > static_cast<int>(SchedulerPolicy::kWorkStealing) ||
        event < 0 || event >= static_cast<int>(PmuEvent::kEventCount) || attribution < 0 ||
        attribution > static_cast<int>(AttributionMode::kCallStack)) {
      Malformed(line);
    }
    RejectTrailing(stream, line);
    k.scheduler = static_cast<uint8_t>(scheduler);
    k.profile_executions = profile != 0;
    k.pmu_event = static_cast<uint8_t>(event);
    k.capture_address = capture != 0;
    k.attribution = static_cast<uint8_t>(attribution);
    k.tag_all_instructions = tag_all != 0;
    k.enable_sampling = sampling != 0;
    k.packed_tags = packed != 0;
    k.windows_enabled = windows != 0;
    k.governor_enabled = governor != 0;
    k.governor_budget = BitsToDouble(ParseHexU64(budget_hex, line));
    k.governor_smoothing = BitsToDouble(ParseHexU64(smoothing_hex, line));
    k.tiering_enabled = tiering != 0;
    k.break_even_ratio = BitsToDouble(ParseHexU64(break_even_hex, line));
  }
  {
    std::istringstream stream = ExpectLine(in, "costs", line);
    CompileCostModel& c = trace.knobs.compile_costs;
    if (!(stream >> c.base_cycles >> c.per_ir_instr >> c.per_machine_instr >>
          c.cache_lookup_cycles >> c.baseline_base_cycles >> c.baseline_per_ir_instr >>
          c.baseline_per_machine_instr >> c.patch_per_site_cycles)) {
      Malformed(line);
    }
    RejectTrailing(stream, line);
  }

  // Body: templates, then the event schedule, then the summary block. The writer emits them in
  // that order; the reader accepts each keyword wherever it appears so the fixed-point property
  // is a statement about the writer's canonical order, not a parser restriction.
  bool saw_summary = false;
  bool saw_tiers = false;
  bool saw_end = false;
  while (std::getline(in, line)) {
    std::istringstream stream(line);
    std::string keyword;
    stream >> keyword;
    if (keyword == "sched") {
      if (version < 2) {
        Malformed(line);
      }
      TraceKnobs& k = trace.knobs;
      int slack = 0;
      int repair = 0;
      int admission = 0;
      int pessimize = 0;
      if (!(stream >> slack >> repair >> admission >> k.slack_max_age >> pessimize)) {
        Malformed(line);
      }
      RejectTrailing(stream, line);
      k.slack_scheduling = slack != 0;
      k.placement_repair = repair != 0;
      k.deadline_admission = admission != 0;
      k.repair_pessimize = pessimize != 0;
    } else if (keyword == "reopt") {
      if (version < 3) {
        Malformed(line);
      }
      TraceKnobs& k = trace.knobs;
      int enabled = 0;
      int semi_join = 0;
      int pessimize = 0;
      std::string min_share_hex;
      std::string share_drift_hex;
      std::string noise_z_hex;
      std::string ratio_hex;
      std::string remote_hex;
      if (!(stream >> enabled >> k.reopt_divergence_pct >> k.reopt_min_executions >>
            semi_join >> k.reopt_semi_join_blowup_pct >> pessimize >> min_share_hex >>
            share_drift_hex >> noise_z_hex >> ratio_hex >> remote_hex >>
            k.reopt_guard.min_samples)) {
        Malformed(line);
      }
      RejectTrailing(stream, line);
      k.reopt_enabled = enabled != 0;
      k.reopt_semi_join_reduction = semi_join != 0;
      k.reopt_pessimize = pessimize != 0;
      k.reopt_guard.min_share = BitsToDouble(ParseHexU64(min_share_hex, line));
      k.reopt_guard.share_drift = BitsToDouble(ParseHexU64(share_drift_hex, line));
      k.reopt_guard.share_noise_z = BitsToDouble(ParseHexU64(noise_z_hex, line));
      k.reopt_guard.cycles_per_row_ratio = BitsToDouble(ParseHexU64(ratio_hex, line));
      k.reopt_guard.remote_share_drift = BitsToDouble(ParseHexU64(remote_hex, line));
    } else if (keyword == "template") {
      PlanTemplate entry;
      std::string structure_hex;
      std::string name_token;
      if (!(stream >> structure_hex >> name_token)) {
        Malformed(line);
      }
      RejectTrailing(stream, line);
      entry.structure = ParseHexU64(structure_hex, line);
      entry.name = DecodeToken(name_token);
      // Consume the plan block verbatim (it is validated against the catalog at replay time —
      // a trace file alone has no Database to resolve tables against).
      std::string plan_line;
      bool terminated = false;
      while (std::getline(in, plan_line)) {
        entry.plan_text += plan_line;
        entry.plan_text += "\n";
        if (plan_line == "endplan") {
          terminated = true;
          break;
        }
        if (plan_line.rfind("op ", 0) != 0 && plan_line.rfind("x ", 0) != 0) {
          Malformed(plan_line);
        }
      }
      if (!terminated) {
        throw Error("truncated trace: template plan block missing 'endplan'");
      }
      trace.templates.push_back(std::move(entry));
    } else if (keyword == "query") {
      TraceQuery q;
      std::string name_token;
      std::string structure_hex;
      std::string literals_hex;
      std::string pinned_hex;
      std::string outcome_token;
      size_t bindings = 0;
      if (!(stream >> q.seq >> name_token >> structure_hex >> literals_hex >> pinned_hex >>
            q.arrival_cycles >> q.weight >> q.deadline_cycles >> outcome_token >> bindings)) {
        Malformed(line);
      }
      q.name = DecodeToken(name_token);
      q.fingerprint.structure = ParseHexU64(structure_hex, line);
      q.fingerprint.literals = ParseHexU64(literals_hex, line);
      q.fingerprint.pinned = ParseHexU64(pinned_hex, line);
      if (outcome_token == "admitted") {
        q.outcome = TraceOutcome::kAdmitted;
      } else if (outcome_token == "rejected") {
        q.outcome = TraceOutcome::kRejected;
      } else {
        Malformed(line);
      }
      q.literals.reserve(bindings);
      for (size_t i = 0; i < bindings; ++i) {
        std::string kind_token;
        if (!(stream >> kind_token)) {
          Malformed(line);
        }
        LiteralBinding binding;
        if (kind_token == "V") {
          binding.kind = LiteralBinding::Kind::kValue;
          if (!(stream >> binding.value)) {
            Malformed(line);
          }
        } else if (kind_token == "P") {
          binding.kind = LiteralBinding::Kind::kPattern;
          std::string pattern_token;
          if (!(stream >> pattern_token)) {
            Malformed(line);
          }
          binding.pattern = DecodeToken(pattern_token);
        } else if (kind_token == "M") {
          binding.kind = LiteralBinding::Kind::kLimit;
          if (!(stream >> binding.value)) {
            Malformed(line);
          }
        } else {
          Malformed(line);
        }
        q.literals.push_back(std::move(binding));
      }
      RejectTrailing(stream, line);
      if (q.seq != trace.queries.size() + 1) {
        throw Error("trace query out of order: seq " + std::to_string(q.seq) + " expected " +
                    std::to_string(trace.queries.size() + 1));
      }
      trace.events.push_back({TraceEvent::Kind::kQuery, q.seq});
      trace.queries.push_back(std::move(q));
    } else if (keyword == "done") {
      uint32_t seq = 0;
      int status = 0;
      int hit = 0;
      int tier = 0;
      std::string hash_hex;
      if (!(stream >> seq)) {
        Malformed(line);
      }
      if (seq == 0 || seq > trace.queries.size()) {
        throw Error("trace 'done' references unknown query seq " + std::to_string(seq));
      }
      TraceQuery& q = trace.queries[seq - 1];
      if (!(stream >> status >> hit >> tier >> q.patched_sites >> q.compile_cycles >>
            q.execute_cycles >> q.completed_at_cycles >> q.result_rows >> q.samples >>
            hash_hex) ||
          status < 0 || status > static_cast<int>(TicketStatus::kTimedOut) || hit < 0 ||
          hit > 1 || tier < 0 || tier > 1) {
        Malformed(line);
      }
      RejectTrailing(stream, line);
      q.completed = true;
      q.status = static_cast<uint8_t>(status);
      q.cache_hit = hit != 0;
      q.tier = static_cast<uint8_t>(tier);
      q.stream_hash = ParseHexU64(hash_hex, line);
      trace.events.push_back({TraceEvent::Kind::kDone, seq});
    } else if (keyword == "drain") {
      TraceEvent event;
      event.kind = TraceEvent::Kind::kDrain;
      if (!(stream >> event.seq)) {
        Malformed(line);
      }
      RejectTrailing(stream, line);
      trace.events.push_back(event);
    } else if (keyword == "summary") {
      TraceSummary& s = trace.summary;
      std::string hash_hex;
      if (!(stream >> s.queries >> s.completed >> s.rejected >> s.timed_out >>
            s.service_cycles >> s.cache_hits >> s.cache_misses >> s.patched_hits >>
            s.tier_swaps >> s.samples >> hash_hex)) {
        Malformed(line);
      }
      RejectTrailing(stream, line);
      s.stream_hash = ParseHexU64(hash_hex, line);
      saw_summary = true;
    } else if (keyword == "tiers") {
      TierTimelineTotals& t = trace.summary.tiers;
      if (!(stream >> t.samples >> t.baseline_samples >> t.optimized_samples >> t.transitions >>
            t.swapped)) {
        Malformed(line);
      }
      RejectTrailing(stream, line);
      saw_tiers = true;
    } else if (keyword == "fp") {
      TraceFingerprintSummary fp;
      std::string structure_hex;
      std::string top_token;
      std::string name_token;
      if (!(stream >> structure_hex >> fp.executions >> fp.execute_cycles >> fp.latency_p50 >>
            fp.latency_p95 >> fp.latency_max >> fp.top_operator_samples >> top_token >>
            name_token)) {
        Malformed(line);
      }
      RejectTrailing(stream, line);
      fp.structure = ParseHexU64(structure_hex, line);
      fp.top_operator = DecodeToken(top_token);
      fp.name = DecodeToken(name_token);
      trace.summary.fingerprints.push_back(std::move(fp));
    } else if (keyword == "end") {
      RejectTrailing(stream, line);
      saw_end = true;
      break;
    } else {
      Malformed(line);
    }
  }
  if (!saw_end) {
    throw Error("truncated trace: 'end' marker missing");
  }
  if (!saw_summary || !saw_tiers) {
    throw Error("truncated trace: summary block missing");
  }
  if (trace.summary.queries != trace.queries.size()) {
    throw Error("trace summary query count " + std::to_string(trace.summary.queries) +
                " does not match recorded queries " + std::to_string(trace.queries.size()));
  }
  return trace;
}

}  // namespace dfp
