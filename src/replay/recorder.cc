#include "src/replay/recorder.h"

#include <cstdio>
#include <sstream>

#include "src/profiling/serialize.h"
#include "src/replay/plan_codec.h"
#include "src/tiering/report.h"
#include "src/util/check.h"

namespace dfp {
namespace {

std::string HexU64(uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(value));
  return buffer;
}

}  // namespace

void TraceRecorder::OnAttach(const ServiceConfig& config, uint64_t catalog_version,
                             uint64_t now_cycles) {
  if (now_cycles != 0) {
    throw Error("trace recording requires a fresh service: clock already at " +
                std::to_string(now_cycles) + " cycles (replay starts from zero)");
  }
  DFP_CHECK(!attached_);
  attached_ = true;
  trace_.catalog_version = catalog_version;
  trace_.start_cycles = now_cycles;
  trace_.knobs = CaptureKnobs(config);
}

void TraceRecorder::OnSubmit(const QueryTicket& ticket, const PhysicalOp& plan,
                             uint64_t arrival_cycles) {
  DFP_CHECK(attached_);
  DFP_CHECK(ticket.id == trace_.queries.size() + 1);
  TraceQuery q;
  q.seq = ticket.id;
  q.name = ticket.name;
  q.fingerprint = ticket.fingerprint;
  q.arrival_cycles = arrival_cycles;
  q.weight = ticket.weight;
  q.deadline_cycles = ticket.deadline_cycles;
  q.outcome = ticket.status == TicketStatus::kRejected ? TraceOutcome::kRejected
                                                       : TraceOutcome::kAdmitted;
  q.literals = ExtractLiterals(plan).bindings;
  if (trace_.FindTemplate(q.fingerprint.structure) == nullptr) {
    PlanTemplate entry;
    entry.structure = q.fingerprint.structure;
    entry.name = q.name;
    entry.plan_text = EncodePlanText(plan);
    trace_.templates.push_back(std::move(entry));
  }
  trace_.events.push_back({TraceEvent::Kind::kQuery, q.seq});
  trace_.queries.push_back(std::move(q));
  streams_.emplace_back();
}

void TraceRecorder::OnDrain(uint32_t submissions_so_far) {
  DFP_CHECK(attached_);
  trace_.events.push_back({TraceEvent::Kind::kDrain, submissions_so_far});
}

void TraceRecorder::OnCompletion(const QueryTicket& ticket) {
  DFP_CHECK(attached_);
  DFP_CHECK(ticket.id >= 1 && ticket.id <= trace_.queries.size());
  TraceQuery& q = trace_.queries[ticket.id - 1];
  DFP_CHECK(!q.completed);
  q.completed = true;
  q.status = static_cast<uint8_t>(ticket.status);
  q.cache_hit = ticket.cache_hit;
  q.tier = static_cast<uint8_t>(ticket.tier);
  q.patched_sites = ticket.patched_sites;
  q.compile_cycles = ticket.compile_cycles;
  q.execute_cycles = ticket.execute_cycles;
  q.completed_at_cycles = ticket.completed_at_cycles;
  q.result_rows = ticket.result.row_count();
  if (ticket.session != nullptr) {
    std::ostringstream out;
    WriteSamples(ticket.session->samples(), out);
    std::string text = out.str();
    q.samples = ticket.session->samples().size();
    q.stream_hash = Fnv1a64(text);
    if (keep_streams_) {
      streams_[ticket.id - 1] = std::move(text);
    }
  }
  trace_.events.push_back({TraceEvent::Kind::kDone, ticket.id});
}

const WorkloadTrace& TraceRecorder::Finish(const QueryService& service) {
  DFP_CHECK(attached_);
  TraceSummary s;
  s.queries = trace_.queries.size();
  std::string chain;
  for (const TraceQuery& q : trace_.queries) {
    if (q.outcome == TraceOutcome::kRejected) {
      ++s.rejected;
    } else if (q.completed && q.status == static_cast<uint8_t>(TicketStatus::kDone)) {
      ++s.completed;
    } else if (q.completed && q.status == static_cast<uint8_t>(TicketStatus::kTimedOut)) {
      ++s.timed_out;
    }
    s.samples += q.samples;
    chain += HexU64(q.stream_hash);
  }
  s.stream_hash = Fnv1a64(chain);
  s.service_cycles = service.ServiceNowCycles();
  const PlanCacheStats& cache = service.plan_cache().stats();
  s.cache_hits = cache.hits;
  s.cache_misses = cache.misses;
  s.patched_hits = cache.patched_hits;
  s.tier_swaps = cache.tier_swaps;
  s.tiers = SummarizeTierTimeline(service.windows(), service.tier_controller());
  for (const auto& [fingerprint, plan] : service.fleet_profile().plans()) {
    TraceFingerprintSummary fp;
    fp.structure = fingerprint;
    fp.name = plan.name;
    fp.executions = plan.executions;
    fp.execute_cycles = plan.execute_cycles;
    for (const auto& [op, cost] : plan.operators) {
      if (cost.samples > fp.top_operator_samples) {  // Map order breaks ties by operator id.
        fp.top_operator_samples = cost.samples;
        fp.top_operator = cost.label;
      }
    }
    const WindowRollup rollup = service.windows().RollUp(fingerprint);
    fp.latency_p50 = rollup.latency_p50;
    fp.latency_p95 = rollup.latency_p95;
    fp.latency_max = rollup.latency_max;
    s.fingerprints.push_back(std::move(fp));
  }
  trace_.summary = std::move(s);
  return trace_;
}

}  // namespace dfp
