#include "src/ir/printer.h"

#include <bit>

#include "src/util/str.h"

namespace dfp {
namespace {

std::string ValueToString(const Value& value, IrType type) {
  switch (value.kind) {
    case Value::Kind::kNone:
      return "";
    case Value::Kind::kVReg:
      return StrFormat("%%%u", value.vreg);
    case Value::Kind::kImm:
      if (type == IrType::kF64) {
        return StrFormat("%g", std::bit_cast<double>(value.imm));
      }
      return StrFormat("%lld", static_cast<long long>(value.imm));
  }
  return "?";
}

std::string BlockName(const IrFunction& function, uint32_t block) {
  if (block == kNoBlock) {
    return "?";
  }
  return function.block(block).name;
}

}  // namespace

std::string InstrToString(const IrInstr& instr, const IrFunction& function) {
  std::string out;
  auto value = [&](const Value& v) { return ValueToString(v, instr.type); };
  switch (instr.op) {
    case Opcode::kBr:
      out = StrFormat("br %s", BlockName(function, instr.target0).c_str());
      break;
    case Opcode::kCondBr:
      out = StrFormat("condbr %s, %s, %s", value(instr.a).c_str(),
                      BlockName(function, instr.target0).c_str(),
                      BlockName(function, instr.target1).c_str());
      break;
    case Opcode::kRet:
      out = instr.a.IsNone() ? "ret" : StrFormat("ret %s", value(instr.a).c_str());
      break;
    case Opcode::kCall: {
      std::string args;
      for (const Value& arg : instr.args) {
        if (!args.empty()) {
          args += ", ";
        }
        args += ValueToString(arg, IrType::kI64);
      }
      if (instr.HasDst()) {
        out = StrFormat("%%%u = call fn%u(%s)", instr.dst, instr.callee, args.c_str());
      } else {
        out = StrFormat("call fn%u(%s)", instr.callee, args.c_str());
      }
      break;
    }
    case Opcode::kStore1:
    case Opcode::kStore2:
    case Opcode::kStore4:
    case Opcode::kStore8:
      out = StrFormat("%s %s, [%s + %d]", OpcodeName(instr.op), value(instr.a).c_str(),
                      ValueToString(instr.b, IrType::kI64).c_str(), instr.disp);
      break;
    case Opcode::kLoad1:
    case Opcode::kLoad2:
    case Opcode::kLoad4:
    case Opcode::kLoad8:
      out = StrFormat("%%%u = %s [%s + %d]", instr.dst, OpcodeName(instr.op),
                      value(instr.a).c_str(), instr.disp);
      break;
    case Opcode::kSelect:
      out = StrFormat("%%%u = select %s, %s, %s", instr.dst, value(instr.a).c_str(),
                      value(instr.b).c_str(), value(instr.c).c_str());
      break;
    case Opcode::kSetTag:
      out = StrFormat("settag %s", value(instr.a).c_str());
      break;
    case Opcode::kGetTag:
      out = StrFormat("%%%u = gettag", instr.dst);
      break;
    default: {
      std::string operands = value(instr.a);
      if (!instr.b.IsNone()) {
        operands += ", " + value(instr.b);
      }
      if (instr.HasDst()) {
        out = StrFormat("%%%u = %s %s", instr.dst, OpcodeName(instr.op), operands.c_str());
      } else {
        out = StrFormat("%s %s", OpcodeName(instr.op), operands.c_str());
      }
      break;
    }
  }
  if (!instr.comment.empty()) {
    out += "  ; " + instr.comment;
  }
  return out;
}

IrListing PrintFunction(const IrFunction& function) {
  IrListing listing;
  std::string header = StrFormat("func %s(", function.name().c_str());
  for (uint8_t i = 0; i < function.num_args(); ++i) {
    header += StrFormat("%s%%%u", i ? ", " : "", i);
  }
  header += ") {";
  listing.lines.push_back({header, kNoIrId, kNoBlock});
  for (uint32_t b = 0; b < function.blocks().size(); ++b) {
    const IrBlock& block = function.block(b);
    listing.lines.push_back({block.name + ":", kNoIrId, b});
    for (const IrInstr& instr : block.instrs) {
      listing.lines.push_back({"  " + InstrToString(instr, function), instr.id, b});
    }
  }
  listing.lines.push_back({"}", kNoIrId, kNoBlock});
  return listing;
}

std::string IrListing::ToString() const {
  std::string out;
  for (const IrListingLine& line : lines) {
    out += line.text;
    out += '\n';
  }
  return out;
}

}  // namespace dfp
