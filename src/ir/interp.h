// Reference interpreter for VIR functions.
//
// Executes a function directly on virtual registers against a VMem, with calls dispatched through
// an environment callback. It has no cost model and is used as the correctness oracle for the
// backend: optimization passes and register allocation must not change what a function computes.
#ifndef DFP_SRC_IR_INTERP_H_
#define DFP_SRC_IR_INTERP_H_

#include <cstdint>
#include <functional>
#include <span>

#include "src/ir/instr.h"
#include "src/vcpu/vmem.h"

namespace dfp {

struct IrInterpEnv {
  // Dispatches kCall instructions; may be empty if the function performs no calls.
  std::function<uint64_t(uint32_t callee, std::span<const uint64_t> args)> call;
  // Tag register state shared with the caller (Register Tagging semantics).
  uint64_t tag = 0;
};

// Runs `function` with the given arguments. Returns the kRet value (0 for void returns).
// Execution is bounded by `max_steps` to keep property tests safe against accidental
// non-termination; exceeding it aborts.
uint64_t InterpretIr(const IrFunction& function, std::span<const uint64_t> args, VMem& mem,
                     IrInterpEnv* env = nullptr, uint64_t max_steps = 100'000'000);

}  // namespace dfp

#endif  // DFP_SRC_IR_INTERP_H_
