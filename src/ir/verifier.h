// Structural checks on VIR functions: run after code generation and after every optimization
// pass in debug-heavy paths, and extensively in tests.
#ifndef DFP_SRC_IR_VERIFIER_H_
#define DFP_SRC_IR_VERIFIER_H_

#include <string>
#include <vector>

#include "src/ir/instr.h"

namespace dfp {

// Returns a list of problems; empty means the function is well-formed.
std::vector<std::string> VerifyFunction(const IrFunction& function);

}  // namespace dfp

#endif  // DFP_SRC_IR_VERIFIER_H_
