// IRBuilder: the single funnel through which all VIR instructions are created.
//
// As in the paper's Umbra prototype, instruction generation is funnelled through one code
// location, which is where the profiling integration hooks in: an observer is invoked for every
// appended instruction so the Tagging Dictionary can link it to the active pipeline task.
#ifndef DFP_SRC_IR_BUILDER_H_
#define DFP_SRC_IR_BUILDER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/ir/instr.h"
#include "src/util/check.h"

namespace dfp {

// Allocates query-unique instruction ids across all functions of one compilation.
class IrIdAllocator {
 public:
  // `start` offsets the id space; runtime functions use a high base so their ids can never be
  // confused with a query's ids.
  explicit IrIdAllocator(uint32_t start = 0) : start_(start), next_(start) {}

  uint32_t Next() { return next_++; }
  uint32_t count() const { return next_ - start_; }

 private:
  uint32_t start_;
  uint32_t next_;
};

class IrBuilder {
 public:
  using InstrObserver = std::function<void(const IrInstr&)>;

  IrBuilder(IrFunction* function, IrIdAllocator* ids) : function_(function), ids_(ids) {
    DFP_CHECK(function != nullptr && ids != nullptr);
  }

  // Registers a callback invoked for every appended instruction (profiling integration).
  void SetObserver(InstrObserver observer) { observer_ = std::move(observer); }

  uint32_t CreateBlock(std::string name) { return function_->AddBlock(std::move(name)); }
  void SetInsertPoint(uint32_t block) { current_block_ = block; }
  uint32_t current_block() const { return current_block_; }
  IrFunction& function() { return *function_; }

  // --- Emission helpers. Value-producing helpers return the destination virtual register. ---

  uint32_t Const(int64_t value, uint32_t literal_slot = kNoLiteralSlot);
  uint32_t ConstF(double value, uint32_t literal_slot = kNoLiteralSlot);
  uint32_t Unary(Opcode op, Value a, IrType type = IrType::kI64);
  uint32_t Binary(Opcode op, Value a, Value b, IrType type = IrType::kI64);
  uint32_t Crc32(Value seed, Value value);
  uint32_t Select(Value cond, Value a, Value b, IrType type = IrType::kI64);
  uint32_t Load(Opcode op, Value addr, int32_t disp = 0, std::string comment = "");
  void Store(Opcode op, Value value, Value addr, int32_t disp = 0, std::string comment = "");
  void Br(uint32_t target);
  void CondBr(Value cond, uint32_t if_true, uint32_t if_false);
  // `has_result` selects whether the call produces a value.
  uint32_t Call(uint32_t callee, std::vector<Value> args, bool has_result,
                std::string comment = "");
  void Ret(Value value = Value::None());
  uint32_t GetTag();
  void SetTag(Value value);

  // Convenience integer forms.
  uint32_t Add(Value a, Value b) { return Binary(Opcode::kAdd, a, b); }
  uint32_t Sub(Value a, Value b) { return Binary(Opcode::kSub, a, b); }
  uint32_t Mul(Value a, Value b) { return Binary(Opcode::kMul, a, b); }
  uint32_t Div(Value a, Value b) { return Binary(Opcode::kDiv, a, b); }
  uint32_t CmpEq(Value a, Value b) { return Binary(Opcode::kCmpEq, a, b); }
  uint32_t CmpNe(Value a, Value b) { return Binary(Opcode::kCmpNe, a, b); }
  uint32_t CmpLt(Value a, Value b) { return Binary(Opcode::kCmpLt, a, b); }

  // Non-SSA in-place updates: write the result of an operation into an existing register
  // (loop counters, accumulators).
  void Assign(uint32_t dst, Opcode op, Value a, Value b = Value::None(),
              IrType type = IrType::kI64);
  void Copy(uint32_t dst, Value src, IrType type = IrType::kI64);

  // Computes the standard key-hash sequence (two crc32 lanes, rotate, xor, multiply) exactly as
  // HashKey() does host-side.
  uint32_t EmitHash(Value key);

  // Attaches a comment to the most recently emitted instruction.
  void AnnotateLast(std::string comment);

 private:
  IrInstr& Append(IrInstr instr);

  IrFunction* function_;
  IrIdAllocator* ids_;
  InstrObserver observer_;
  uint32_t current_block_ = 0;
};

}  // namespace dfp

#endif  // DFP_SRC_IR_BUILDER_H_
