// Textual rendering of VIR functions, LLVM-flavoured for familiarity.
//
// The listing retains per-line instruction ids so that profiling reports can annotate each line
// with sample counts and operator attribution (the paper's Figure 6b view).
#ifndef DFP_SRC_IR_PRINTER_H_
#define DFP_SRC_IR_PRINTER_H_

#include <string>
#include <vector>

#include "src/ir/instr.h"

namespace dfp {

struct IrListingLine {
  std::string text;
  uint32_t instr_id = 0xFFFFFFFFu;  // kNoIrId for labels and headers.
  uint32_t block = kNoBlock;
};

struct IrListing {
  std::vector<IrListingLine> lines;

  std::string ToString() const;
};

IrListing PrintFunction(const IrFunction& function);

// One-line rendering of a single instruction (used in listings and error messages).
std::string InstrToString(const IrInstr& instr, const IrFunction& function);

}  // namespace dfp

#endif  // DFP_SRC_IR_PRINTER_H_
