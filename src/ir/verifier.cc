#include "src/ir/verifier.h"

#include <set>

#include "src/util/str.h"

namespace dfp {
namespace {

bool ValidOperand(const Value& value, const IrFunction& function) {
  return !value.IsReg() || value.vreg < function.next_vreg();
}

}  // namespace

std::vector<std::string> VerifyFunction(const IrFunction& function) {
  std::vector<std::string> problems;
  auto problem = [&](const std::string& text) { problems.push_back(text); };

  if (function.blocks().empty()) {
    problem("function has no blocks");
    return problems;
  }
  std::set<uint32_t> seen_ids;
  for (uint32_t b = 0; b < function.blocks().size(); ++b) {
    const IrBlock& block = function.block(b);
    if (block.instrs.empty()) {
      problem(StrFormat("block %s is empty", block.name.c_str()));
      continue;
    }
    if (!IsTerminator(block.instrs.back().op)) {
      problem(StrFormat("block %s does not end in a terminator", block.name.c_str()));
    }
    for (size_t i = 0; i < block.instrs.size(); ++i) {
      const IrInstr& instr = block.instrs[i];
      const std::string where = StrFormat("%s[%zu]", block.name.c_str(), i);
      if (IsTerminator(instr.op) && i + 1 != block.instrs.size()) {
        problem(where + ": terminator in the middle of a block");
      }
      if (instr.op == Opcode::kLoadSpill || instr.op == Opcode::kStoreSpill) {
        problem(where + ": machine-only opcode in VIR");
      }
      if (!seen_ids.insert(instr.id).second) {
        problem(where + StrFormat(": duplicate instruction id %u", instr.id));
      }
      if (instr.HasDst() && instr.dst >= function.next_vreg()) {
        problem(where + ": destination register out of range");
      }
      if (!ValidOperand(instr.a, function) || !ValidOperand(instr.b, function) ||
          !ValidOperand(instr.c, function)) {
        problem(where + ": operand register out of range");
      }
      for (const Value& arg : instr.args) {
        if (!ValidOperand(arg, function)) {
          problem(where + ": call argument register out of range");
        }
      }
      if (instr.op == Opcode::kBr || instr.op == Opcode::kCondBr) {
        if (instr.target0 >= function.blocks().size()) {
          problem(where + ": invalid branch target");
        }
        if (instr.op == Opcode::kCondBr && instr.target1 >= function.blocks().size()) {
          problem(where + ": invalid fall-through target");
        }
      }
      if (instr.op == Opcode::kCall && instr.callee == kNoIrCallee) {
        problem(where + ": call without callee");
      }
      if (IsLoad(instr.op) && !instr.HasDst()) {
        problem(where + ": load without destination");
      }
      if (IsStore(instr.op) && instr.b.IsNone()) {
        problem(where + ": store without address operand");
      }
    }
  }
  return problems;
}

}  // namespace dfp
