#include "src/ir/interp.h"

#include <bit>
#include <vector>

#include "src/util/check.h"
#include "src/util/hash.h"

namespace dfp {
namespace {

inline int64_t S(uint64_t v) { return static_cast<int64_t>(v); }
inline double D(uint64_t v) { return std::bit_cast<double>(v); }
inline uint64_t FromD(double v) { return std::bit_cast<uint64_t>(v); }

inline uint64_t RotateRight(uint64_t value, uint64_t amount) {
  amount &= 63u;
  if (amount == 0) {
    return value;
  }
  return (value >> amount) | (value << (64 - amount));
}

}  // namespace

uint64_t InterpretIr(const IrFunction& function, std::span<const uint64_t> args, VMem& mem,
                     IrInterpEnv* env, uint64_t max_steps) {
  std::vector<uint64_t> regs(function.next_vreg(), 0);
  DFP_CHECK(args.size() == function.num_args());
  for (size_t i = 0; i < args.size(); ++i) {
    regs[i] = args[i];
  }
  IrInterpEnv local_env;
  if (env == nullptr) {
    env = &local_env;
  }

  auto value_of = [&](const Value& v) -> uint64_t {
    switch (v.kind) {
      case Value::Kind::kNone:
        return 0;
      case Value::Kind::kVReg:
        return regs[v.vreg];
      case Value::Kind::kImm:
        return static_cast<uint64_t>(v.imm);
    }
    return 0;
  };

  uint32_t block = 0;
  size_t index = 0;
  uint64_t steps = 0;
  while (true) {
    DFP_CHECK(++steps <= max_steps);
    const IrBlock& current = function.block(block);
    DFP_CHECK(index < current.instrs.size());
    const IrInstr& in = current.instrs[index++];
    const uint64_t a = value_of(in.a);
    const uint64_t b = value_of(in.b);
    switch (in.op) {
      case Opcode::kConst:
      case Opcode::kMov:
        regs[in.dst] = a;
        break;
      case Opcode::kAdd:
        regs[in.dst] = a + b;
        break;
      case Opcode::kSub:
        regs[in.dst] = a - b;
        break;
      case Opcode::kMul:
        regs[in.dst] = a * b;
        break;
      case Opcode::kDiv:
        DFP_CHECK(b != 0);
        regs[in.dst] = static_cast<uint64_t>(S(a) / S(b));
        break;
      case Opcode::kRem:
        DFP_CHECK(b != 0);
        regs[in.dst] = static_cast<uint64_t>(S(a) % S(b));
        break;
      case Opcode::kAnd:
        regs[in.dst] = a & b;
        break;
      case Opcode::kOr:
        regs[in.dst] = a | b;
        break;
      case Opcode::kXor:
        regs[in.dst] = a ^ b;
        break;
      case Opcode::kShl:
        regs[in.dst] = a << (b & 63);
        break;
      case Opcode::kShr:
        regs[in.dst] = a >> (b & 63);
        break;
      case Opcode::kRotr:
        regs[in.dst] = RotateRight(a, b);
        break;
      case Opcode::kNot:
        regs[in.dst] = ~a;
        break;
      case Opcode::kNeg:
        regs[in.dst] = static_cast<uint64_t>(-S(a));
        break;
      case Opcode::kCmpEq:
        regs[in.dst] = a == b;
        break;
      case Opcode::kCmpNe:
        regs[in.dst] = a != b;
        break;
      case Opcode::kCmpLt:
        regs[in.dst] = S(a) < S(b);
        break;
      case Opcode::kCmpLe:
        regs[in.dst] = S(a) <= S(b);
        break;
      case Opcode::kCmpGt:
        regs[in.dst] = S(a) > S(b);
        break;
      case Opcode::kCmpGe:
        regs[in.dst] = S(a) >= S(b);
        break;
      case Opcode::kFAdd:
        regs[in.dst] = FromD(D(a) + D(b));
        break;
      case Opcode::kFSub:
        regs[in.dst] = FromD(D(a) - D(b));
        break;
      case Opcode::kFMul:
        regs[in.dst] = FromD(D(a) * D(b));
        break;
      case Opcode::kFDiv:
        regs[in.dst] = FromD(D(a) / D(b));
        break;
      case Opcode::kFNeg:
        regs[in.dst] = FromD(-D(a));
        break;
      case Opcode::kFCmpEq:
        regs[in.dst] = D(a) == D(b);
        break;
      case Opcode::kFCmpNe:
        regs[in.dst] = D(a) != D(b);
        break;
      case Opcode::kFCmpLt:
        regs[in.dst] = D(a) < D(b);
        break;
      case Opcode::kFCmpLe:
        regs[in.dst] = D(a) <= D(b);
        break;
      case Opcode::kFCmpGt:
        regs[in.dst] = D(a) > D(b);
        break;
      case Opcode::kFCmpGe:
        regs[in.dst] = D(a) >= D(b);
        break;
      case Opcode::kSiToFp:
        regs[in.dst] = FromD(static_cast<double>(S(a)));
        break;
      case Opcode::kFpToSi:
        regs[in.dst] = static_cast<uint64_t>(static_cast<int64_t>(D(a)));
        break;
      case Opcode::kCrc32:
        regs[in.dst] = Crc32u64(static_cast<uint32_t>(a), b);
        break;
      case Opcode::kLoad1:
        regs[in.dst] = mem.Read<uint8_t>(a + static_cast<uint64_t>(static_cast<int64_t>(in.disp)));
        break;
      case Opcode::kLoad2:
        regs[in.dst] = mem.Read<uint16_t>(a + static_cast<uint64_t>(static_cast<int64_t>(in.disp)));
        break;
      case Opcode::kLoad4:
        regs[in.dst] = static_cast<uint64_t>(static_cast<int64_t>(
            mem.Read<int32_t>(a + static_cast<uint64_t>(static_cast<int64_t>(in.disp)))));
        break;
      case Opcode::kLoad8:
        regs[in.dst] = mem.Read<uint64_t>(a + static_cast<uint64_t>(static_cast<int64_t>(in.disp)));
        break;
      case Opcode::kStore1:
        mem.Write<uint8_t>(b + static_cast<uint64_t>(static_cast<int64_t>(in.disp)),
                           static_cast<uint8_t>(a));
        break;
      case Opcode::kStore2:
        mem.Write<uint16_t>(b + static_cast<uint64_t>(static_cast<int64_t>(in.disp)),
                            static_cast<uint16_t>(a));
        break;
      case Opcode::kStore4:
        mem.Write<uint32_t>(b + static_cast<uint64_t>(static_cast<int64_t>(in.disp)),
                            static_cast<uint32_t>(a));
        break;
      case Opcode::kStore8:
        mem.Write<uint64_t>(b + static_cast<uint64_t>(static_cast<int64_t>(in.disp)), a);
        break;
      case Opcode::kSelect:
        regs[in.dst] = a != 0 ? b : value_of(in.c);
        break;
      case Opcode::kBr:
        block = in.target0;
        index = 0;
        break;
      case Opcode::kCondBr:
        block = a != 0 ? in.target0 : in.target1;
        index = 0;
        break;
      case Opcode::kCall: {
        DFP_CHECK(env->call != nullptr);
        std::vector<uint64_t> call_args;
        call_args.reserve(in.args.size());
        for (const Value& arg : in.args) {
          call_args.push_back(value_of(arg));
        }
        uint64_t result = env->call(in.callee, call_args);
        if (in.HasDst()) {
          regs[in.dst] = result;
        }
        break;
      }
      case Opcode::kRet:
        return in.a.IsNone() ? 0 : a;
      case Opcode::kGetTag:
        regs[in.dst] = env->tag;
        break;
      case Opcode::kSetTag:
        env->tag = a;
        break;
      case Opcode::kLoadSpill:
      case Opcode::kStoreSpill:
        DFP_UNREACHABLE();
    }
  }
}

}  // namespace dfp
