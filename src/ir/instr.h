// VIR: the engine's Machine IR. Non-SSA, typed, register-based, with basic blocks.
//
// Every instruction carries a query-unique id that serves as the Tagging Dictionary key (Log B
// maps these ids to pipeline tasks) and that survives into machine code as debug info.
#ifndef DFP_SRC_IR_INSTR_H_
#define DFP_SRC_IR_INSTR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/opcode.h"

namespace dfp {

inline constexpr uint32_t kNoVReg = 0xFFFFFFFFu;
inline constexpr uint32_t kNoBlock = 0xFFFFFFFFu;
inline constexpr uint32_t kNoIrCallee = 0xFFFFFFFFu;

// Immediates carrying a literal slot are runtime parameters of the plan (filter constants,
// IN-list members, LIMIT counts, LIKE pattern ids): the optimizer must not fold them into
// derived constants, and the emitter records every machine-code position they reach so a cached
// compiled plan can be re-bound to new literals by patching immediates (src/tiering/).
inline constexpr uint32_t kNoLiteralSlot = 0xFFFFFFFFu;

// An operand: nothing, a virtual register, or an immediate.
struct Value {
  enum class Kind : uint8_t { kNone, kVReg, kImm };
  Kind kind = Kind::kNone;
  uint32_t vreg = kNoVReg;
  int64_t imm = 0;
  uint32_t literal_slot = kNoLiteralSlot;  // Plan-literal ordinal; kNoLiteralSlot for plain imms.

  static Value None() { return Value(); }
  static Value Reg(uint32_t vreg) {
    Value v;
    v.kind = Kind::kVReg;
    v.vreg = vreg;
    return v;
  }
  static Value Imm(int64_t imm) {
    Value v;
    v.kind = Kind::kImm;
    v.imm = imm;
    return v;
  }
  // A parameterized immediate: behaves like Imm at runtime, but is pinned to literal slot
  // `slot` so it survives optimization unfolded and is patchable in emitted code.
  static Value Param(int64_t imm, uint32_t slot) {
    Value v = Imm(imm);
    v.literal_slot = slot;
    return v;
  }
  static Value ImmF(double value);

  bool IsReg() const { return kind == Kind::kVReg; }
  bool IsImm() const { return kind == Kind::kImm; }
  bool IsNone() const { return kind == Kind::kNone; }
  bool IsParam() const { return IsImm() && literal_slot != kNoLiteralSlot; }
};

struct IrInstr {
  Opcode op = Opcode::kConst;
  IrType type = IrType::kI64;
  uint32_t id = 0;  // Query-unique id: the Tagging Dictionary key for this instruction.
  uint32_t dst = kNoVReg;
  Value a;
  Value b;
  Value c;
  int32_t disp = 0;                  // Displacement for memory operations.
  uint32_t target0 = kNoBlock;       // Branch targets (block ids).
  uint32_t target1 = kNoBlock;
  uint32_t callee = kNoIrCallee;     // Global function id for kCall.
  std::vector<Value> args;           // Call arguments.
  std::string comment;               // Optional annotation shown in listings.

  bool HasDst() const { return dst != kNoVReg; }
};

struct IrBlock {
  std::string name;
  std::vector<IrInstr> instrs;

  bool IsTerminated() const { return !instrs.empty() && IsTerminator(instrs.back().op); }
};

class IrFunction {
 public:
  IrFunction(std::string name, uint8_t num_args) : name_(std::move(name)), num_args_(num_args) {
    next_vreg_ = num_args;  // Arguments occupy v0..v(n-1).
  }

  uint32_t AddBlock(std::string name) {
    blocks_.push_back(IrBlock{std::move(name), {}});
    return static_cast<uint32_t>(blocks_.size() - 1);
  }

  uint32_t NewReg() { return next_vreg_++; }

  const std::string& name() const { return name_; }
  uint8_t num_args() const { return num_args_; }
  uint32_t next_vreg() const { return next_vreg_; }
  std::vector<IrBlock>& blocks() { return blocks_; }
  const std::vector<IrBlock>& blocks() const { return blocks_; }
  IrBlock& block(uint32_t id) { return blocks_[id]; }
  const IrBlock& block(uint32_t id) const { return blocks_[id]; }

  // Total instruction count across blocks.
  size_t InstrCount() const {
    size_t count = 0;
    for (const IrBlock& block : blocks_) {
      count += block.instrs.size();
    }
    return count;
  }

 private:
  std::string name_;
  uint8_t num_args_;
  uint32_t next_vreg_;
  std::vector<IrBlock> blocks_;
};

}  // namespace dfp

#endif  // DFP_SRC_IR_INSTR_H_
