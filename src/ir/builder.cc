#include "src/ir/builder.h"

#include <bit>

#include "src/util/hash.h"

namespace dfp {

Value Value::ImmF(double value) { return Imm(std::bit_cast<int64_t>(value)); }

IrInstr& IrBuilder::Append(IrInstr instr) {
  instr.id = ids_->Next();
  IrBlock& block = function_->block(current_block_);
  DFP_CHECK(!block.IsTerminated());
  block.instrs.push_back(std::move(instr));
  IrInstr& appended = block.instrs.back();
  if (observer_) {
    observer_(appended);
  }
  return appended;
}

uint32_t IrBuilder::Const(int64_t value, uint32_t literal_slot) {
  IrInstr instr;
  instr.op = Opcode::kConst;
  instr.dst = function_->NewReg();
  instr.a = Value::Param(value, literal_slot);
  return Append(std::move(instr)).dst;
}

uint32_t IrBuilder::ConstF(double value, uint32_t literal_slot) {
  IrInstr instr;
  instr.op = Opcode::kConst;
  instr.type = IrType::kF64;
  instr.dst = function_->NewReg();
  instr.a = Value::Param(std::bit_cast<int64_t>(value), literal_slot);
  return Append(std::move(instr)).dst;
}

uint32_t IrBuilder::Unary(Opcode op, Value a, IrType type) {
  IrInstr instr;
  instr.op = op;
  instr.type = type;
  instr.dst = function_->NewReg();
  instr.a = a;
  return Append(std::move(instr)).dst;
}

uint32_t IrBuilder::Binary(Opcode op, Value a, Value b, IrType type) {
  IrInstr instr;
  instr.op = op;
  instr.type = type;
  instr.dst = function_->NewReg();
  instr.a = a;
  instr.b = b;
  return Append(std::move(instr)).dst;
}

uint32_t IrBuilder::Crc32(Value seed, Value value) {
  return Binary(Opcode::kCrc32, seed, value);
}

uint32_t IrBuilder::Select(Value cond, Value a, Value b, IrType type) {
  IrInstr instr;
  instr.op = Opcode::kSelect;
  instr.type = type;
  instr.dst = function_->NewReg();
  instr.a = cond;
  instr.b = a;
  instr.c = b;
  return Append(std::move(instr)).dst;
}

uint32_t IrBuilder::Load(Opcode op, Value addr, int32_t disp, std::string comment) {
  DFP_CHECK(IsLoad(op));
  IrInstr instr;
  instr.op = op;
  instr.dst = function_->NewReg();
  instr.a = addr;
  instr.disp = disp;
  instr.comment = std::move(comment);
  return Append(std::move(instr)).dst;
}

void IrBuilder::Store(Opcode op, Value value, Value addr, int32_t disp, std::string comment) {
  DFP_CHECK(IsStore(op));
  IrInstr instr;
  instr.op = op;
  instr.a = value;
  instr.b = addr;
  instr.disp = disp;
  instr.comment = std::move(comment);
  Append(std::move(instr));
}

void IrBuilder::Br(uint32_t target) {
  IrInstr instr;
  instr.op = Opcode::kBr;
  instr.target0 = target;
  Append(std::move(instr));
}

void IrBuilder::CondBr(Value cond, uint32_t if_true, uint32_t if_false) {
  IrInstr instr;
  instr.op = Opcode::kCondBr;
  instr.a = cond;
  instr.target0 = if_true;
  instr.target1 = if_false;
  Append(std::move(instr));
}

uint32_t IrBuilder::Call(uint32_t callee, std::vector<Value> args, bool has_result,
                         std::string comment) {
  IrInstr instr;
  instr.op = Opcode::kCall;
  instr.callee = callee;
  instr.args = std::move(args);
  instr.comment = std::move(comment);
  if (has_result) {
    instr.dst = function_->NewReg();
  }
  return Append(std::move(instr)).dst;
}

void IrBuilder::Ret(Value value) {
  IrInstr instr;
  instr.op = Opcode::kRet;
  instr.a = value;
  Append(std::move(instr));
}

uint32_t IrBuilder::GetTag() {
  IrInstr instr;
  instr.op = Opcode::kGetTag;
  instr.dst = function_->NewReg();
  return Append(std::move(instr)).dst;
}

void IrBuilder::SetTag(Value value) {
  IrInstr instr;
  instr.op = Opcode::kSetTag;
  instr.a = value;
  Append(std::move(instr));
}

void IrBuilder::Assign(uint32_t dst, Opcode op, Value a, Value b, IrType type) {
  IrInstr instr;
  instr.op = op;
  instr.type = type;
  instr.dst = dst;
  instr.a = a;
  instr.b = b;
  Append(std::move(instr));
}

void IrBuilder::Copy(uint32_t dst, Value src, IrType type) {
  Assign(dst, Opcode::kMov, src, Value::None(), type);
}

uint32_t IrBuilder::EmitHash(Value key) {
  uint32_t lane1 = Crc32(Value::Imm(static_cast<int64_t>(kHashSeed1)), key);
  uint32_t lane2 = Crc32(Value::Imm(static_cast<int64_t>(kHashSeed2)), key);
  uint32_t rotated = Binary(Opcode::kRotr, Value::Reg(lane2), Value::Imm(32));
  uint32_t mixed = Binary(Opcode::kXor, Value::Reg(lane1), Value::Reg(rotated));
  return Binary(Opcode::kMul, Value::Reg(mixed), Value::Imm(static_cast<int64_t>(kHashMultiplier)));
}

void IrBuilder::AnnotateLast(std::string comment) {
  IrBlock& block = function_->block(current_block_);
  DFP_CHECK(!block.instrs.empty());
  block.instrs.back().comment = std::move(comment);
}

}  // namespace dfp
