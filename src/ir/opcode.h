// Operation set shared by VIR (the engine's Machine IR) and the VCPU's machine code.
//
// Both levels use the same operations; they differ in operand model. VIR operands are unbounded
// virtual registers, machine operands are 16 physical registers plus spill slots. The two
// machine-only opcodes (spill traffic) are rejected by the IR verifier.
#ifndef DFP_SRC_IR_OPCODE_H_
#define DFP_SRC_IR_OPCODE_H_

#include <cstdint>

namespace dfp {

enum class Opcode : uint8_t {
  // Constants and moves.
  kConst,  // dst = imm (bit pattern; type distinguishes i64/f64)
  kMov,    // dst = a

  // 64-bit integer arithmetic and bit operations.
  kAdd,
  kSub,
  kMul,
  kDiv,  // Signed. Division by zero traps the VCPU.
  kRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,   // Logical right shift.
  kRotr,  // Rotate right.
  kNot,
  kNeg,

  // Integer comparisons producing 0/1 (signed).
  kCmpEq,
  kCmpNe,
  kCmpLt,
  kCmpLe,
  kCmpGt,
  kCmpGe,

  // IEEE double arithmetic (values are bit-cast in 64-bit registers).
  kFAdd,
  kFSub,
  kFMul,
  kFDiv,
  kFNeg,
  kFCmpEq,
  kFCmpNe,
  kFCmpLt,
  kFCmpLe,
  kFCmpGt,
  kFCmpGe,
  kSiToFp,
  kFpToSi,

  // Hashing: dst = crc32c(low 32 bits of a as seed, b), zero-extended to 64 bits.
  kCrc32,

  // Memory. Effective address = a + disp. Narrow loads: kLoad4 sign-extends, kLoad1/kLoad2
  // zero-extend. Stores truncate.
  kLoad1,
  kLoad2,
  kLoad4,
  kLoad8,
  kStore1,  // a = value, b = address
  kStore2,
  kStore4,
  kStore8,

  // dst = a ? b : c.
  kSelect,

  // Control flow. kCondBr: a = condition, target0 = taken, target1 = fall-through.
  kBr,
  kCondBr,
  kCall,  // dst (optional) = call callee(args...)
  kRet,   // Optional value in a.

  // Register Tagging support. The tag register is architecturally global (shared across call
  // frames, like a SPARC global register), which is what lets a callee-side sample observe the
  // caller's tag.
  kGetTag,  // dst = tag register
  kSetTag,  // tag register = a (register or immediate)

  // Machine level only: spill slot traffic inserted by the register allocator.
  kLoadSpill,   // dst = spill[slot]
  kStoreSpill,  // spill[slot] = a
};

enum class IrType : uint8_t { kI64, kF64 };

// Sentinel for "no originating IR instruction" in debug info and listings.
inline constexpr uint32_t kNoIrId = 0xFFFFFFFFu;

// Short mnemonic for printing ("add", "load4", ...).
const char* OpcodeName(Opcode op);

inline bool IsLoad(Opcode op) {
  return op == Opcode::kLoad1 || op == Opcode::kLoad2 || op == Opcode::kLoad4 ||
         op == Opcode::kLoad8;
}

inline bool IsStore(Opcode op) {
  return op == Opcode::kStore1 || op == Opcode::kStore2 || op == Opcode::kStore4 ||
         op == Opcode::kStore8;
}

inline bool IsTerminator(Opcode op) {
  return op == Opcode::kBr || op == Opcode::kCondBr || op == Opcode::kRet;
}

// Number of bytes accessed by a load/store opcode.
inline uint32_t AccessBytes(Opcode op) {
  switch (op) {
    case Opcode::kLoad1:
    case Opcode::kStore1:
      return 1;
    case Opcode::kLoad2:
    case Opcode::kStore2:
      return 2;
    case Opcode::kLoad4:
    case Opcode::kStore4:
      return 4;
    default:
      return 8;
  }
}

}  // namespace dfp

#endif  // DFP_SRC_IR_OPCODE_H_
