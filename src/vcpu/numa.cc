#include "src/vcpu/numa.h"

#include <algorithm>

#include "src/util/check.h"

namespace dfp {

void NumaMap::AddPartitioned(VAddr base, uint64_t size) {
  DFP_CHECK(!sealed_);
  if (size == 0) {
    return;
  }
  spans_.push_back(Span{base, size, false});
}

void NumaMap::AddPartitionedCustom(VAddr base, uint64_t size, PartitionMap map) {
  DFP_CHECK(!sealed_);
  if (size == 0) {
    return;
  }
  DFP_CHECK(!map.empty() && map.back().end_frac == kPlacementDenom);
  Span span{base, size, false, static_cast<int32_t>(customs_.size())};
  customs_.push_back(std::move(map));
  spans_.push_back(span);
}

void NumaMap::AddInterleaved(VAddr base, uint64_t size) {
  DFP_CHECK(!sealed_);
  if (size == 0) {
    return;
  }
  spans_.push_back(Span{base, size, true});
}

void NumaMap::AddPartitionedExtents(const VMem& mem) {
  for (const MemExtent& extent : mem.partitioned_extents()) {
    const PartitionMap* placement = mem.ExtentPlacement(extent.base);
    if (placement != nullptr) {
      AddPartitionedCustom(extent.base, extent.size, *placement);
    } else {
      AddPartitioned(extent.base, extent.size);
    }
  }
}

void NumaMap::AddCrossNode(VAddr base, uint64_t size, uint8_t machine_node) {
  DFP_CHECK(!sealed_);
  DFP_CHECK(machine_node != kLocalMachineNode);
  if (size == 0) {
    return;
  }
  Span span{base, size, false, -1, machine_node};
  spans_.push_back(span);
}

void NumaMap::Seal() {
  std::sort(spans_.begin(), spans_.end(),
            [](const Span& a, const Span& b) { return a.base < b.base; });
  for (size_t i = 1; i < spans_.size(); ++i) {
    DFP_CHECK(spans_[i - 1].base + spans_[i - 1].size <= spans_[i].base);
  }
  sealed_ = true;
}

uint8_t NumaMap::NodeOf(VAddr addr) const {
  DFP_CHECK(sealed_);
  // Last span whose base is <= addr (spans are sorted and disjoint).
  auto it = std::upper_bound(spans_.begin(), spans_.end(), addr,
                             [](VAddr a, const Span& span) { return a < span.base; });
  if (it == spans_.begin()) {
    return kNoNumaNode;
  }
  const Span& span = *(it - 1);
  const uint64_t offset = addr - span.base;
  if (offset >= span.size) {
    return kNoNumaNode;
  }
  if (span.machine != kLocalMachineNode) {
    // Another machine node's memory: socket-level placement does not apply; the cross-node
    // path (MachineNodeOf) owns the attribution.
    return kNoNumaNode;
  }
  if (span.interleaved) {
    return static_cast<uint8_t>((offset / config_.interleave_bytes) % config_.nodes);
  }
  if (span.custom >= 0) {
    // Custom range partition: first slice whose end fraction lies past this offset.
    const PartitionMap& map = customs_[span.custom];
    const uint64_t frac = offset * kPlacementDenom / span.size;
    auto slice = std::upper_bound(
        map.begin(), map.end(), frac,
        [](uint64_t f, const PartitionSlice& s) { return f < s.end_frac; });
    if (slice == map.end()) {
      slice = map.end() - 1;
    }
    return static_cast<uint8_t>(slice->node % config_.nodes);
  }
  // Range partition: equal contiguous shares, so element i of an N-element array lands on the
  // same node as morsel rows [i, ...) of an N-row scan.
  return static_cast<uint8_t>(offset * config_.nodes / span.size);
}

uint8_t NumaMap::MachineNodeOf(VAddr addr) const {
  DFP_CHECK(sealed_);
  auto it = std::upper_bound(spans_.begin(), spans_.end(), addr,
                             [](VAddr a, const Span& span) { return a < span.base; });
  if (it == spans_.begin()) {
    return kLocalMachineNode;
  }
  const Span& span = *(it - 1);
  if (addr - span.base >= span.size) {
    return kLocalMachineNode;
  }
  return span.machine;
}

}  // namespace dfp
