// NUMA topology model for the simulated machine.
//
// The flat VMem arena is overlaid with a node map: table column arrays (registered as
// partitioned extents by the storage layer) are range-partitioned across the nodes — the
// morsel-driven first-touch placement of Leis et al. — while shared scratch regions (hash
// tables, query state, output buffers) are chunk-interleaved, modeling the per-node stripes a
// real engine allocates round-robin. Every worker VCPU is pinned to one node; an access whose
// address resolves to another node's memory is *remote* and pays an extra DRAM latency when it
// misses all caches (on-chip hits are private to the core and never pay the hop).
//
// The map is a pure function of the database layout and the topology configuration, so runs
// stay deterministic and the same query profiles identically at any worker count.
#ifndef DFP_SRC_VCPU_NUMA_H_
#define DFP_SRC_VCPU_NUMA_H_

#include <cstdint>
#include <vector>

#include "src/pmu/sample.h"
#include "src/vcpu/cost_model.h"
#include "src/vcpu/vmem.h"

namespace dfp {

// `Sample::mem_node`-style sentinel for addresses outside any cross-node span: the memory is
// local to the machine node the accessing core runs on.
inline constexpr uint8_t kLocalMachineNode = 0xFF;

struct NumaConfig {
  uint32_t nodes = 1;
  // Extra DRAM latency of a remote access (the interconnect hop), added on top of
  // CacheConfig::memory_latency when an access misses every cache level.
  uint32_t remote_dram_penalty = kRemoteDramPenaltyCycles;
  // Extra latency of an access served by another *machine node's* memory (the shard fabric
  // hop), charged instead of — not on top of — the cross-socket penalty on a full miss.
  uint32_t cross_node_penalty = kCrossNodePenaltyCycles;
  // Interleave granularity of shared scratch regions (per-node stripe size).
  uint64_t interleave_bytes = 64ull * 1024;
};

// Per-core NUMA traffic counters (the locality analogue of CacheStats).
struct NumaStats {
  uint64_t local_accesses = 0;   // Accesses to NUMA-managed memory on the core's own node.
  uint64_t remote_accesses = 0;  // Accesses to another node's memory (any cache level).
  uint64_t remote_dram = 0;      // Remote accesses that missed to DRAM and paid the penalty.
  uint64_t cross_node_accesses = 0;  // Accesses to another machine node's memory (any level).
  uint64_t cross_node_dram = 0;      // Cross-machine accesses that missed and paid the fabric hop.
};

// Resolves addresses to node ids for one run's topology. Constructed per ParallelRun from the
// database's partitioned extents plus the run's scratch regions.
class NumaMap {
 public:
  explicit NumaMap(NumaConfig config) : config_(config) {}

  uint32_t nodes() const { return config_.nodes; }
  uint32_t remote_dram_penalty() const { return config_.remote_dram_penalty; }
  uint32_t cross_node_penalty() const { return config_.cross_node_penalty; }

  // Registers [base, base+size) as range-partitioned: node = offset * nodes / size.
  void AddPartitioned(VAddr base, uint64_t size);
  // Registers [base, base+size) as range-partitioned by a custom fractional map (the
  // placement-repair action's node ownership): the slice covering offset/size owns the byte.
  void AddPartitionedCustom(VAddr base, uint64_t size, PartitionMap map);
  // Registers [base, base+size) as chunk-interleaved: node = (offset / chunk) % nodes.
  void AddInterleaved(VAddr base, uint64_t size);
  // Convenience: registers every partitioned extent the storage layer marked in `mem`,
  // honoring any per-extent placement override (VMem::ExtentPlacement).
  void AddPartitionedExtents(const VMem& mem);

  // Registers [base, base+size) as memory homed on machine node `machine_node` of a multi-node
  // (sharded) topology: staging buffers holding another shard's results. Accesses pay the
  // cross-node fabric penalty on a full miss and tick the CROSS_NODE event instead of the
  // cross-socket path.
  void AddCrossNode(VAddr base, uint64_t size, uint8_t machine_node);

  // Call after registration, before lookups: sorts the span table for binary search.
  void Seal();

  // Node owning `addr`, or kNoNumaNode for memory outside any registered span (code, strings,
  // other sessions' regions): such memory is treated as uniformly reachable and never remote.
  uint8_t NodeOf(VAddr addr) const;

  // Machine node whose memory serves `addr`, or kLocalMachineNode for everything not registered
  // via AddCrossNode (all of the accessing node's own memory).
  uint8_t MachineNodeOf(VAddr addr) const;

 private:
  struct Span {
    VAddr base = 0;
    uint64_t size = 0;
    bool interleaved = false;
    int32_t custom = -1;  // Index into customs_, or -1 for the default equal-share split.
    uint8_t machine = kLocalMachineNode;  // Owning machine node for cross-node spans.
  };

  NumaConfig config_;
  std::vector<Span> spans_;  // Sorted by base after Seal(); spans never overlap.
  std::vector<PartitionMap> customs_;
  bool sealed_ = false;
};

}  // namespace dfp

#endif  // DFP_SRC_VCPU_NUMA_H_
