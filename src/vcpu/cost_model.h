// Per-instruction cycle costs of the simulated CPU.
//
// Latencies loosely follow a Skylake-class core: cheap ALU ops, a 3-cycle multiply, expensive
// integer division (which is what makes the aggregation's per-tuple divisions a hotspot in the
// paper's Listing 1), and cache-hierarchy-dependent load latency added by the execution loop.
#ifndef DFP_SRC_VCPU_COST_MODEL_H_
#define DFP_SRC_VCPU_COST_MODEL_H_

#include <cstdint>

#include "src/ir/opcode.h"

namespace dfp {

// Nominal clock used to convert simulated cycles to wall-clock quantities in reports
// (the paper's use-case machine runs at 4.2 GHz).
inline constexpr double kClockGhz = 4.2;

inline constexpr double CyclesToMs(uint64_t cycles) {
  return static_cast<double>(cycles) / (kClockGhz * 1e6);
}

inline constexpr double CyclesToNs(uint64_t cycles) {
  return static_cast<double>(cycles) / kClockGhz;
}

// Extra latency of a DRAM access served by a remote NUMA node's memory controller (one
// interconnect hop), added on top of CacheConfig::memory_latency. Roughly the local/remote
// delta of a two-socket Skylake-SP (~90ns local, ~140ns remote at 4.2 GHz ≈ 130 cycles).
inline constexpr uint32_t kRemoteDramPenaltyCycles = 130;

// Extra latency of a memory access served by another *machine node* (a different shard's
// memory, one network/fabric hop away). Deliberately well above the cross-socket penalty:
// roughly a cache-coherent fabric round trip (~165ns at 4.2 GHz ≈ 690 cycles) minus the local
// DRAM latency already charged by the cache model.
inline constexpr uint32_t kCrossNodePenaltyCycles = 560;

// Base cost of an instruction, excluding memory latency (added from the cache model) and branch
// misprediction penalties (added from the branch predictor).
inline constexpr uint32_t BaseCost(Opcode op) {
  switch (op) {
    case Opcode::kMul:
      return 3;
    case Opcode::kDiv:
    case Opcode::kRem:
      return 21;
    case Opcode::kFAdd:
    case Opcode::kFSub:
      return 3;
    case Opcode::kFMul:
      return 4;
    case Opcode::kFDiv:
      return 14;
    case Opcode::kFCmpEq:
    case Opcode::kFCmpNe:
    case Opcode::kFCmpLt:
    case Opcode::kFCmpLe:
    case Opcode::kFCmpGt:
    case Opcode::kFCmpGe:
      return 2;
    case Opcode::kSiToFp:
    case Opcode::kFpToSi:
      return 4;
    case Opcode::kCrc32:
      return 3;
    case Opcode::kStore1:
    case Opcode::kStore2:
    case Opcode::kStore4:
    case Opcode::kStore8:
      return 1;  // Store latency is hidden by the store buffer; cache state is still updated.
    case Opcode::kSelect:
      return 2;
    case Opcode::kCall:
      return 6;
    case Opcode::kRet:
      return 3;
    case Opcode::kLoadSpill:
      return 3;  // Spill slots model always-L1-resident stack traffic.
    case Opcode::kStoreSpill:
      return 2;
    default:
      return 1;
  }
}

}  // namespace dfp

#endif  // DFP_SRC_VCPU_COST_MODEL_H_
