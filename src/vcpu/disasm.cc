#include "src/vcpu/disasm.h"

#include "src/util/str.h"

namespace dfp {
namespace {

std::string Reg(uint8_t reg) {
  if (reg == kNoPhysReg) {
    return "r?";
  }
  return StrFormat("r%u", reg);
}

std::string OperandA(const MInstr& instr) {
  return instr.a_is_imm ? StrFormat("%lld", static_cast<long long>(instr.imm)) : Reg(instr.ra);
}

std::string OperandB(const MInstr& instr) {
  return instr.b_is_imm ? StrFormat("%lld", static_cast<long long>(instr.imm)) : Reg(instr.rb);
}

}  // namespace

std::string MInstrToString(const MInstr& instr) {
  std::string text;
  switch (instr.op) {
    case Opcode::kConst:
      text = StrFormat("%s = const %lld", Reg(instr.dst).c_str(),
                       static_cast<long long>(instr.imm));
      break;
    case Opcode::kMov:
      text = StrFormat("%s = mov %s", Reg(instr.dst).c_str(), OperandA(instr).c_str());
      break;
    case Opcode::kLoad1:
    case Opcode::kLoad2:
    case Opcode::kLoad4:
    case Opcode::kLoad8:
      text = StrFormat("%s = %s [%s + %d]", Reg(instr.dst).c_str(), OpcodeName(instr.op),
                       Reg(instr.ra).c_str(), instr.disp);
      break;
    case Opcode::kStore1:
    case Opcode::kStore2:
    case Opcode::kStore4:
    case Opcode::kStore8:
      text = StrFormat("%s %s, [%s + %d]", OpcodeName(instr.op), OperandA(instr).c_str(),
                       Reg(instr.rb).c_str(), instr.disp);
      break;
    case Opcode::kBr:
      text = StrFormat("br @%u", instr.target0);
      break;
    case Opcode::kCondBr:
      text = StrFormat("condbr %s, @%u, @%u", Reg(instr.ra).c_str(), instr.target0,
                       instr.target1);
      break;
    case Opcode::kCall: {
      std::string args;
      for (const MArg& arg : instr.args) {
        if (!args.empty()) {
          args += ", ";
        }
        switch (arg.kind) {
          case MArg::Kind::kReg:
            args += Reg(static_cast<uint8_t>(arg.value));
            break;
          case MArg::Kind::kSpill:
            args += StrFormat("spill[%llu]", static_cast<unsigned long long>(arg.value));
            break;
          case MArg::Kind::kImm:
            args += StrFormat("%lld", static_cast<long long>(arg.value));
            break;
        }
      }
      if (instr.dst != kNoPhysReg) {
        text = StrFormat("%s = call fn%u(%s)", Reg(instr.dst).c_str(), instr.callee,
                         args.c_str());
      } else {
        text = StrFormat("call fn%u(%s)", instr.callee, args.c_str());
      }
      break;
    }
    case Opcode::kRet:
      text = (instr.ra == kNoPhysReg && !instr.a_is_imm)
                 ? "ret"
                 : StrFormat("ret %s", OperandA(instr).c_str());
      break;
    case Opcode::kSelect:
      text = StrFormat("%s = select %s, %s, %s", Reg(instr.dst).c_str(), Reg(instr.ra).c_str(),
                       Reg(instr.rb).c_str(), Reg(instr.rc).c_str());
      break;
    case Opcode::kGetTag:
      text = StrFormat("%s = gettag", Reg(instr.dst).c_str());
      break;
    case Opcode::kSetTag:
      text = StrFormat("settag %s", OperandA(instr).c_str());
      break;
    case Opcode::kLoadSpill:
      text = StrFormat("%s = ldspill [%u]", Reg(instr.dst).c_str(), instr.spill_slot);
      break;
    case Opcode::kStoreSpill:
      text = StrFormat("stspill %s, [%u]", Reg(instr.ra).c_str(), instr.spill_slot);
      break;
    case Opcode::kNot:
    case Opcode::kNeg:
    case Opcode::kFNeg:
    case Opcode::kSiToFp:
    case Opcode::kFpToSi:
      text = StrFormat("%s = %s %s", Reg(instr.dst).c_str(), OpcodeName(instr.op),
                       OperandA(instr).c_str());
      break;
    default:
      text = StrFormat("%s = %s %s, %s", Reg(instr.dst).c_str(), OpcodeName(instr.op),
                       OperandA(instr).c_str(), OperandB(instr).c_str());
      break;
  }
  if (instr.is_tag) {
    text += "   ; register tagging";
  }
  return text;
}

std::string RenderSegment(const CodeSegment& segment) {
  std::string out = StrFormat("segment %u (%s) '%s', base ip 0x%llx, %zu instructions\n",
                              segment.id, SegmentKindName(segment.kind), segment.name.c_str(),
                              static_cast<unsigned long long>(segment.base_ip),
                              segment.code.size());
  for (size_t i = 0; i < segment.code.size(); ++i) {
    out += StrFormat("  @%-5zu %s\n", i, MInstrToString(segment.code[i]).c_str());
  }
  return out;
}

}  // namespace dfp
