// Machine instruction format executed by the VCPU.
//
// Operands are physical registers (0..15). Register 15 is architecturally global (shared across
// call frames) and is the register Tailored Profiling reserves for Register Tagging. Calls use a
// register-window convention: the callee receives a fresh register file with arguments copied
// into r0..rN by the call instruction; argument sources may be registers, spill slots, or
// immediates (the stack-argument analogue).
#ifndef DFP_SRC_VCPU_MINSTR_H_
#define DFP_SRC_VCPU_MINSTR_H_

#include <cstdint>
#include <vector>

#include "src/ir/opcode.h"

namespace dfp {

inline constexpr uint8_t kNumPhysRegs = 16;
inline constexpr uint8_t kTagReg = 15;
inline constexpr uint8_t kNoPhysReg = 0xFF;
inline constexpr uint32_t kNoCallee = 0xFFFFFFFFu;

// A call argument source.
struct MArg {
  enum class Kind : uint8_t { kReg, kSpill, kImm };
  Kind kind = Kind::kReg;
  uint64_t value = 0;  // Register index, spill slot, or immediate bits.
};

struct MInstr {
  Opcode op = Opcode::kConst;
  IrType type = IrType::kI64;
  uint8_t dst = kNoPhysReg;
  uint8_t ra = kNoPhysReg;
  uint8_t rb = kNoPhysReg;
  uint8_t rc = kNoPhysReg;
  bool b_is_imm = false;  // Second operand is `imm` instead of `rb`.
  bool a_is_imm = false;  // First operand is `imm` (kConst, kSetTag immediate form).
  bool is_tag = false;    // Instruction belongs to a Register Tagging save/set/restore sequence.
  int64_t imm = 0;
  int32_t disp = 0;          // Displacement for loads/stores.
  uint16_t spill_slot = 0;   // For kLoadSpill/kStoreSpill.
  uint32_t target0 = 0;      // Branch targets: code offsets within the segment (after fixup).
  uint32_t target1 = 0;
  uint32_t callee = kNoCallee;  // Global function id for kCall.
  uint32_t ir_id = kNoIrId;     // Debug info: the VIR instruction this was lowered from.
  std::vector<MArg> args;       // Call arguments.
};

}  // namespace dfp

#endif  // DFP_SRC_VCPU_MINSTR_H_
