// Flat virtual memory for the simulated CPU.
//
// All data the generated code touches (table columns, hash tables, query state, output buffers,
// the string heap) lives in one contiguous arena addressed by 64-bit offsets. Named regions carve
// up the arena so profiling reports can describe what an address belongs to, and per-region bump
// allocation mimics how an engine lays out its memory. Address 0 is reserved as the null pointer.
#ifndef DFP_SRC_VCPU_VMEM_H_
#define DFP_SRC_VCPU_VMEM_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/util/check.h"

namespace dfp {

using VAddr = uint64_t;

// One named region of the arena (e.g. "columns", "hashtables", "state").
struct MemRegion {
  std::string name;
  VAddr base = 0;
  uint64_t size = 0;
  uint64_t used = 0;
};

// One NUMA-partitionable allocation (a table column array): a topology of N nodes divides it
// into N equal contiguous spans, modeling per-node first-touch placement of base data.
struct MemExtent {
  VAddr base = 0;
  uint64_t size = 0;
};

// Custom range partition of one extent, expressed in fixed-point fractions of its size so one
// map applies to every column of a table regardless of element width (offset/size tracks
// row/rows for any width). Slice i covers byte offsets [end_frac[i-1], end_frac[i]) * size /
// kPlacementDenom and lives on `node`; slices are ascending and the last end_frac is exactly
// kPlacementDenom. Placement-repair actions (src/service/placement_repair.h) install these to
// move column spans toward the NUMA nodes that actually consume them.
inline constexpr uint64_t kPlacementDenom = 1ull << 16;

struct PartitionSlice {
  uint64_t end_frac = 0;
  uint8_t node = 0;
};

using PartitionMap = std::vector<PartitionSlice>;

class VMem {
 public:
  // `capacity` is the total arena size in bytes; the arena is allocated eagerly so that
  // addresses are stable for the lifetime of the VMem.
  explicit VMem(uint64_t capacity);

  // Creates a named region of `size` bytes. Regions are carved out sequentially.
  // Returns the region id used with `Alloc`.
  uint32_t CreateRegion(const std::string& name, uint64_t size);

  // Bump-allocates `bytes` (aligned to `align`) from the region. Aborts if the region is full:
  // capacity planning is the caller's job and exhaustion indicates an engine bug.
  VAddr Alloc(uint32_t region, uint64_t bytes, uint64_t align = 8);

  // Releases all allocations in the region and zeroes its used bytes, so that the next query's
  // allocations see fresh zero-initialized memory.
  void ResetRegion(uint32_t region);

  // Raw accessors. Bounds-checked in debug builds via DFP_CHECK.
  uint8_t* Data(VAddr addr) {
    DFP_CHECK(addr < bytes_.size());
    return bytes_.data() + addr;
  }
  const uint8_t* Data(VAddr addr) const {
    DFP_CHECK(addr < bytes_.size());
    return bytes_.data() + addr;
  }

  template <typename T>
  T Read(VAddr addr) const {
    DFP_CHECK(addr + sizeof(T) <= bytes_.size());
    T value;
    std::memcpy(&value, bytes_.data() + addr, sizeof(T));
    return value;
  }

  template <typename T>
  void Write(VAddr addr, T value) {
    DFP_CHECK(addr + sizeof(T) <= bytes_.size());
    std::memcpy(bytes_.data() + addr, &value, sizeof(T));
  }

  uint64_t capacity() const { return bytes_.size(); }
  // First address not yet carved into a region (where the next CreateRegion would start).
  uint64_t next_base() const { return next_base_; }
  const std::vector<MemRegion>& regions() const { return regions_; }
  const MemRegion& region(uint32_t id) const { return regions_[id]; }

  // Name of the region containing `addr`, or "unknown".
  const MemRegion* FindRegion(VAddr addr) const;

  // Marks [base, base+bytes) as a NUMA-partitionable extent (see MemExtent). Extents must be
  // registered in increasing address order and must not overlap — both hold naturally for bump
  // allocations. NumaMap consumes them via partitioned_extents().
  void MarkPartitioned(VAddr base, uint64_t bytes);
  const std::vector<MemExtent>& partitioned_extents() const { return partitioned_; }

  // Placement override for the extent starting at `base` (must be a registered extent). While
  // set, NumaMap::AddPartitionedExtents partitions that extent by the map instead of the
  // default equal-share split; clearing reverts to the default. Overrides model the guarded
  // re-partition action: data does not move in the flat arena, only the node ownership map
  // changes, exactly like a page-migration that leaves virtual addresses intact.
  void SetExtentPlacement(VAddr base, PartitionMap map);
  void ClearExtentPlacement(VAddr base);
  // The override for `base`, or nullptr when the extent uses the default split.
  const PartitionMap* ExtentPlacement(VAddr base) const;

 private:
  std::vector<uint8_t> bytes_;
  std::vector<MemRegion> regions_;
  std::vector<MemExtent> partitioned_;
  std::map<VAddr, PartitionMap> placements_;
  uint64_t next_base_;
};

}  // namespace dfp

#endif  // DFP_SRC_VCPU_VMEM_H_
