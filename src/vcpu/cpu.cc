#include "src/vcpu/cpu.h"

#include <bit>

#include "src/util/check.h"
#include "src/util/hash.h"

namespace dfp {
namespace {

inline int64_t AsSigned(uint64_t value) { return static_cast<int64_t>(value); }
inline double AsDouble(uint64_t value) { return std::bit_cast<double>(value); }
inline uint64_t FromDouble(double value) { return std::bit_cast<uint64_t>(value); }

inline uint64_t RotateRight(uint64_t value, uint64_t amount) {
  amount &= 63u;
  if (amount == 0) {
    return value;
  }
  return (value >> amount) | (value << (64 - amount));
}

}  // namespace

Cpu::Cpu(VMem& mem, const CodeMap& code_map, Pmu& pmu, CacheConfig cache_config)
    : mem_(mem), code_map_(code_map), pmu_(pmu), cache_(cache_config) {
  frames_.reserve(64);
}

uint64_t Cpu::CallFunction(uint32_t func_id, std::span<const uint64_t> args) {
  const FuncInfo& func = code_map_.function(func_id);
  if (func.is_host) {
    return func.host(*this, args);
  }
  DFP_CHECK(frames_.size() < kMaxStackDepth);
  Frame frame;
  frame.seg = &code_map_.segment(func.segment);
  frame.off = func.entry;
  frame.spills.resize(func.spill_slots, 0);
  DFP_CHECK(args.size() <= kNumPhysRegs);
  for (size_t i = 0; i < args.size(); ++i) {
    frame.regs[i] = args[i];
  }
  size_t stop_depth = frames_.size();
  frames_.push_back(std::move(frame));
  stats_.max_stack_depth = std::max<uint64_t>(stats_.max_stack_depth, frames_.size());
  Run(stop_depth);
  return ret_value_;
}

uint64_t Cpu::ReadArg(Frame& frame, const MArg& arg, uint32_t* extra_cost) {
  switch (arg.kind) {
    case MArg::Kind::kReg:
      return ReadReg(frame, static_cast<uint8_t>(arg.value));
    case MArg::Kind::kSpill:
      *extra_cost += BaseCost(Opcode::kLoadSpill);
      return frame.spills[arg.value];
    case MArg::Kind::kImm:
      return arg.value;
  }
  DFP_UNREACHABLE();
}

void Cpu::Run(size_t stop_depth) {
  while (frames_.size() > stop_depth) {
    Frame& fr = frames_.back();
    DFP_CHECK(fr.off < fr.seg->code.size());
    const MInstr& in = fr.seg->code[fr.off];
    const uint64_t ip = fr.seg->base_ip + fr.off;
    fr.off += 1;  // Fall-through; terminators overwrite. Suspended frames resume past the call.

    uint32_t cost = BaseCost(in.op);
    uint64_t sample_addr = 0;
    uint8_t sample_node = kNoNumaNode;
    bool sample_remote = false;
    bool sample_cross = false;
    bool sample_due = false;

    // Operand fetch helpers. `a` may be an immediate (kConst / kSetTag); `b` may be an immediate
    // for binary operations.
    const uint64_t a = in.a_is_imm ? static_cast<uint64_t>(in.imm)
                                   : (in.ra != kNoPhysReg ? ReadReg(fr, in.ra) : 0);
    const uint64_t b = in.b_is_imm ? static_cast<uint64_t>(in.imm)
                                   : (in.rb != kNoPhysReg ? ReadReg(fr, in.rb) : 0);

    switch (in.op) {
      case Opcode::kConst:
      case Opcode::kMov:
        WriteReg(fr, in.dst, a);
        break;
      case Opcode::kAdd:
        WriteReg(fr, in.dst, a + b);
        break;
      case Opcode::kSub:
        WriteReg(fr, in.dst, a - b);
        break;
      case Opcode::kMul:
        WriteReg(fr, in.dst, a * b);
        break;
      case Opcode::kDiv:
        DFP_CHECK(b != 0);
        WriteReg(fr, in.dst, static_cast<uint64_t>(AsSigned(a) / AsSigned(b)));
        break;
      case Opcode::kRem:
        DFP_CHECK(b != 0);
        WriteReg(fr, in.dst, static_cast<uint64_t>(AsSigned(a) % AsSigned(b)));
        break;
      case Opcode::kAnd:
        WriteReg(fr, in.dst, a & b);
        break;
      case Opcode::kOr:
        WriteReg(fr, in.dst, a | b);
        break;
      case Opcode::kXor:
        WriteReg(fr, in.dst, a ^ b);
        break;
      case Opcode::kShl:
        WriteReg(fr, in.dst, a << (b & 63));
        break;
      case Opcode::kShr:
        WriteReg(fr, in.dst, a >> (b & 63));
        break;
      case Opcode::kRotr:
        WriteReg(fr, in.dst, RotateRight(a, b));
        break;
      case Opcode::kNot:
        WriteReg(fr, in.dst, ~a);
        break;
      case Opcode::kNeg:
        WriteReg(fr, in.dst, static_cast<uint64_t>(-AsSigned(a)));
        break;
      case Opcode::kCmpEq:
        WriteReg(fr, in.dst, a == b ? 1 : 0);
        break;
      case Opcode::kCmpNe:
        WriteReg(fr, in.dst, a != b ? 1 : 0);
        break;
      case Opcode::kCmpLt:
        WriteReg(fr, in.dst, AsSigned(a) < AsSigned(b) ? 1 : 0);
        break;
      case Opcode::kCmpLe:
        WriteReg(fr, in.dst, AsSigned(a) <= AsSigned(b) ? 1 : 0);
        break;
      case Opcode::kCmpGt:
        WriteReg(fr, in.dst, AsSigned(a) > AsSigned(b) ? 1 : 0);
        break;
      case Opcode::kCmpGe:
        WriteReg(fr, in.dst, AsSigned(a) >= AsSigned(b) ? 1 : 0);
        break;
      case Opcode::kFAdd:
        WriteReg(fr, in.dst, FromDouble(AsDouble(a) + AsDouble(b)));
        break;
      case Opcode::kFSub:
        WriteReg(fr, in.dst, FromDouble(AsDouble(a) - AsDouble(b)));
        break;
      case Opcode::kFMul:
        WriteReg(fr, in.dst, FromDouble(AsDouble(a) * AsDouble(b)));
        break;
      case Opcode::kFDiv:
        WriteReg(fr, in.dst, FromDouble(AsDouble(a) / AsDouble(b)));
        break;
      case Opcode::kFNeg:
        WriteReg(fr, in.dst, FromDouble(-AsDouble(a)));
        break;
      case Opcode::kFCmpEq:
        WriteReg(fr, in.dst, AsDouble(a) == AsDouble(b) ? 1 : 0);
        break;
      case Opcode::kFCmpNe:
        WriteReg(fr, in.dst, AsDouble(a) != AsDouble(b) ? 1 : 0);
        break;
      case Opcode::kFCmpLt:
        WriteReg(fr, in.dst, AsDouble(a) < AsDouble(b) ? 1 : 0);
        break;
      case Opcode::kFCmpLe:
        WriteReg(fr, in.dst, AsDouble(a) <= AsDouble(b) ? 1 : 0);
        break;
      case Opcode::kFCmpGt:
        WriteReg(fr, in.dst, AsDouble(a) > AsDouble(b) ? 1 : 0);
        break;
      case Opcode::kFCmpGe:
        WriteReg(fr, in.dst, AsDouble(a) >= AsDouble(b) ? 1 : 0);
        break;
      case Opcode::kSiToFp:
        WriteReg(fr, in.dst, FromDouble(static_cast<double>(AsSigned(a))));
        break;
      case Opcode::kFpToSi:
        WriteReg(fr, in.dst, static_cast<uint64_t>(static_cast<int64_t>(AsDouble(a))));
        break;
      case Opcode::kCrc32:
        WriteReg(fr, in.dst, Crc32u64(static_cast<uint32_t>(a), b));
        break;
      case Opcode::kLoad1:
      case Opcode::kLoad2:
      case Opcode::kLoad4:
      case Opcode::kLoad8: {
        const VAddr addr = a + static_cast<VAddr>(static_cast<int64_t>(in.disp));
        CacheAccessResult res = cache_.Access(addr);
        cost += res.latency;
        sample_due |= pmu_.Tick(PmuEvent::kLoads);
        if (res.hit_level >= 2) {
          sample_due |= pmu_.Tick(PmuEvent::kL1Miss);
        }
        if (res.hit_level >= 3) {
          sample_due |= pmu_.Tick(PmuEvent::kL2Miss);
        }
        if (res.hit_level >= 4) {
          sample_due |= pmu_.Tick(PmuEvent::kL3Miss);
        }
        NumaAccess(addr, res.hit_level, &cost, &sample_node, &sample_remote, &sample_cross,
                   &sample_due);
        sample_addr = addr;
        uint64_t value = 0;
        switch (in.op) {
          case Opcode::kLoad1:
            value = mem_.Read<uint8_t>(addr);
            break;
          case Opcode::kLoad2:
            value = mem_.Read<uint16_t>(addr);
            break;
          case Opcode::kLoad4:
            value = static_cast<uint64_t>(static_cast<int64_t>(mem_.Read<int32_t>(addr)));
            break;
          default:
            value = mem_.Read<uint64_t>(addr);
            break;
        }
        WriteReg(fr, in.dst, value);
        break;
      }
      case Opcode::kStore1:
      case Opcode::kStore2:
      case Opcode::kStore4:
      case Opcode::kStore8: {
        const VAddr addr = b + static_cast<VAddr>(static_cast<int64_t>(in.disp));
        CacheAccessResult res = cache_.Access(addr);
        if (res.hit_level >= 2) {
          sample_due |= pmu_.Tick(PmuEvent::kL1Miss);
        }
        if (res.hit_level >= 3) {
          sample_due |= pmu_.Tick(PmuEvent::kL2Miss);
        }
        if (res.hit_level >= 4) {
          sample_due |= pmu_.Tick(PmuEvent::kL3Miss);
        }
        NumaAccess(addr, res.hit_level, &cost, &sample_node, &sample_remote, &sample_cross,
                   &sample_due);
        sample_addr = addr;  // PEBS records store addresses too (cache-miss profiles).
        switch (in.op) {
          case Opcode::kStore1:
            mem_.Write<uint8_t>(addr, static_cast<uint8_t>(a));
            break;
          case Opcode::kStore2:
            mem_.Write<uint16_t>(addr, static_cast<uint16_t>(a));
            break;
          case Opcode::kStore4:
            mem_.Write<uint32_t>(addr, static_cast<uint32_t>(a));
            break;
          default:
            mem_.Write<uint64_t>(addr, a);
            break;
        }
        break;
      }
      case Opcode::kSelect:
        WriteReg(fr, in.dst, a != 0 ? b : ReadReg(fr, in.rc));
        break;
      case Opcode::kBr:
        fr.off = in.target0;
        break;
      case Opcode::kCondBr: {
        const bool taken = a != 0;
        if (predictor_.Branch(ip, taken)) {
          cost += BranchPredictor::kMissPenalty;
          sample_due |= pmu_.Tick(PmuEvent::kBranchMiss);
        }
        fr.off = taken ? in.target0 : in.target1;
        break;
      }
      case Opcode::kCall: {
        const FuncInfo& callee = code_map_.function(in.callee);
        uint64_t arg_values[kNumPhysRegs] = {};
        DFP_CHECK(in.args.size() <= kNumPhysRegs);
        for (size_t i = 0; i < in.args.size(); ++i) {
          arg_values[i] = ReadArg(fr, in.args[i], &cost);
        }
        ++stats_.calls;
        if (callee.is_host) {
          // Charge the call cost and the instruction event before running the host body so that
          // host-side samples observe a consistent clock.
          cycles_ += cost;
          ++stats_.instructions;
          sample_due |= pmu_.Tick(PmuEvent::kInstrRetired);
          if (sample_due) {
            TakeSample(ip, sample_addr, sample_node, sample_remote, sample_cross);
          }
          uint64_t result =
              callee.host(*this, std::span<const uint64_t>(arg_values, in.args.size()));
          // `fr` may be dangling if the host function re-entered the VCPU; re-resolve.
          Frame& caller = frames_.back();
          if (in.dst != kNoPhysReg) {
            WriteReg(caller, in.dst, result);
          }
          continue;  // Costs already charged.
        }
        DFP_CHECK(frames_.size() < kMaxStackDepth);
        Frame frame;
        frame.seg = &code_map_.segment(callee.segment);
        frame.off = callee.entry;
        frame.ret_dst = in.dst;
        frame.spills.resize(callee.spill_slots, 0);
        for (size_t i = 0; i < in.args.size(); ++i) {
          frame.regs[i] = arg_values[i];
        }
        frames_.push_back(std::move(frame));
        stats_.max_stack_depth = std::max<uint64_t>(stats_.max_stack_depth, frames_.size());
        break;
      }
      case Opcode::kRet: {
        const uint64_t value = (in.ra != kNoPhysReg || in.a_is_imm) ? a : 0;
        const uint8_t ret_dst = fr.ret_dst;
        frames_.pop_back();
        if (frames_.size() <= stop_depth) {
          ret_value_ = value;
        } else if (ret_dst != kNoPhysReg) {
          WriteReg(frames_.back(), ret_dst, value);
        }
        break;
      }
      case Opcode::kGetTag:
        WriteReg(fr, in.dst, tag_reg_);
        break;
      case Opcode::kSetTag:
        tag_reg_ = a;
        break;
      case Opcode::kLoadSpill:
        WriteReg(fr, in.dst, fr.spills[in.spill_slot]);
        break;
      case Opcode::kStoreSpill:
        fr.spills[in.spill_slot] = a;
        break;
    }

    cycles_ += cost;
    ++stats_.instructions;
    sample_due |= pmu_.Tick(PmuEvent::kInstrRetired);
    if (sample_due) {
      TakeSample(ip, sample_addr, sample_node, sample_remote, sample_cross);
    }
  }
}

void Cpu::NumaAccess(VAddr addr, int hit_level, uint32_t* cost, uint8_t* mem_node, bool* remote,
                     bool* cross, bool* sample_due) {
  if (numa_ == nullptr) {
    return;
  }
  const uint8_t machine = numa_->MachineNodeOf(addr);
  if (machine != kLocalMachineNode) {
    // Memory homed on another machine node: a shard-fabric hop, costlier than any cross-socket
    // path. The sample reports the owning machine node in `mem_node` with the cross flag set.
    *mem_node = machine;
    *cross = true;
    ++numa_stats_.cross_node_accesses;
    if (hit_level >= 4) {
      *cost += numa_->cross_node_penalty();
      ++numa_stats_.cross_node_dram;
      *sample_due |= pmu_.Tick(PmuEvent::kCrossNode);
    }
    return;
  }
  const uint8_t node = numa_->NodeOf(addr);
  if (node == kNoNumaNode) {
    return;
  }
  *mem_node = node;
  if (node == node_id_) {
    ++numa_stats_.local_accesses;
    return;
  }
  *remote = true;
  ++numa_stats_.remote_accesses;
  // The interconnect only matters when the access actually leaves the socket: cache hits are
  // served locally regardless of the line's home node, so charge only misses to memory.
  if (hit_level >= 4) {
    *cost += numa_->remote_dram_penalty();
    ++numa_stats_.remote_dram;
    *sample_due |= pmu_.Tick(PmuEvent::kRemoteDram);
  }
}

void Cpu::TakeSample(uint64_t ip, uint64_t addr, uint8_t mem_node, bool remote, bool cross) {
  const SamplingConfig& config = pmu_.config();
  if (!config.enabled) {
    return;
  }
  Sample sample;
  sample.tsc = cycles_;
  sample.ip = ip;
  sample.worker_id = worker_id_;
  sample.session_id = session_id_;
  sample.shard_id = shard_id_;
  sample.stolen = stolen_work_;
  if (config.capture_address) {
    sample.addr = addr;
    sample.mem_node = mem_node;
    sample.numa_remote = remote;
    sample.cross_node = cross;
  }
  if (config.capture_registers) {
    sample.has_registers = true;
    if (!frames_.empty()) {
      sample.regs = frames_.back().regs;
    }
    sample.regs[kTagReg] = tag_reg_;
  }
  if (config.capture_callstack) {
    sample.callstack = CaptureCallStack();
  }
  cycles_ += pmu_.Record(std::move(sample));
}

std::vector<uint64_t> Cpu::CaptureCallStack() const {
  std::vector<uint64_t> stack;
  if (frames_.empty()) {
    return stack;
  }
  stack.reserve(frames_.size() - 1);
  // Suspended frames have `off` pointing past their call instruction; `off - 1` is the call site.
  for (size_t i = frames_.size() - 1; i-- > 0;) {
    const Frame& frame = frames_[i];
    stack.push_back(frame.seg->base_ip + frame.off - 1);
  }
  return stack;
}

void Cpu::HostWork(uint32_t segment_id, uint64_t instrs) {
  const CodeSegment& segment = code_map_.segment(segment_id);
  DFP_CHECK(segment.virtual_size > 0);
  // Chunk at most one sampling period at a time, so host work samples at the same cadence as
  // executed instructions (larger chunks would collapse several period crossings into one).
  uint64_t max_chunk = 1024;
  if (pmu_.config().enabled && pmu_.config().event == PmuEvent::kInstrRetired) {
    max_chunk = std::max<uint64_t>(1, std::min<uint64_t>(max_chunk, pmu_.config().period));
  }
  uint64_t remaining = instrs;
  while (remaining > 0) {
    const uint64_t chunk = std::min<uint64_t>(remaining, max_chunk);
    cycles_ += chunk;
    stats_.instructions += chunk;
    if (pmu_.Tick(PmuEvent::kInstrRetired, chunk)) {
      const uint64_t ip = segment.base_ip + (host_ip_counter_++ % segment.virtual_size);
      TakeSample(ip, 0);
    }
    remaining -= chunk;
  }
}

void Cpu::HostLoad(uint32_t segment_id, VAddr addr) {
  const CodeSegment& segment = code_map_.segment(segment_id);
  CacheAccessResult res = cache_.Access(addr);
  uint32_t cost = res.latency;
  ++stats_.instructions;
  bool sample_due = pmu_.Tick(PmuEvent::kInstrRetired);
  sample_due |= pmu_.Tick(PmuEvent::kLoads);
  if (res.hit_level >= 2) {
    sample_due |= pmu_.Tick(PmuEvent::kL1Miss);
  }
  if (res.hit_level >= 3) {
    sample_due |= pmu_.Tick(PmuEvent::kL2Miss);
  }
  if (res.hit_level >= 4) {
    sample_due |= pmu_.Tick(PmuEvent::kL3Miss);
  }
  uint8_t mem_node = kNoNumaNode;
  bool remote = false;
  bool cross = false;
  NumaAccess(addr, res.hit_level, &cost, &mem_node, &remote, &cross, &sample_due);
  cycles_ += cost;
  if (sample_due) {
    const uint64_t ip = segment.base_ip + (host_ip_counter_++ % segment.SizeIps());
    TakeSample(ip, addr, mem_node, remote, cross);
  }
}

}  // namespace dfp
