// The simulated CPU: executes machine code with a cycle cost model, drives the cache hierarchy,
// branch predictor, and PMU, and provides the host bridge for kernel/system-library work.
//
// Calls use register windows: each frame has its own 16-register file, except that register 15
// (the tag register) is architecturally global across frames — that property is what Register
// Tagging relies on to let samples taken inside shared callees observe the caller's identity.
#ifndef DFP_SRC_VCPU_CPU_H_
#define DFP_SRC_VCPU_CPU_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/pmu/pmu.h"
#include "src/vcpu/branch_predictor.h"
#include "src/vcpu/cache.h"
#include "src/vcpu/code_map.h"
#include "src/vcpu/cost_model.h"
#include "src/vcpu/minstr.h"
#include "src/vcpu/numa.h"
#include "src/vcpu/vmem.h"

namespace dfp {

struct CpuStats {
  uint64_t instructions = 0;
  uint64_t calls = 0;
  uint64_t max_stack_depth = 0;
};

class Cpu {
 public:
  Cpu(VMem& mem, const CodeMap& code_map, Pmu& pmu, CacheConfig cache_config = CacheConfig());

  // Calls a function (compiled or host) and runs it to completion. Returns its result.
  uint64_t CallFunction(uint32_t func_id, std::span<const uint64_t> args);

  // Current timestamp counter (cycles since construction).
  uint64_t tsc() const { return cycles_; }

  VMem& mem() { return mem_; }
  const CodeMap& code_map() const { return code_map_; }
  Pmu& pmu() { return pmu_; }
  const CacheHierarchy& cache() const { return cache_; }
  const CpuStats& stats() const { return stats_; }
  uint64_t tag_register() const { return tag_reg_; }

  // Identity of this VCPU in a worker pool; stamped into every sample it takes.
  void set_worker_id(uint32_t id) { worker_id_ = id; }
  uint32_t worker_id() const { return worker_id_; }

  // Query session this VCPU is currently executing for (service layer); stamped into every
  // sample so concurrent sessions' streams can be demultiplexed. 0 outside the service.
  void set_session_id(uint32_t id) { session_id_ = id; }
  uint32_t session_id() const { return session_id_; }

  // Service shard this VCPU belongs to (1-based; 0 = unsharded). Stamped into every sample so
  // fan-out attribution survives the coordinator's fleet roll-up (sample stream v7).
  void set_shard_id(uint32_t id) { shard_id_ = id; }
  uint32_t shard_id() const { return shard_id_; }

  // Pins this VCPU to `node` of the topology described by `numa` (borrowed; must outlive the
  // CPU or be cleared). Null disables the NUMA model: flat memory, as on single-node runs.
  void ConfigureNuma(const NumaMap* numa, uint8_t node) {
    numa_ = numa;
    node_id_ = node;
  }
  uint8_t node_id() const { return node_id_; }
  const NumaStats& numa_stats() const { return numa_stats_; }

  // Marks the unit of work currently executing as stolen from another worker's deque; samples
  // taken while set carry the steal flag, making steal-induced remote traffic visible.
  void set_stolen_work(bool stolen) { stolen_work_ = stolen; }

  // --- Host bridge (used by kernel/syslib host functions) ---

  // Models `instrs` instructions of host work attributed to `segment_id`; advances the clock,
  // counts events, and emits samples with synthetic IPs inside the segment.
  void HostWork(uint32_t segment_id, uint64_t instrs);

  // Models one data load issued by host work: goes through the cache model and load events.
  void HostLoad(uint32_t segment_id, VAddr addr);

  // Adds raw cycles without events (e.g. fixed device latencies).
  void AddCycles(uint64_t cycles) { cycles_ += cycles; }

  // Return addresses of the currently suspended frames, innermost caller first (global IPs).
  std::vector<uint64_t> CaptureCallStack() const;

 private:
  struct Frame {
    const CodeSegment* seg = nullptr;
    uint32_t off = 0;  // Offset of the next instruction to execute.
    uint8_t ret_dst = kNoPhysReg;
    std::array<uint64_t, kNumPhysRegs> regs{};
    std::vector<uint64_t> spills;
  };

  static constexpr size_t kMaxStackDepth = 1024;

  void Run(size_t stop_depth);
  void TakeSample(uint64_t ip, uint64_t addr, uint8_t mem_node = kNoNumaNode,
                  bool remote = false, bool cross = false);
  // Resolves the NUMA placement of a data access: counts local/remote traffic, charges the
  // remote-DRAM penalty when the access missed to memory, and reports the node/remote/cross
  // triple for sample stamping. `hit_level` is the cache level that served the access. Memory
  // homed on another *machine node* (cross-node span) pays the fabric penalty instead and
  // ticks CROSS_NODE.
  void NumaAccess(VAddr addr, int hit_level, uint32_t* cost, uint8_t* mem_node, bool* remote,
                  bool* cross, bool* sample_due);
  uint64_t ReadArg(Frame& frame, const MArg& arg, uint32_t* extra_cost);

  uint64_t ReadReg(const Frame& frame, uint8_t reg) const {
    return reg == kTagReg ? tag_reg_ : frame.regs[reg];
  }
  void WriteReg(Frame& frame, uint8_t reg, uint64_t value) {
    if (reg == kTagReg) {
      tag_reg_ = value;
    } else {
      frame.regs[reg] = value;
    }
  }

  VMem& mem_;
  const CodeMap& code_map_;
  Pmu& pmu_;
  CacheHierarchy cache_;
  BranchPredictor predictor_;
  std::vector<Frame> frames_;
  uint64_t cycles_ = 0;
  uint64_t tag_reg_ = 0;
  uint32_t worker_id_ = 0;
  uint32_t session_id_ = 0;
  uint32_t shard_id_ = 0;
  const NumaMap* numa_ = nullptr;
  uint8_t node_id_ = 0;
  bool stolen_work_ = false;
  NumaStats numa_stats_;
  uint64_t host_ip_counter_ = 0;
  uint64_t ret_value_ = 0;
  CpuStats stats_;
};

}  // namespace dfp

#endif  // DFP_SRC_VCPU_CPU_H_
