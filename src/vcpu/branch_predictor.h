// Bimodal (2-bit saturating counter) branch predictor.
//
// Misprediction penalties are what make the paper's Figure 11 observation reproducible: a probe
// pipeline whose match/no-match outcome is clustered in time is cheap, while a mixed outcome
// stream pays steady penalties.
#ifndef DFP_SRC_VCPU_BRANCH_PREDICTOR_H_
#define DFP_SRC_VCPU_BRANCH_PREDICTOR_H_

#include <cstdint>
#include <vector>

namespace dfp {

class BranchPredictor {
 public:
  static constexpr uint32_t kTableSize = 16384;  // Entries; must be a power of two.
  static constexpr uint32_t kMissPenalty = 15;   // Cycles per misprediction.

  BranchPredictor() : counters_(kTableSize, 1) {}

  // Records the outcome of the conditional branch at `ip`; returns true if it was mispredicted.
  bool Branch(uint64_t ip, bool taken) {
    uint8_t& counter = counters_[static_cast<size_t>((ip ^ (ip >> 7)) & (kTableSize - 1))];
    bool predicted_taken = counter >= 2;
    if (taken && counter < 3) {
      ++counter;
    } else if (!taken && counter > 0) {
      --counter;
    }
    return predicted_taken != taken;
  }

  void Reset() { counters_.assign(kTableSize, 1); }

 private:
  std::vector<uint8_t> counters_;
};

}  // namespace dfp

#endif  // DFP_SRC_VCPU_BRANCH_PREDICTOR_H_
