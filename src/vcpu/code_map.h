// Code segments, the global instruction-pointer space, and the function registry.
//
// Every piece of executable code — generated query pipelines, pre-compiled runtime functions,
// host-modeled kernel work, and untagged system-library work — occupies a segment with a disjoint
// IP range. Profiling samples carry global IPs; segment kind is the first step of bottom-up
// sample attribution (Table 2 of the paper distinguishes operator, kernel, and unattributed
// samples by exactly this classification).
#ifndef DFP_SRC_VCPU_CODE_MAP_H_
#define DFP_SRC_VCPU_CODE_MAP_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/vcpu/minstr.h"

namespace dfp {

class Cpu;

enum class SegmentKind : uint8_t {
  kGenerated,  // Query code produced by the compilation engine (covered by the dictionary).
  kRuntime,    // Pre-compiled VIR functions shared between operators (needs disambiguation).
  kKernel,     // Host-modeled engine work: sorting, allocation, data movement.
  kSyslib,     // Host-modeled system libraries: string routines. Not covered by tagging.
};

const char* SegmentKindName(SegmentKind kind);

struct CodeSegment {
  uint32_t id = 0;
  SegmentKind kind = SegmentKind::kGenerated;
  std::string name;
  uint64_t base_ip = 0;
  std::vector<MInstr> code;   // Empty for host-modeled segments.
  uint64_t virtual_size = 0;  // IP-range size for host-modeled segments.

  uint64_t SizeIps() const { return code.empty() ? virtual_size : code.size(); }
};

// A host function: runs C++ code on behalf of the VCPU, charging modeled costs via the Cpu's
// HostWork/HostLoad interfaces.
using HostFn = std::function<uint64_t(Cpu& cpu, std::span<const uint64_t> args)>;

struct FuncInfo {
  std::string name;
  uint32_t id = 0;
  uint32_t segment = 0;
  uint32_t entry = 0;         // Code offset of the entry point within the segment.
  uint16_t spill_slots = 0;   // Frame size for compiled functions.
  uint8_t num_args = 0;
  HostFn host;                // Set for host-modeled functions.
  bool is_host = false;
};

class CodeMap {
 public:
  // Registers a compiled-code segment; returns its id. `code` is moved in.
  uint32_t AddSegment(SegmentKind kind, std::string name, std::vector<MInstr> code);

  // Registers a host-modeled segment occupying `virtual_size` synthetic IPs.
  uint32_t AddHostSegment(SegmentKind kind, std::string name, uint64_t virtual_size);

  // Registers a compiled function whose code lives in `segment` at `entry`.
  uint32_t AddFunction(std::string name, uint32_t segment, uint32_t entry, uint16_t spill_slots,
                       uint8_t num_args);

  // Registers a host function backed by the given host segment.
  uint32_t AddHostFunction(std::string name, uint32_t segment, HostFn fn, uint8_t num_args);

  const CodeSegment* FindByIp(uint64_t ip) const;
  const CodeSegment& segment(uint32_t id) const { return segments_[id]; }
  CodeSegment& mutable_segment(uint32_t id) { return segments_[id]; }
  const FuncInfo& function(uint32_t id) const { return functions_[id]; }
  const std::vector<CodeSegment>& segments() const { return segments_; }
  const std::vector<FuncInfo>& functions() const { return functions_; }

  // Looks up a function id by name; aborts if absent.
  uint32_t FunctionIdByName(const std::string& name) const;

 private:
  // Segments are spaced out in the IP space so that ranges never collide and an IP's segment is
  // recoverable by shifting.
  static constexpr uint64_t kSegmentSpacing = 1ull << 24;

  std::vector<CodeSegment> segments_;
  std::vector<FuncInfo> functions_;
};

}  // namespace dfp

#endif  // DFP_SRC_VCPU_CODE_MAP_H_
