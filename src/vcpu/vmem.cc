#include "src/vcpu/vmem.h"

namespace dfp {

VMem::VMem(uint64_t capacity) : bytes_(capacity, 0), next_base_(64) {
  // The first 64 bytes are reserved so that address 0 acts as a null pointer and small
  // accidental offsets fault visibly in tests.
}

uint32_t VMem::CreateRegion(const std::string& name, uint64_t size) {
  DFP_CHECK(next_base_ + size <= bytes_.size());
  MemRegion region;
  region.name = name;
  region.base = next_base_;
  region.size = size;
  regions_.push_back(region);
  next_base_ += size;
  return static_cast<uint32_t>(regions_.size() - 1);
}

VAddr VMem::Alloc(uint32_t region_id, uint64_t bytes, uint64_t align) {
  DFP_CHECK(region_id < regions_.size());
  DFP_CHECK(align > 0 && (align & (align - 1)) == 0);
  MemRegion& region = regions_[region_id];
  uint64_t offset = (region.used + align - 1) & ~(align - 1);
  DFP_CHECK(offset + bytes <= region.size);
  region.used = offset + bytes;
  return region.base + offset;
}

void VMem::ResetRegion(uint32_t region_id) {
  DFP_CHECK(region_id < regions_.size());
  MemRegion& region = regions_[region_id];
  std::memset(bytes_.data() + region.base, 0, region.used);
  region.used = 0;
}

void VMem::MarkPartitioned(VAddr base, uint64_t bytes) {
  if (bytes == 0) {
    return;
  }
  if (!partitioned_.empty()) {
    const MemExtent& last = partitioned_.back();
    DFP_CHECK(last.base + last.size <= base);
  }
  partitioned_.push_back(MemExtent{base, bytes});
}

void VMem::SetExtentPlacement(VAddr base, PartitionMap map) {
  DFP_CHECK(!map.empty());
  DFP_CHECK(map.back().end_frac == kPlacementDenom);
  for (size_t i = 1; i < map.size(); ++i) {
    DFP_CHECK(map[i - 1].end_frac < map[i].end_frac);
  }
  placements_[base] = std::move(map);
}

void VMem::ClearExtentPlacement(VAddr base) { placements_.erase(base); }

const PartitionMap* VMem::ExtentPlacement(VAddr base) const {
  auto it = placements_.find(base);
  return it == placements_.end() ? nullptr : &it->second;
}

const MemRegion* VMem::FindRegion(VAddr addr) const {
  for (const MemRegion& region : regions_) {
    if (addr >= region.base && addr < region.base + region.size) {
      return &region;
    }
  }
  return nullptr;
}

}  // namespace dfp
