#include "src/vcpu/code_map.h"

#include "src/util/check.h"

namespace dfp {

const char* SegmentKindName(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kGenerated:
      return "generated";
    case SegmentKind::kRuntime:
      return "runtime";
    case SegmentKind::kKernel:
      return "kernel";
    case SegmentKind::kSyslib:
      return "syslib";
  }
  return "?";
}

uint32_t CodeMap::AddSegment(SegmentKind kind, std::string name, std::vector<MInstr> code) {
  DFP_CHECK(code.size() < kSegmentSpacing);
  CodeSegment segment;
  segment.id = static_cast<uint32_t>(segments_.size());
  segment.kind = kind;
  segment.name = std::move(name);
  segment.base_ip = (static_cast<uint64_t>(segment.id) + 1) * kSegmentSpacing;
  segment.code = std::move(code);
  segments_.push_back(std::move(segment));
  return segments_.back().id;
}

uint32_t CodeMap::AddHostSegment(SegmentKind kind, std::string name, uint64_t virtual_size) {
  DFP_CHECK(virtual_size > 0 && virtual_size < kSegmentSpacing);
  CodeSegment segment;
  segment.id = static_cast<uint32_t>(segments_.size());
  segment.kind = kind;
  segment.name = std::move(name);
  segment.base_ip = (static_cast<uint64_t>(segment.id) + 1) * kSegmentSpacing;
  segment.virtual_size = virtual_size;
  segments_.push_back(std::move(segment));
  return segments_.back().id;
}

uint32_t CodeMap::AddFunction(std::string name, uint32_t segment, uint32_t entry,
                              uint16_t spill_slots, uint8_t num_args) {
  DFP_CHECK(segment < segments_.size());
  FuncInfo info;
  info.name = std::move(name);
  info.id = static_cast<uint32_t>(functions_.size());
  info.segment = segment;
  info.entry = entry;
  info.spill_slots = spill_slots;
  info.num_args = num_args;
  functions_.push_back(std::move(info));
  return functions_.back().id;
}

uint32_t CodeMap::AddHostFunction(std::string name, uint32_t segment, HostFn fn,
                                  uint8_t num_args) {
  DFP_CHECK(segment < segments_.size());
  FuncInfo info;
  info.name = std::move(name);
  info.id = static_cast<uint32_t>(functions_.size());
  info.segment = segment;
  info.num_args = num_args;
  info.host = std::move(fn);
  info.is_host = true;
  functions_.push_back(std::move(info));
  return functions_.back().id;
}

const CodeSegment* CodeMap::FindByIp(uint64_t ip) const {
  uint64_t index = ip / kSegmentSpacing;
  if (index == 0 || index > segments_.size()) {
    return nullptr;
  }
  const CodeSegment& segment = segments_[index - 1];
  if (ip - segment.base_ip >= segment.SizeIps()) {
    return nullptr;
  }
  return &segment;
}

uint32_t CodeMap::FunctionIdByName(const std::string& name) const {
  for (const FuncInfo& info : functions_) {
    if (info.name == name) {
      return info.id;
    }
  }
  DFP_UNREACHABLE();
}

}  // namespace dfp
