#include "src/vcpu/cache.h"

#include <bit>

#include "src/util/check.h"

namespace dfp {

CacheLevel::CacheLevel(const CacheLevelConfig& config, uint32_t line_bytes)
    : ways_(config.ways), latency_(config.latency) {
  DFP_CHECK(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0);
  uint64_t line_count = config.size_bytes / line_bytes;
  DFP_CHECK(line_count % ways_ == 0);
  set_count_ = static_cast<uint32_t>(line_count / ways_);
  DFP_CHECK(set_count_ > 0 && (set_count_ & (set_count_ - 1)) == 0);
  line_shift_ = static_cast<uint32_t>(std::countr_zero(line_bytes));
  lines_.resize(line_count);
}

bool CacheLevel::Access(VAddr addr) {
  uint64_t line_addr = addr >> line_shift_;
  uint32_t set = static_cast<uint32_t>(line_addr & (set_count_ - 1));
  uint64_t tag = line_addr >> std::countr_zero(static_cast<uint64_t>(set_count_));
  Line* set_lines = &lines_[static_cast<size_t>(set) * ways_];
  ++tick_;
  uint32_t victim = 0;
  uint64_t victim_age = ~0ull;
  for (uint32_t way = 0; way < ways_; ++way) {
    if (set_lines[way].tag == tag) {
      set_lines[way].age = tick_;
      return true;
    }
    if (set_lines[way].age < victim_age) {
      victim_age = set_lines[way].age;
      victim = way;
    }
  }
  set_lines[victim].tag = tag;
  set_lines[victim].age = tick_;
  return false;
}

void CacheLevel::Reset() {
  for (Line& line : lines_) {
    line = Line();
  }
  tick_ = 0;
}

CacheHierarchy::CacheHierarchy(const CacheConfig& config)
    : config_(config),
      l1_(config.l1, config.line_bytes),
      l2_(config.l2, config.line_bytes),
      l3_(config.l3, config.line_bytes) {}

CacheAccessResult CacheHierarchy::Access(VAddr addr) {
  ++stats_.accesses;
  if (l1_.Access(addr)) {
    return {1, l1_.latency()};
  }
  ++stats_.l1_misses;
  if (l2_.Access(addr)) {
    return {2, l2_.latency()};
  }
  ++stats_.l2_misses;
  if (l3_.Access(addr)) {
    return {3, l3_.latency()};
  }
  ++stats_.l3_misses;
  return {4, config_.memory_latency};
}

void CacheHierarchy::Reset() {
  l1_.Reset();
  l2_.Reset();
  l3_.Reset();
  stats_ = CacheStats();
}

}  // namespace dfp
