// Textual rendering of machine code — the lowest abstraction level of profiling reports
// (what a traditional `perf report` would show).
#ifndef DFP_SRC_VCPU_DISASM_H_
#define DFP_SRC_VCPU_DISASM_H_

#include <string>

#include "src/vcpu/code_map.h"
#include "src/vcpu/minstr.h"

namespace dfp {

// One instruction, e.g. "r3 = add r1, 42" or "condbr r2, @12, @17".
std::string MInstrToString(const MInstr& instr);

// A whole segment with offsets, one instruction per line.
std::string RenderSegment(const CodeSegment& segment);

}  // namespace dfp

#endif  // DFP_SRC_VCPU_DISASM_H_
