// Three-level set-associative cache hierarchy with LRU replacement.
//
// The cache model drives two things: the cycle cost of every memory instruction (which is what
// makes hash-table directory lookups the hotspot they are in the paper's Listing 1) and the
// cache-miss PMU events that sampling configurations can be armed on.
#ifndef DFP_SRC_VCPU_CACHE_H_
#define DFP_SRC_VCPU_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/vcpu/vmem.h"

namespace dfp {

// Outcome of one memory access: the level that served it and the total latency in cycles.
struct CacheAccessResult {
  int hit_level = 0;  // 1 = L1, 2 = L2, 3 = L3, 4 = memory
  uint32_t latency = 0;
};

struct CacheLevelConfig {
  uint64_t size_bytes = 0;
  uint32_t ways = 0;
  uint32_t latency = 0;  // Cycles to serve a hit at this level.
};

struct CacheConfig {
  uint32_t line_bytes = 64;
  CacheLevelConfig l1{32 * 1024, 8, 4};
  CacheLevelConfig l2{256 * 1024, 4, 12};
  CacheLevelConfig l3{8 * 1024 * 1024, 16, 42};
  uint32_t memory_latency = 220;
};

struct CacheStats {
  uint64_t accesses = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_misses = 0;
  uint64_t l3_misses = 0;
};

// One inclusive cache level. LRU is tracked with per-line ages (small associativity makes the
// linear scan cheap).
class CacheLevel {
 public:
  CacheLevel(const CacheLevelConfig& config, uint32_t line_bytes);

  // Returns true on hit; on miss the line is installed (allocate-on-miss for loads and stores).
  bool Access(VAddr addr);

  uint32_t latency() const { return latency_; }
  void Reset();

 private:
  struct Line {
    uint64_t tag = ~0ull;
    uint64_t age = 0;
  };

  uint32_t ways_;
  uint32_t latency_;
  uint32_t set_count_;
  uint32_t line_shift_;
  uint64_t tick_ = 0;
  std::vector<Line> lines_;  // set-major: lines_[set * ways_ + way]
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const CacheConfig& config = CacheConfig());

  // Simulates a data access (loads and stores both allocate).
  CacheAccessResult Access(VAddr addr);

  const CacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = CacheStats(); }
  void Reset();

 private:
  CacheConfig config_;
  CacheLevel l1_;
  CacheLevel l2_;
  CacheLevel l3_;
  CacheStats stats_;
};

}  // namespace dfp

#endif  // DFP_SRC_VCPU_CACHE_H_
