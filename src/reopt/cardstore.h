// Measured per-operator cardinalities, accumulated per plan fingerprint.
//
// When the service compiles with tuple counting enabled, every execution reads back one exact
// row count per task (EXPLAIN-ANALYZE style, surfaced through CompiledQuery::tuple_counts).
// ObservedCardinalities folds those task counts back onto the dataflow graph's OperatorIds —
// the top abstraction level — and the CardStore keeps an integer EWMA per (fingerprint,
// operator) next to the plan-time estimate, so the re-optimization controller can ask "how far
// off were the estimates that picked this plan?" as a single divergence ratio.
#ifndef DFP_SRC_REOPT_CARDSTORE_H_
#define DFP_SRC_REOPT_CARDSTORE_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/engine/exec_plan.h"
#include "src/plan/rewrite.h"

namespace dfp {

// Folds the most recent execution's tuple counts onto operator ids. Source, filter, map,
// probe, limit, and output tasks count the operator's own output rows; build-side and
// aggregation-input tasks count the rows of the child feeding them (which is exactly the
// build-side blowup measurement the semi-join gate needs). Empty when the query was compiled
// without counters.
CardinalityMap ObservedCardinalities(const CompiledQuery& query);

// One operator's accumulated measurement.
struct CardEntry {
  uint64_t observed_rows = 0;   // Integer EWMA: new = (3*old + observed) / 4.
  uint64_t estimated_rows = 0;  // Plan-time estimate at the last observation.
  uint64_t executions = 0;
  uint64_t generation = 0;  // Store generation of the last observation.
};

struct PlanCards {
  std::string name;
  uint64_t executions = 0;
  uint64_t generation = 0;
  std::map<OperatorId, CardEntry> operators;
};

// Per-fingerprint cardinality accumulator. A generation is one Observe call; plans unobserved
// for `max_age` generations age out, so a retired fingerprint cannot pin memory forever.
class CardStore {
 public:
  // Folds one execution's observed rows (and the plan-time estimates they contradict or
  // confirm) into the fingerprint's entry.
  void Observe(uint64_t fingerprint, const std::string& name, const CardinalityMap& observed,
               const CardinalityMap& estimated);

  const PlanCards* Find(uint64_t fingerprint) const;

  // Worst estimate-vs-observed ratio across the fingerprint's operators, in percent (100 =
  // estimates exact, 400 = 4x off in either direction). Zero when nothing was observed.
  uint64_t MaxDivergencePct(uint64_t fingerprint) const;
  static uint64_t DivergencePct(uint64_t observed, uint64_t estimated);

  const std::map<uint64_t, PlanCards>& plans() const { return plans_; }
  uint64_t generation() const { return generation_; }

  // Loading hooks used by ReadServiceProfile (v6): restore a persisted plan's cards and the
  // store generation so a restarted service resumes from its pre-restart measurements.
  PlanCards& LoadPlan(uint64_t fingerprint) { return plans_[fingerprint]; }
  void SetLoadedGeneration(uint64_t generation) { generation_ = generation; }

  uint64_t max_age = 512;

 private:
  uint64_t generation_ = 0;
  std::map<uint64_t, PlanCards> plans_;
};

// One block per plan: operator rows observed vs estimated with divergence ratios.
std::string RenderCardStore(const CardStore& store);

}  // namespace dfp

#endif  // DFP_SRC_REOPT_CARDSTORE_H_
