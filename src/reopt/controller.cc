#include "src/reopt/controller.h"

#include "src/tiering/literals.h"
#include "src/util/check.h"
#include "src/util/str.h"

namespace dfp {
namespace {

std::string HexKey(uint64_t fingerprint) {
  return StrFormat("%016llx", static_cast<unsigned long long>(fingerprint));
}

}  // namespace

RegressionThresholds ReoptGuardThresholds() {
  RegressionThresholds thresholds;
  // Shares live in [0,1]: a drift threshold of 2.0 can never fire. The candidate's operator
  // ids do not correspond to the baseline's, so the mix comparison is meaningless here.
  thresholds.share_drift = 2.0;
  return thresholds;
}

const char* ReoptStateName(ReoptState state) {
  switch (state) {
    case ReoptState::kDecided:
      return "decided";
    case ReoptState::kApplied:
      return "applied";
    case ReoptState::kKept:
      return "kept";
    case ReoptState::kReverted:
      return "reverted";
  }
  return "?";
}

bool ReoptStateFromName(const std::string& name, ReoptState* out) {
  for (ReoptState state : {ReoptState::kDecided, ReoptState::kApplied, ReoptState::kKept,
                           ReoptState::kReverted}) {
    if (name == ReoptStateName(state)) {
      *out = state;
      return true;
    }
  }
  return false;
}

ReoptAction& ReoptLog::Add(ReoptAction action) {
  actions_.push_back(std::move(action));
  return actions_.back();
}

ReoptAction* ReoptLog::Find(uint64_t fingerprint) {
  for (auto it = actions_.rbegin(); it != actions_.rend(); ++it) {
    if (it->fingerprint == fingerprint) {
      return &*it;
    }
  }
  return nullptr;
}

const ReoptAction* ReoptLog::Find(uint64_t fingerprint) const {
  return const_cast<ReoptLog*>(this)->Find(fingerprint);
}

uint64_t ReoptLog::applied() const {
  uint64_t count = 0;
  for (const ReoptAction& action : actions_) {
    count += action.state == ReoptState::kApplied || action.state == ReoptState::kKept;
  }
  return count;
}

uint64_t ReoptLog::kept() const {
  uint64_t count = 0;
  for (const ReoptAction& action : actions_) {
    count += action.state == ReoptState::kKept;
  }
  return count;
}

uint64_t ReoptLog::reverted() const {
  uint64_t count = 0;
  for (const ReoptAction& action : actions_) {
    count += action.state == ReoptState::kReverted;
  }
  return count;
}

std::string RenderReoptTimeline(const ReoptLog& log) {
  std::string out = "=== reopt timeline ===\n";
  if (log.actions().empty()) {
    out += "(no re-optimizations)\n";
    return out;
  }
  for (const ReoptAction& action : log.actions()) {
    out += "plan " + HexKey(action.fingerprint) + " " + action.plan_name + " [" +
           ReoptStateName(action.state) + "] divergence=" +
           std::to_string(action.divergence_pct) + "%";
    if (!action.description.empty()) {
      out += " " + action.description;
    }
    out += " decided@" + std::to_string(action.decided_tsc);
    if (action.applied_tsc != 0) {
      out += " applied@" + std::to_string(action.applied_tsc);
    }
    if (action.resolved_tsc != 0) {
      out += " resolved@" + std::to_string(action.resolved_tsc);
    }
    out += "\n";
  }
  return out;
}

std::vector<uint32_t> ReoptLiteralPermutation(const PhysicalOp& original,
                                              const CardinalityMap& observed,
                                              const ReoptRewriteOptions& options) {
  PhysicalOpPtr sentinel_plan = ClonePlan(original);
  std::vector<LiteralBinding> sentinels = ExtractLiterals(*sentinel_plan).bindings;
  // Unique per-slot payloads. The base is large enough not to collide with plausible plan
  // constants, and patterns get a control byte no SQL pattern contains.
  constexpr int64_t kSentinelBase = 1'000'000'007;
  for (size_t j = 0; j < sentinels.size(); ++j) {
    if (sentinels[j].kind == LiteralBinding::Kind::kPattern) {
      sentinels[j].pattern = std::string("\x01reopt-sentinel-") + std::to_string(j);
    } else {
      sentinels[j].value = kSentinelBase + static_cast<int64_t>(j);
    }
  }
  BindLiterals(*sentinel_plan, sentinels);
  ReoptRewrite rewrite = ReoptimizePlan(*sentinel_plan, observed, options);
  DFP_CHECK(rewrite.changed);
  const PlanLiterals candidate = ExtractLiterals(*rewrite.plan);
  std::vector<uint32_t> permutation;
  permutation.reserve(candidate.bindings.size());
  for (const LiteralBinding& binding : candidate.bindings) {
    size_t j = 0;
    for (; j < sentinels.size(); ++j) {
      if (binding.kind != sentinels[j].kind) {
        continue;
      }
      const bool match = binding.kind == LiteralBinding::Kind::kPattern
                             ? binding.pattern == sentinels[j].pattern
                             : binding.value == sentinels[j].value;
      if (match) {
        break;
      }
    }
    DFP_CHECK(j < sentinels.size());
    permutation.push_back(static_cast<uint32_t>(j));
  }
  if (permutation.size() == sentinels.size()) {
    bool identity = true;
    for (size_t j = 0; j < permutation.size(); ++j) {
      identity &= permutation[j] == static_cast<uint32_t>(j);
    }
    if (identity) {
      return {};
    }
  }
  return permutation;
}

}  // namespace dfp
