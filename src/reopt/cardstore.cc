#include "src/reopt/cardstore.h"

#include <algorithm>

#include "src/util/str.h"

namespace dfp {
namespace {

std::string HexKey(uint64_t fingerprint) {
  return StrFormat("%016llx", static_cast<unsigned long long>(fingerprint));
}

}  // namespace

CardinalityMap ObservedCardinalities(const CompiledQuery& query) {
  CardinalityMap out;
  if (query.tuple_counts.empty()) {
    return out;
  }
  for (const PipelineArtifact& artifact : query.pipelines) {
    for (const PipelineStep& step : artifact.pipeline.steps) {
      if (step.task == kNoTask || step.op == nullptr) {
        continue;
      }
      auto count = query.tuple_counts.find(step.task);
      if (count == query.tuple_counts.end()) {
        continue;
      }
      using Role = PipelineStep::Role;
      switch (step.role) {
        case Role::kScanSource:
        case Role::kGroupScanSource:
        case Role::kSortScanSource:
        case Role::kGroupJoinScanSource:
        case Role::kFilter:
        case Role::kMap:
        case Role::kProbe:
        case Role::kLimit:
        case Role::kOutput:
          out[step.op->id] = count->second;
          break;
        case Role::kBuild:
        case Role::kGroupJoinBuild:
        case Role::kGroupByAggregate:
        case Role::kSortMaterialize:
          // These tasks consume child rows one by one: the count measures the child's output
          // (for builds, the build-side input — the blowup the semi-join gate watches).
          out[step.op->child(0)->id] = count->second;
          break;
        case Role::kGroupJoinProbe:
          out[step.op->child(1)->id] = count->second;
          break;
      }
    }
  }
  return out;
}

void CardStore::Observe(uint64_t fingerprint, const std::string& name,
                        const CardinalityMap& observed, const CardinalityMap& estimated) {
  ++generation_;
  PlanCards& plan = plans_[fingerprint];
  if (plan.name.empty()) {
    plan.name = name;
  }
  ++plan.executions;
  plan.generation = generation_;
  for (const auto& [op, rows] : observed) {
    CardEntry& entry = plan.operators[op];
    entry.observed_rows =
        entry.executions == 0 ? rows : (3 * entry.observed_rows + rows) / 4;
    auto estimate = estimated.find(op);
    if (estimate != estimated.end()) {
      entry.estimated_rows = estimate->second;
    }
    ++entry.executions;
    entry.generation = generation_;
  }
  for (auto it = plans_.begin(); it != plans_.end();) {
    if (it->second.generation + max_age < generation_) {
      it = plans_.erase(it);
    } else {
      ++it;
    }
  }
}

const PlanCards* CardStore::Find(uint64_t fingerprint) const {
  auto it = plans_.find(fingerprint);
  return it == plans_.end() ? nullptr : &it->second;
}

uint64_t CardStore::DivergencePct(uint64_t observed, uint64_t estimated) {
  const uint64_t high = std::max<uint64_t>(std::max(observed, estimated), 1);
  const uint64_t low = std::max<uint64_t>(std::min(observed, estimated), 1);
  return 100 * high / low;
}

uint64_t CardStore::MaxDivergencePct(uint64_t fingerprint) const {
  const PlanCards* plan = Find(fingerprint);
  if (plan == nullptr) {
    return 0;
  }
  uint64_t worst = 0;
  for (const auto& [op, entry] : plan->operators) {
    if (entry.executions == 0) {
      continue;
    }
    worst = std::max(worst, DivergencePct(entry.observed_rows, entry.estimated_rows));
  }
  return worst;
}

std::string RenderCardStore(const CardStore& store) {
  std::string out = "=== cardinality store (generation " +
                    std::to_string(store.generation()) + ") ===\n";
  if (store.plans().empty()) {
    out += "(no observations)\n";
    return out;
  }
  for (const auto& [fingerprint, plan] : store.plans()) {
    out += "plan " + HexKey(fingerprint) + " " + plan.name +
           " execs=" + std::to_string(plan.executions) + "\n";
    for (const auto& [op, entry] : plan.operators) {
      out += "  op " + std::to_string(op) + " observed=" +
             std::to_string(entry.observed_rows) + " estimated=" +
             std::to_string(entry.estimated_rows) + " div=" +
             std::to_string(CardStore::DivergencePct(entry.observed_rows,
                                                     entry.estimated_rows)) +
             "% execs=" + std::to_string(entry.executions) + "\n";
    }
  }
  return out;
}

}  // namespace dfp
