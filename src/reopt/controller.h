// Closed-loop profile-guided re-optimization: configuration, action lifecycle, audit trail.
//
// The loop (wired in QueryService): every execution's tuple counts land in the CardStore; when
// a hot fingerprint's worst estimate-vs-observed divergence crosses the trigger threshold, the
// physical planning decisions that depended on those estimates are re-run with the observations
// injected (src/plan/rewrite.h), and the candidate compiles on the background recompile lane at
// the entry's current tier. The swap is guarded, not trusted — the same propose -> apply ->
// re-measure -> keep-or-revert shape as placement repair: a baseline is snapshotted at swap
// time and JudgeRegression over the post-swap windows keeps or reverts. Every transition lands
// in the sample stream as a v8 `reopt` line and in the timeline rendering below.
#ifndef DFP_SRC_REOPT_CONTROLLER_H_
#define DFP_SRC_REOPT_CONTROLLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/continuous/regression.h"
#include "src/plan/rewrite.h"
#include "src/service/plan_cache.h"

namespace dfp {

// Guard thresholds for judging a swapped candidate. A re-planned candidate gets fresh operator
// ids from FinalizePlan, so the per-operator share-drift check would fire on every swap by
// construction; the verdict rests on the id-independent whole-plan rates instead
// (cycles-per-row ratio and remote-DRAM share).
RegressionThresholds ReoptGuardThresholds();

struct ReoptConfig {
  // Off by default: re-optimization changes compiled code and schedules, so it is opt-in like
  // every other closed-loop feature (byte-identical reruns stay the default contract).
  bool enabled = false;
  // Trigger: the fingerprint's worst observed/estimated ratio must reach this many percent
  // (400 = measurements 4x off the estimates that picked the join order).
  uint64_t divergence_pct = 400;
  // Executions before a fingerprint's EWMAs are trusted enough to re-plan.
  uint64_t min_executions = 3;
  // Enable the semi-join-reduction insertion, gated on measured build-side blowup.
  bool semi_join_reduction = false;
  uint64_t semi_join_blowup_pct = 300;
  // Fault injection: rewrite to the WORST measured join order instead of the best. The guard
  // must catch and revert it — tests and the bench drive the revert path this way.
  bool pessimize = false;
  RegressionThresholds guard = ReoptGuardThresholds();
};

// Lifecycle of one re-optimization. kDecided spans the candidate's background compile; a kept
// or reverted action stays in the log as the audit trail and blocks re-triggering on the same
// fingerprint (a kept candidate re-estimated from its own measurements, a reverted one proved
// the measurements misleading — either way the loop must not oscillate).
enum class ReoptState : uint8_t {
  kDecided,   // Divergence crossed the trigger; candidate compiling on the recompile lane.
  kApplied,   // Candidate swapped in; re-measuring against the pre-swap baseline.
  kKept,      // Guard verdict clean: the candidate stays.
  kReverted,  // Guard verdict regressed (or the swap did not survive): original restored.
};

const char* ReoptStateName(ReoptState state);
// Inverse, for profile loading. Returns false on an unknown name.
bool ReoptStateFromName(const std::string& name, ReoptState* out);

struct ReoptAction {
  uint64_t fingerprint = 0;
  std::string plan_name;
  std::string description;  // Rewrite summary, e.g. "reorder 1,0 semijoin".
  ReoptState state = ReoptState::kDecided;
  uint64_t decided_tsc = 0;
  uint64_t applied_tsc = 0;
  uint64_t resolved_tsc = 0;   // Kept/reverted timestamp; 0 while still measuring.
  uint64_t divergence_pct = 0;  // Divergence at decision time.
  bool reordered = false;
  bool semi_join = false;
  // The entry the candidate replaced; re-inserting it is the revert (its machine code stays
  // registered in the code map, so the revert is an atomic pointer swap, not a recompile).
  // Null for actions loaded from a persisted profile.
  CachedPlanPtr previous;
};

// Append-only audit log, one action per fingerprint at a time.
class ReoptLog {
 public:
  ReoptAction& Add(ReoptAction action);
  ReoptAction* Find(uint64_t fingerprint);
  const ReoptAction* Find(uint64_t fingerprint) const;

  const std::vector<ReoptAction>& actions() const { return actions_; }
  uint64_t applied() const;   // Actions currently applied or kept.
  uint64_t kept() const;
  uint64_t reverted() const;  // Actions the guard rolled back.

 private:
  std::vector<ReoptAction> actions_;
};

// Tier-timeline-style rendering: one line per action with its transitions and rewrite summary.
std::string RenderReoptTimeline(const ReoptLog& log);

// Recovers the literal-slot mapping a rewrite induces: element j is the ORIGINAL submission
// slot whose payload feeds the candidate's slot j (possibly duplicating a source slot — a
// semi-join reduction clones build-side literal sites). Empty means identity. Works by
// re-running the same rewrite over a clone whose slots are bound to unique sentinel payloads
// and matching the sentinels back out of the candidate's extraction order; sound because the
// rewrite never reads literal payloads (ordering keys off estimated_rows, which BindLiterals
// does not touch). `observed` and `options` must be exactly what produced the candidate, and
// the rewrite must actually change the plan.
std::vector<uint32_t> ReoptLiteralPermutation(const PhysicalOp& original,
                                              const CardinalityMap& observed,
                                              const ReoptRewriteOptions& options);

}  // namespace dfp

#endif  // DFP_SRC_REOPT_CONTROLLER_H_
