#include "src/tiering/report.h"

#include <cstdio>
#include <sstream>
#include <vector>

namespace dfp {
namespace {

std::string HexKey(uint64_t fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(fingerprint));
  return buffer;
}

const char* WindowTierLabel(const ProfileWindow& window) {
  if (window.baseline_executions == 0) {
    return "optimized";
  }
  if (window.baseline_executions == window.executions) {
    return "baseline";
  }
  return "mixed";
}

}  // namespace

TierTimelineTotals SummarizeTierTimeline(const WindowedProfile& windows,
                                         const TierController& controller) {
  TierTimelineTotals totals;
  for (const auto& [fingerprint, series] : windows.plans()) {
    (void)fingerprint;
    for (const ProfileWindow& window : series.windows) {
      totals.samples += window.samples;
      totals.baseline_samples += window.baseline_samples;
      totals.optimized_samples += window.samples - window.baseline_samples;
    }
  }
  for (const TierTransition& transition : controller.transitions()) {
    (void)transition;
    ++totals.transitions;
    if (transition.swapped_at_cycles != 0) {
      ++totals.swapped;
    }
  }
  return totals;
}

std::string RenderTierTimeline(const WindowedProfile& windows, const TierController& controller) {
  const uint64_t width = windows.config().width_cycles;
  std::ostringstream out;
  out << "=== Tier timeline (window width " << width << " cyc) ===\n";
  for (const auto& [fingerprint, series] : windows.plans()) {
    // Transitions of this fingerprint, in decision order.
    std::vector<const TierTransition*> transitions;
    for (const TierTransition& transition : controller.transitions()) {
      if (transition.fingerprint == fingerprint) {
        transitions.push_back(&transition);
      }
    }
    out << "plan " << HexKey(fingerprint) << "  " << series.name << "\n";
    for (const ProfileWindow& window : series.windows) {
      out << "  w" << window.index << "  [" << WindowTierLabel(window) << "]  exec "
          << (window.executions - window.baseline_executions) << " opt + "
          << window.baseline_executions << " base  samples "
          << (window.samples - window.baseline_samples) << " opt + " << window.baseline_samples
          << " base\n";
      for (const TierTransition* transition : transitions) {
        if (transition->decided_at_cycles / width == window.index) {
          out << "    -> promote " << TierName(transition->from) << " -> "
              << TierName(transition->to) << " @" << transition->decided_at_cycles
              << " (rollup " << transition->rollup_cycles << " cyc >= threshold "
              << transition->threshold_cycles << " cyc)\n";
        }
        if (transition->swapped_at_cycles != 0 &&
            transition->swapped_at_cycles / width == window.index) {
          out << "    -> swap live @" << transition->swapped_at_cycles << "\n";
        }
      }
    }
    // Markers outside every retained window (e.g. the ring evicted the decision's window, or
    // the swap landed after the last recorded execution) still need to show up.
    for (const TierTransition* transition : transitions) {
      const uint64_t decided_window = transition->decided_at_cycles / width;
      const uint64_t swapped_window = transition->swapped_at_cycles / width;
      bool decided_shown = false;
      bool swapped_shown = transition->swapped_at_cycles == 0;
      for (const ProfileWindow& window : series.windows) {
        decided_shown = decided_shown || window.index == decided_window;
        swapped_shown = swapped_shown || window.index == swapped_window;
      }
      if (!decided_shown) {
        out << "  (w" << decided_window << ")  -> promote " << TierName(transition->from)
            << " -> " << TierName(transition->to) << " @" << transition->decided_at_cycles
            << " (rollup " << transition->rollup_cycles << " cyc >= threshold "
            << transition->threshold_cycles << " cyc)\n";
      }
      if (!swapped_shown) {
        out << "  (w" << swapped_window << ")  -> swap live @" << transition->swapped_at_cycles
            << "\n";
      }
      if (transition->swapped_at_cycles == 0) {
        out << "    (recompile in flight)\n";
      }
    }
  }
  return out.str();
}

}  // namespace dfp
