// Plan-literal extraction: the bridge between plan fingerprinting and immediate patching.
//
// A structure-hash cache hit with different literals can reuse the cached machine code if every
// parameterized-out constant is re-bound. This module assigns each literal payload a stable
// slot number in the exact traversal order FingerprintPlan hashes them (src/service/
// fingerprint.cc — the two walks must never diverge), records the bindings, and maps each
// literal-bearing Expr to its first slot so the code generator can tag the lowered immediates
// (Value::Param) for the emitter's relocation table.
//
// LIMIT counts are literals for fingerprinting purposes but are *pinned* here: FinalizePlan
// sizes sort buffers and result arenas from `bound_rows`, which a LIMIT caps, so patching a
// limit immediate would leave the cached schedule sized for the wrong row bound. The
// parameterized cache therefore keys on (structure, pinned) and only patches the free literals.
#ifndef DFP_SRC_TIERING_LITERALS_H_
#define DFP_SRC_TIERING_LITERALS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/plan/physical.h"

namespace dfp {

struct LiteralBinding {
  enum class Kind : uint8_t {
    kValue,    // Register payload (ints, scaled decimals, dates, bit-cast doubles, IN-list
               // members): patched by writing the payload into the recorded immediate sites.
    kPattern,  // LIKE pattern: patched by registering the new pattern with the runtime and
               // writing the new pattern id into the recorded call-argument sites.
    kLimit,    // Pinned (see header comment): never patched; equal by cache-key construction.
  };
  Kind kind = Kind::kValue;
  int64_t value = 0;    // kValue payload / kLimit count / kPattern's registered pattern id.
  std::string pattern;  // kPattern payload.

  bool operator==(const LiteralBinding& other) const {
    return kind == other.kind && value == other.value && pattern == other.pattern;
  }
  bool operator!=(const LiteralBinding& other) const { return !(*this == other); }
};

struct PlanLiterals {
  std::vector<LiteralBinding> bindings;  // Indexed by literal slot.
  // Literal-bearing Expr -> its first slot (kInList members occupy slot .. slot + n - 1).
  // Valid only while the walked plan is alive; used during code generation of that same plan.
  std::unordered_map<const Expr*, uint32_t> expr_slots;

  // Slot of `expr`'s payload, or kNoLiteralSlot (from src/ir/instr.h) when the expr carries no
  // parameterized literal.
  uint32_t SlotOf(const Expr& expr) const;
};

// Walks `root` in fingerprint order and collects every literal payload.
PlanLiterals ExtractLiterals(const PhysicalOp& root);

// True when a plan with `cached` bindings can serve one with `incoming` bindings by patching:
// identical slot layout and kinds, and every pinned binding identical. (Guaranteed for plans
// agreeing on (structure, pinned) fingerprint halves; checked defensively anyway.)
bool PatchCompatible(const PlanLiterals& cached, const PlanLiterals& incoming);

// Rewrites `root`'s literal payloads in place so a subsequent ExtractLiterals(root) yields
// exactly `bindings`. This is the tree-level counterpart of PatchCachedPlan: the replayer
// (src/replay/) rebinds a cloned plan template to a recorded query's literals *before*
// compilation, so — unlike machine-code patching — pinned LIMIT counts are rewritten too
// (FinalizePlan then re-derives the row bounds they cap). Throws dfp::Error when `bindings`
// does not match the plan's slot layout (count or kind mismatch), which indicates a corrupt or
// mismatched trace rather than a programming error.
void BindLiterals(PhysicalOp& root, const std::vector<LiteralBinding>& bindings);

}  // namespace dfp

#endif  // DFP_SRC_TIERING_LITERALS_H_
