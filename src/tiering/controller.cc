#include "src/tiering/controller.h"

#include <algorithm>

namespace dfp {

bool TierController::Observe(uint64_t fingerprint, const std::string& name,
                             const WindowedProfile& windows, uint64_t execute_cycles,
                             uint64_t optimizing_compile_cycles, uint64_t now_cycles,
                             uint64_t critical_path_cycles) {
  if (!config_.enabled) {
    return false;
  }
  TierState& state = state_[fingerprint];
  ++state.executions;
  state.cumulative_cycles += execute_cycles;
  if (state.promoted || state.executions < config_.min_executions) {
    return false;
  }
  // Critical-path evidence when the caller supplies it (cycles that gated latency); otherwise
  // windowed evidence when available (recent-rate semantics; old windows fall off the ring),
  // with a cumulative fallback when the service runs without windows.
  uint64_t evidence;
  if (config_.promote_by_critical_path && critical_path_cycles != 0) {
    evidence = critical_path_cycles;
  } else {
    const WindowRollup rollup = windows.RollUp(fingerprint);
    evidence = std::max(rollup.execute_cycles, state.cumulative_cycles);
  }
  const uint64_t threshold = static_cast<uint64_t>(
      config_.break_even_ratio * static_cast<double>(optimizing_compile_cycles));
  if (evidence < threshold) {
    return false;
  }
  state.promoted = true;
  TierTransition transition;
  transition.fingerprint = fingerprint;
  transition.name = name;
  transition.from = PlanTier::kBaseline;
  transition.to = PlanTier::kOptimized;
  transition.decided_at_cycles = now_cycles;
  transition.rollup_cycles = evidence;
  transition.threshold_cycles = threshold;
  transitions_.push_back(std::move(transition));
  return true;
}

void TierController::MarkSwapped(uint64_t fingerprint, uint64_t now_cycles) {
  for (auto it = transitions_.rbegin(); it != transitions_.rend(); ++it) {
    if (it->fingerprint == fingerprint && it->swapped_at_cycles == 0) {
      it->swapped_at_cycles = now_cycles;
      return;
    }
  }
}

}  // namespace dfp
