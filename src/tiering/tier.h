// Compilation tiers and the tiering configuration of the serving layer.
//
// The paper's profiles become actionable here: instead of always paying the optimizing backend
// up front, a new plan fingerprint starts on a cheap baseline compile (optimization passes
// disabled — Umbra's "flying start" regime), and the continuous-profiling windows decide which
// fingerprints are hot enough to be worth recompiling at the optimizing tier in the background.
#ifndef DFP_SRC_TIERING_TIER_H_
#define DFP_SRC_TIERING_TIER_H_

#include <cstdint>

namespace dfp {

// kOptimized is 0 so existing single-tier artifacts, samples, and serialized streams (which
// never mention a tier) read back as "optimizing backend" unchanged.
enum class PlanTier : uint8_t {
  kOptimized = 0,  // Full optimization pipeline (the engine's historical default).
  kBaseline = 1,   // Cheap compile: optimization passes disabled.
};

const char* TierName(PlanTier tier);

struct TieringConfig {
  // Off by default: every compile goes straight to the optimizing tier and the service behaves
  // exactly as before (byte-identical artifacts, streams, and reports).
  bool enabled = false;
  // Promote a baseline-tier fingerprint once its windowed execute cycles reach this multiple of
  // the estimated optimizing-tier compile cost (classic break-even: at 1.0 the recompile has
  // paid for itself if the plan keeps its recent execution rate).
  double break_even_ratio = 1.0;
  // Never promote before this many completed executions (one-shot queries stay on baseline).
  uint64_t min_executions = 2;
  // Use critical-path work as promotion evidence when the caller supplies it (the service
  // feeds the critical-path tracker's cumulative cycles — src/critpath/). A fingerprint then
  // promotes by how many cycles it put on its queries' critical paths, not by how many it
  // burned in aggregate: wide-but-slack pipelines stop buying recompiles that cannot move
  // latency. Callers that pass no critical-path evidence keep the raw-cycle behavior.
  bool promote_by_critical_path = true;
};

}  // namespace dfp

#endif  // DFP_SRC_TIERING_TIER_H_
