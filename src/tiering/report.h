// Tier timeline report: per-fingerprint window history annotated with compilation tiers.
//
// Combines the continuous-profiling window rings (which count baseline- vs optimized-tier
// executions and samples per window) with the TierController's transition log into one
// human-readable timeline: which tier each window's samples came from, when the break-even
// threshold was crossed, and when the recompiled entry went live. The companion
// TierTimelineTotals aggregate backs the bench gate that every attributed sample belongs to a
// tier.
#ifndef DFP_SRC_TIERING_REPORT_H_
#define DFP_SRC_TIERING_REPORT_H_

#include <cstdint>
#include <string>

#include "src/continuous/window.h"
#include "src/tiering/controller.h"

namespace dfp {

// Sample attribution totals over every retained window of every fingerprint. By construction a
// window's optimized count is `samples - baseline_samples`, so attributed == samples always
// holds for windows recorded through WindowedProfile::Record; the totals exist to make that
// invariant checkable end-to-end from bench and tests.
struct TierTimelineTotals {
  uint64_t samples = 0;            // All window-attributed samples.
  uint64_t baseline_samples = 0;   // Slice recorded at the baseline tier.
  uint64_t optimized_samples = 0;  // Slice recorded at the optimized tier.
  uint64_t transitions = 0;        // Logged promotions.
  uint64_t swapped = 0;            // Promotions whose recompiled entry went live.
};

TierTimelineTotals SummarizeTierTimeline(const WindowedProfile& windows,
                                         const TierController& controller);

// Renders the per-fingerprint tier timeline: one line per retained window showing the tier mix
// of its executions and samples, with promotion decision/swap markers placed at the windows
// containing their service-clock timestamps.
std::string RenderTierTimeline(const WindowedProfile& windows, const TierController& controller);

}  // namespace dfp

#endif  // DFP_SRC_TIERING_REPORT_H_
