// TierController: turns continuous-profiling window rollups into promotion decisions.
//
// Every completed execution of a baseline-tier fingerprint is reported here. The controller
// rolls up the fingerprint's retained windows (src/continuous/window.h) and promotes once the
// windowed execute cycles cross the break-even threshold derived from the CompileCostModel's
// optimizing-tier estimate: at that point the plan's recent execution rate has already burned
// more cycles than the recompile would cost. Promotions are one-shot per fingerprint and are
// logged as TierTransitions, which feed the tier timeline report and the sample-stream event
// log.
#ifndef DFP_SRC_TIERING_CONTROLLER_H_
#define DFP_SRC_TIERING_CONTROLLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/continuous/window.h"
#include "src/tiering/tier.h"

namespace dfp {

// One logged tier decision of the controller.
struct TierTransition {
  uint64_t fingerprint = 0;
  std::string name;
  PlanTier from = PlanTier::kBaseline;
  PlanTier to = PlanTier::kOptimized;
  uint64_t decided_at_cycles = 0;  // Service clock when the break-even threshold was crossed.
  uint64_t swapped_at_cycles = 0;  // Service clock when the recompiled entry went live (0 while
                                   // the background job is still in flight).
  uint64_t rollup_cycles = 0;      // Windowed execute cycles that crossed the threshold.
  uint64_t threshold_cycles = 0;   // break_even_ratio * optimizing compile estimate.
};

class TierController {
 public:
  explicit TierController(TieringConfig config = TieringConfig()) : config_(config) {}

  const TieringConfig& config() const { return config_; }

  // Reports one completed baseline-tier execution of `fingerprint`. Returns true exactly once:
  // when the windowed cycles first cross the break-even threshold — the caller then enqueues
  // the background recompilation. `execute_cycles` backs a cumulative fallback for
  // configurations running without windows. `critical_path_cycles` is the fingerprint's
  // cumulative critical-path work (src/critpath/); when non-zero and
  // TieringConfig::promote_by_critical_path is set, it replaces the raw-cycle evidence, so
  // promotion tracks the cycles that actually gated query latency.
  bool Observe(uint64_t fingerprint, const std::string& name, const WindowedProfile& windows,
               uint64_t execute_cycles, uint64_t optimizing_compile_cycles,
               uint64_t now_cycles, uint64_t critical_path_cycles = 0);

  // Marks the pending transition of `fingerprint` as swapped in at `now_cycles`.
  void MarkSwapped(uint64_t fingerprint, uint64_t now_cycles);

  const std::vector<TierTransition>& transitions() const { return transitions_; }

 private:
  struct TierState {
    uint64_t executions = 0;
    uint64_t cumulative_cycles = 0;
    bool promoted = false;
  };

  TieringConfig config_;
  std::map<uint64_t, TierState> state_;
  std::vector<TierTransition> transitions_;
};

}  // namespace dfp

#endif  // DFP_SRC_TIERING_CONTROLLER_H_
