#include "src/tiering/literals.h"

#include <string>

#include "src/ir/instr.h"
#include "src/util/check.h"

namespace dfp {
namespace {

// Mirrors FingerprintBuilder's traversal (src/service/fingerprint.cc): pre-order over
// operators, each operator's limit before its expressions, expressions in list order with
// whens/left/right/else recursion. Any divergence between the two walks silently mis-binds
// slots, so both files cross-reference each other.
struct LiteralWalker {
  PlanLiterals out;

  void AddExpr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kLiteral: {
        out.expr_slots.emplace(&expr, static_cast<uint32_t>(out.bindings.size()));
        LiteralBinding binding;
        binding.kind = LiteralBinding::Kind::kValue;
        binding.value = expr.literal;
        out.bindings.push_back(std::move(binding));
        break;
      }
      case ExprKind::kLike: {
        out.expr_slots.emplace(&expr, static_cast<uint32_t>(out.bindings.size()));
        LiteralBinding binding;
        binding.kind = LiteralBinding::Kind::kPattern;
        binding.pattern = expr.pattern;
        out.bindings.push_back(std::move(binding));
        break;
      }
      case ExprKind::kInList: {
        out.expr_slots.emplace(&expr, static_cast<uint32_t>(out.bindings.size()));
        for (int64_t candidate : expr.list) {
          LiteralBinding binding;
          binding.kind = LiteralBinding::Kind::kValue;
          binding.value = candidate;
          out.bindings.push_back(std::move(binding));
        }
        break;
      }
      default:
        break;
    }
    for (const auto& [condition, value] : expr.whens) {
      AddExpr(*condition);
      AddExpr(*value);
    }
    if (expr.left != nullptr) {
      AddExpr(*expr.left);
    }
    if (expr.right != nullptr) {
      AddExpr(*expr.right);
    }
    if (expr.else_value != nullptr) {
      AddExpr(*expr.else_value);
    }
  }

  void AddOp(const PhysicalOp& op) {
    if (op.limit >= 0) {
      LiteralBinding binding;
      binding.kind = LiteralBinding::Kind::kLimit;
      binding.value = op.limit;
      out.bindings.push_back(std::move(binding));
    }
    for (const ExprPtr& expr : op.exprs) {
      AddExpr(*expr);
    }
    for (const auto& child : op.children) {
      AddOp(*child);
    }
  }
};

// Mirrors LiteralWalker (and therefore FingerprintBuilder), writing payloads instead of
// collecting them. Kind checks fire on any trace/plan divergence.
struct LiteralBinder {
  const std::vector<LiteralBinding>* bindings = nullptr;
  size_t next = 0;

  const LiteralBinding& Take(LiteralBinding::Kind kind) {
    if (next >= bindings->size()) {
      throw Error("literal bindings exhausted: plan has more literal slots than the trace");
    }
    const LiteralBinding& binding = (*bindings)[next++];
    if (binding.kind != kind) {
      throw Error("literal binding kind mismatch at slot " + std::to_string(next - 1));
    }
    return binding;
  }

  void BindExpr(Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kLiteral:
        expr.literal = Take(LiteralBinding::Kind::kValue).value;
        break;
      case ExprKind::kLike:
        expr.pattern = Take(LiteralBinding::Kind::kPattern).pattern;
        break;
      case ExprKind::kInList:
        for (int64_t& candidate : expr.list) {
          candidate = Take(LiteralBinding::Kind::kValue).value;
        }
        break;
      default:
        break;
    }
    for (auto& [condition, value] : expr.whens) {
      BindExpr(*condition);
      BindExpr(*value);
    }
    if (expr.left != nullptr) {
      BindExpr(*expr.left);
    }
    if (expr.right != nullptr) {
      BindExpr(*expr.right);
    }
    if (expr.else_value != nullptr) {
      BindExpr(*expr.else_value);
    }
  }

  void BindOp(PhysicalOp& op) {
    if (op.limit >= 0) {
      op.limit = Take(LiteralBinding::Kind::kLimit).value;
    }
    for (ExprPtr& expr : op.exprs) {
      BindExpr(*expr);
    }
    for (auto& child : op.children) {
      BindOp(*child);
    }
  }
};

}  // namespace

uint32_t PlanLiterals::SlotOf(const Expr& expr) const {
  auto it = expr_slots.find(&expr);
  return it == expr_slots.end() ? kNoLiteralSlot : it->second;
}

PlanLiterals ExtractLiterals(const PhysicalOp& root) {
  LiteralWalker walker;
  walker.AddOp(root);
  return std::move(walker.out);
}

bool PatchCompatible(const PlanLiterals& cached, const PlanLiterals& incoming) {
  if (cached.bindings.size() != incoming.bindings.size()) {
    return false;
  }
  for (size_t i = 0; i < cached.bindings.size(); ++i) {
    const LiteralBinding& a = cached.bindings[i];
    const LiteralBinding& b = incoming.bindings[i];
    if (a.kind != b.kind) {
      return false;
    }
    if (a.kind == LiteralBinding::Kind::kLimit && a.value != b.value) {
      return false;
    }
  }
  return true;
}

void BindLiterals(PhysicalOp& root, const std::vector<LiteralBinding>& bindings) {
  LiteralBinder binder;
  binder.bindings = &bindings;
  binder.BindOp(root);
  if (binder.next != bindings.size()) {
    throw Error("literal bindings left over: trace carries " + std::to_string(bindings.size()) +
                " slots, plan has " + std::to_string(binder.next));
  }
}

}  // namespace dfp
