#include "src/tiering/patch.h"

#include <vector>

#include "src/util/check.h"
#include "src/vcpu/code_map.h"

namespace dfp {

uint64_t PatchCachedPlan(Database& db, CachedPlan& entry, const PlanLiterals& incoming,
                         uint64_t incoming_literals_hash) {
  DFP_CHECK(PatchCompatible(entry.literals, incoming));

  // Resolve the new raw immediate of every slot whose binding changed. Pattern slots go through
  // the runtime: the code carries a registered pattern id, not the string.
  const size_t slots = entry.literals.bindings.size();
  std::vector<bool> changed(slots, false);
  std::vector<int64_t> new_imm(slots, 0);
  for (size_t i = 0; i < slots; ++i) {
    const LiteralBinding& have = entry.literals.bindings[i];
    const LiteralBinding& want = incoming.bindings[i];
    switch (have.kind) {
      case LiteralBinding::Kind::kValue:
        if (have.value != want.value) {
          changed[i] = true;
          new_imm[i] = want.value;
        }
        break;
      case LiteralBinding::Kind::kPattern:
        if (have.pattern != want.pattern) {
          changed[i] = true;
          new_imm[i] = static_cast<int64_t>(db.runtime().RegisterPattern(want.pattern));
        }
        break;
      case LiteralBinding::Kind::kLimit:
        DFP_CHECK(have.value == want.value);  // Pinned by the (structure, pinned) cache key.
        break;
    }
  }

  uint64_t written = 0;
  for (const PipelineArtifact& artifact : entry.query.pipelines) {
    CodeSegment& segment = db.code_map().mutable_segment(artifact.segment);
    for (const LiteralSite& site : artifact.literal_sites) {
      DFP_CHECK(site.slot < slots);
      if (!changed[site.slot]) {
        continue;
      }
      MInstr& instr = segment.code[site.code_offset];
      if (site.field == LiteralSite::Field::kImm) {
        instr.imm = new_imm[site.slot];
      } else {
        DFP_CHECK(site.arg_index < instr.args.size());
        DFP_CHECK(instr.args[site.arg_index].kind == MArg::Kind::kImm);
        instr.args[site.arg_index].value = static_cast<uint64_t>(new_imm[site.slot]);
      }
      ++written;
    }
  }

  // The entry now serves the incoming bindings. The incoming expr_slots map points into the
  // incoming plan (which the caller is free to destroy); only the bindings are retained.
  for (size_t i = 0; i < slots; ++i) {
    if (changed[i]) {
      LiteralBinding binding = incoming.bindings[i];
      if (binding.kind == LiteralBinding::Kind::kPattern) {
        binding.value = new_imm[i];  // Remember the registered id alongside the text.
      }
      entry.literals.bindings[i] = std::move(binding);
    }
  }
  entry.fingerprint.literals = incoming_literals_hash;
  return written;
}

}  // namespace dfp
