// Immediate patching: re-binds a cached compiled plan to a new set of literals in place.
//
// The emitter recorded every machine-code position a parameterized literal reaches
// (PipelineArtifact::literal_sites); patching walks those relocation entries and rewrites the
// immediates inside the registered code segments. Nothing else changes — instruction count,
// ir_id debug info, the Tagging Dictionary snapshot, register assignment — so a patched plan's
// profile attributes exactly like the original compile's and the cache entry contributes zero
// new code-segment bytes.
#ifndef DFP_SRC_TIERING_PATCH_H_
#define DFP_SRC_TIERING_PATCH_H_

#include <cstdint>

#include "src/engine/database.h"
#include "src/service/plan_cache.h"
#include "src/tiering/literals.h"

namespace dfp {

// Rewrites `entry`'s code so its literal bindings become `incoming` (which must be
// PatchCompatible with the entry's current bindings; pinned LIMIT literals are asserted equal,
// never written). LIKE patterns are registered with `db`'s runtime and their new ids written
// into the recorded call-argument sites. Updates the entry's bindings and its
// `fingerprint.literals` to the served query's hash. Returns the number of sites written
// (0 when the bindings already match, e.g. an exact repeat under parameterized keying).
uint64_t PatchCachedPlan(Database& db, CachedPlan& entry, const PlanLiterals& incoming,
                         uint64_t incoming_literals_hash);

}  // namespace dfp

#endif  // DFP_SRC_TIERING_PATCH_H_
