#include "src/tiering/tier.h"

namespace dfp {

const char* TierName(PlanTier tier) {
  switch (tier) {
    case PlanTier::kOptimized:
      return "optimized";
    case PlanTier::kBaseline:
      return "baseline";
  }
  return "?";
}

}  // namespace dfp
