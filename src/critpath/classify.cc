#include "src/critpath/classify.h"

#include "src/util/check.h"

namespace dfp {
namespace {

uint64_t SatSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

}  // namespace

const char* BottleneckName(Bottleneck label) {
  switch (label) {
    case Bottleneck::kComputeBound:
      return "compute-bound";
    case Bottleneck::kCacheBound:
      return "cache-bound";
    case Bottleneck::kRemoteDramBound:
      return "remote-dram-bound";
    case Bottleneck::kStealStarved:
      return "steal-starved";
    case Bottleneck::kInsufficientData:
      return "insufficient-data";
  }
  return "?";
}

Bottleneck BottleneckFromName(const std::string& name) {
  for (int i = 0; i < kBottleneckLabels; ++i) {
    const Bottleneck label = static_cast<Bottleneck>(i);
    if (name == BottleneckName(label)) {
      return label;
    }
  }
  throw Error("unknown bottleneck label: '" + name + "'");
}

PipelineVerdict ClassifyPipeline(const PipelineCriticality& p,
                                 const ClassifierThresholds& thresholds) {
  PipelineVerdict verdict;
  verdict.pipeline = p.pipeline;
  verdict.cycles = p.cycles;
  verdict.stolen_cycles = p.stolen_cycles;
  // Price the reclaimable stalls with the hierarchy's latencies. Counters are hierarchical (an
  // L2 miss is also an L1 miss), so the level-hit counts are the differences; saturating
  // subtraction keeps hand-built or damaged inputs from wrapping. Local-DRAM latency is the
  // streaming roofline and is left in the compute baseline (header comment).
  const uint64_t l2_hits = SatSub(p.l1_misses, p.l2_misses);
  const uint64_t l3_hits = SatSub(p.l2_misses, p.l3_misses);
  verdict.remote_stall_cycles = p.remote_dram * thresholds.remote_penalty_cycles;
  verdict.mem_stall_cycles = l2_hits * thresholds.l2_hit_cycles +
                             l3_hits * thresholds.l3_hit_cycles + verdict.remote_stall_cycles;
  if (p.tasks == 0 || p.cycles < thresholds.min_cycles) {
    verdict.label = Bottleneck::kInsufficientData;
    return verdict;
  }
  verdict.mem_stall_pct = 100 * verdict.mem_stall_cycles / p.cycles;
  verdict.remote_share_pct = verdict.mem_stall_cycles == 0
                                 ? 0
                                 : 100 * verdict.remote_stall_cycles / verdict.mem_stall_cycles;
  verdict.stolen_pct = 100 * p.stolen_cycles / p.cycles;
  if (verdict.stolen_pct >= thresholds.steal_pct) {
    verdict.label = Bottleneck::kStealStarved;
  } else if (verdict.mem_stall_pct >= thresholds.mem_bound_pct) {
    verdict.label = verdict.remote_share_pct >= thresholds.remote_share_pct
                        ? Bottleneck::kRemoteDramBound
                        : Bottleneck::kCacheBound;
  } else {
    verdict.label = Bottleneck::kComputeBound;
  }
  return verdict;
}

std::vector<PipelineVerdict> ClassifyPipelines(const TaskDag& dag,
                                               const ClassifierThresholds& thresholds) {
  std::vector<PipelineVerdict> verdicts;
  verdicts.reserve(dag.pipelines.size());
  for (const PipelineCriticality& p : dag.pipelines) {
    verdicts.push_back(ClassifyPipeline(p, thresholds));
  }
  return verdicts;
}

}  // namespace dfp
