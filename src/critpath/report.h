// Reports and fleet aggregation for the critical-path subsystem.
//
// CriticalityTracker accumulates per-fingerprint criticality across executions — the feed the
// sampling governor (per-pipeline periods), the tier controller (promote by critical-path
// work, not raw cycles), and the service profile (`crit` lines) read. RenderCriticalPath is
// the fleet-level text report; the per-query helpers serve the demo, the benchmarks, and the
// replay DAG-identity check.
#ifndef DFP_SRC_CRITPATH_REPORT_H_
#define DFP_SRC_CRITPATH_REPORT_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/critpath/classify.h"
#include "src/critpath/dag.h"

namespace dfp {

// Accumulated criticality of one plan fingerprint.
struct PlanCriticality {
  uint64_t fingerprint = 0;
  std::string name;
  uint64_t executions = 0;
  uint64_t wall_cycles = 0;           // Cumulative DAG wall cycles.
  uint64_t critical_work_cycles = 0;  // Cumulative critical-path work — promotion evidence.
  // Last execution's analysis, indexed by pipeline id.
  uint32_t top_pipeline = kNoPipeline;     // Pipeline with the largest criticality share.
  uint64_t top_share_pct = 0;
  std::vector<uint64_t> pipeline_share_pct;
  std::vector<Bottleneck> pipeline_labels;
  // Cumulative pipeline-label observations (one count per pipeline per execution).
  uint64_t label_counts[kBottleneckLabels] = {};

  // The label of the top-criticality pipeline from the last execution (insufficient-data when
  // the plan has no pipelines).
  Bottleneck dominant_label() const;
};

class CriticalityTracker {
 public:
  // Folds one completed execution's DAG and verdicts into the fingerprint's state.
  void Observe(uint64_t fingerprint, const std::string& name, const TaskDag& dag,
               const std::vector<PipelineVerdict>& verdicts);

  const std::map<uint64_t, PlanCriticality>& plans() const { return plans_; }
  const PlanCriticality* Find(uint64_t fingerprint) const;
  // Cumulative critical-path work of `fingerprint` (0 when unseen) — what the tier controller
  // consumes as promotion evidence.
  uint64_t CriticalWorkCycles(uint64_t fingerprint) const;

 private:
  std::map<uint64_t, PlanCriticality> plans_;
};

// Fleet-level critical-path report: one block per fingerprint with its critical-path share of
// wall time, the top pipeline, and the per-pipeline labels.
std::string RenderCriticalPath(const CriticalityTracker& tracker);

// Per-query report over one DAG: summary, critical path, per-pipeline criticality and labels.
// `pipeline_names` (indexed by pipeline id) decorates the rows when provided.
std::string RenderQueryCriticalPath(const TaskDag& dag,
                                    const std::vector<PipelineVerdict>& verdicts,
                                    const std::vector<std::string>& pipeline_names = {});

// Deterministic serialization of a full analysis — SerializeDag plus one `verdict` line per
// pipeline. The replay DAG-identity tests compare these byte for byte.
std::string SerializeAnalysis(const TaskDag& dag, const std::vector<PipelineVerdict>& verdicts);

// Deterministic JSON object with the DAG summary and per-pipeline verdicts (critpath_demo).
void WriteCritPathJson(const TaskDag& dag, const std::vector<PipelineVerdict>& verdicts,
                       std::ostream& out);

}  // namespace dfp

#endif  // DFP_SRC_CRITPATH_REPORT_H_
