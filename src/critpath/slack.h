// SlackStore: per-fingerprint expected slack, rolled up from prior executions' task DAGs.
//
// BuildTaskDag answers "which task gated *this* run"; the scheduler needs the forward-looking
// question — "which morsels of the *next* run are likely to gate it". The store folds every
// observed DAG into a compact per-(step, pipeline) profile: the scanned row range is cut into
// kSlackBuckets equal buckets and each bucket keeps an EWMA of the minimum slack its morsel
// tasks showed (minimum, because one zero-slack morsel in a bucket makes the whole bucket
// urgent — deferring it delays the barrier). ParallelRun reads the profile to order per-worker
// deques and pick steal victims; admission reads the EWMA critical-path length to judge
// deadline feasibility from the path a perfectly scheduled run would still have to walk,
// rather than from total work.
//
// The rollup is pure integer arithmetic over recorded DAGs, so a service that observes the
// same execution sequence always holds the same store — expected slack is as deterministic as
// the schedules it summarizes. Plans that stop being observed age out after `max_age`
// generations (one generation per Observe call), keeping the store bounded under fingerprint
// churn. The store round-trips through the service state file (service profile v5).
#ifndef DFP_SRC_CRITPATH_SLACK_H_
#define DFP_SRC_CRITPATH_SLACK_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/critpath/dag.h"

namespace dfp {

// Row-range buckets per (step, pipeline). 16 keeps a step's profile in one cache line pair
// while still separating a skewed scan's expensive head from its cheap tail.
inline constexpr uint32_t kSlackBuckets = 16;

// Expected slack of one exec step's pipeline tasks, bucketed by morsel row range.
struct StepSlack {
  uint32_t step = 0;
  uint32_t pipeline = 0;
  uint64_t rows = 0;  // Largest morsel_end observed — the bucket denominator.
  // EWMA of the per-run minimum slack among the bucket's tasks; UINT64_MAX = never observed
  // (no morsel of any folded run landed in the bucket).
  uint64_t bucket_slack[kSlackBuckets] = {};

  StepSlack() {
    for (uint64_t& b : bucket_slack) {
      b = UINT64_MAX;
    }
  }

  // Expected slack of a morsel starting at `begin`; UINT64_MAX when the bucket (or the whole
  // step) was never observed.
  uint64_t SlackAt(uint64_t begin) const;
};

// One fingerprint's rollup: expected critical-path length plus per-step slack profiles.
struct PlanSlack {
  uint64_t fingerprint = 0;
  std::string name;
  uint64_t executions = 0;           // DAGs folded in.
  uint64_t generation = 0;           // Store generation of the most recent fold (for age-out).
  uint64_t critical_path_cycles = 0; // EWMA of dag.critical_work_cycles.
  std::vector<StepSlack> steps;      // Sorted by (step, pipeline).

  const StepSlack* FindStep(uint32_t step, uint32_t pipeline) const;
};

class SlackStore {
 public:
  explicit SlackStore(uint64_t max_age = 64) : max_age_(max_age) {}

  // Folds one completed execution's DAG. Advances the store generation, updates the
  // fingerprint's EWMAs (new = (3*old + observed) / 4, integer), and ages out plans whose last
  // fold is more than max_age generations stale.
  void Observe(uint64_t fingerprint, const std::string& name, const TaskDag& dag);

  const PlanSlack* Find(uint64_t fingerprint) const;

  // Expected critical-path length for deadline admission; 0 = never observed (admit — the
  // first execution is how the store learns).
  uint64_t ExpectedCriticalPathCycles(uint64_t fingerprint) const;

  uint64_t generation() const { return generation_; }
  uint64_t max_age() const { return max_age_; }
  const std::map<uint64_t, PlanSlack>& plans() const { return plans_; }

  // Persistence hooks (service profile v5): the reader reconstructs a store entry for entry.
  // SetLoadedGeneration restores the clock so age-out resumes where the saved service left off.
  PlanSlack& LoadPlan(uint64_t fingerprint);
  void SetLoadedGeneration(uint64_t generation) { generation_ = generation; }

 private:
  uint64_t max_age_;
  uint64_t generation_ = 0;
  std::map<uint64_t, PlanSlack> plans_;
};

}  // namespace dfp

#endif  // DFP_SRC_CRITPATH_SLACK_H_
