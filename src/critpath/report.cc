#include "src/critpath/report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace dfp {

Bottleneck PlanCriticality::dominant_label() const {
  if (top_pipeline == kNoPipeline || top_pipeline >= pipeline_labels.size()) {
    return Bottleneck::kInsufficientData;
  }
  return pipeline_labels[top_pipeline];
}

void CriticalityTracker::Observe(uint64_t fingerprint, const std::string& name,
                                 const TaskDag& dag,
                                 const std::vector<PipelineVerdict>& verdicts) {
  PlanCriticality& plan = plans_[fingerprint];
  if (plan.executions == 0) {
    plan.fingerprint = fingerprint;
    plan.name = name;
  }
  ++plan.executions;
  plan.wall_cycles += dag.wall_cycles;
  plan.critical_work_cycles += dag.critical_work_cycles;
  plan.top_pipeline = kNoPipeline;
  plan.top_share_pct = 0;
  plan.pipeline_share_pct.clear();
  plan.pipeline_labels.clear();
  for (const PipelineCriticality& p : dag.pipelines) {
    if (p.pipeline >= plan.pipeline_share_pct.size()) {
      plan.pipeline_share_pct.resize(p.pipeline + 1, 0);
      plan.pipeline_labels.resize(p.pipeline + 1, Bottleneck::kInsufficientData);
    }
    plan.pipeline_share_pct[p.pipeline] = p.share_pct;
    // Strictly-greater keeps ties on the lowest pipeline id — deterministic.
    if (plan.top_pipeline == kNoPipeline || p.share_pct > plan.top_share_pct) {
      plan.top_pipeline = p.pipeline;
      plan.top_share_pct = p.share_pct;
    }
  }
  for (const PipelineVerdict& v : verdicts) {
    if (v.pipeline < plan.pipeline_labels.size()) {
      plan.pipeline_labels[v.pipeline] = v.label;
    }
    ++plan.label_counts[static_cast<int>(v.label)];
  }
}

const PlanCriticality* CriticalityTracker::Find(uint64_t fingerprint) const {
  auto it = plans_.find(fingerprint);
  return it == plans_.end() ? nullptr : &it->second;
}

uint64_t CriticalityTracker::CriticalWorkCycles(uint64_t fingerprint) const {
  const PlanCriticality* plan = Find(fingerprint);
  return plan == nullptr ? 0 : plan->critical_work_cycles;
}

std::string RenderCriticalPath(const CriticalityTracker& tracker) {
  std::ostringstream out;
  out << "=== Critical path (per fingerprint) ===\n";
  char line[256];
  for (const auto& [fingerprint, plan] : tracker.plans()) {
    const uint64_t critical_pct =
        plan.wall_cycles == 0 ? 0 : 100 * plan.critical_work_cycles / plan.wall_cycles;
    std::snprintf(line, sizeof(line),
                  "%016llx  %-24s exec %4llu  critical %12llu cycles (%3llu%% of wall)\n",
                  static_cast<unsigned long long>(fingerprint), plan.name.c_str(),
                  static_cast<unsigned long long>(plan.executions),
                  static_cast<unsigned long long>(plan.critical_work_cycles),
                  static_cast<unsigned long long>(critical_pct));
    out << line;
    // Criticality order: share descending, pipeline id ascending on ties. The id tie-break
    // matters — equal-share pipelines (common when shares round to the same percent) must
    // render in one fixed order or double-run diffs of the report flap.
    std::vector<uint32_t> order(plan.pipeline_share_pct.size());
    for (uint32_t p = 0; p < order.size(); ++p) {
      order[p] = p;
    }
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      if (plan.pipeline_share_pct[a] != plan.pipeline_share_pct[b]) {
        return plan.pipeline_share_pct[a] > plan.pipeline_share_pct[b];
      }
      return a < b;
    });
    for (uint32_t p : order) {
      std::snprintf(line, sizeof(line), "  pipeline %2u  share %3llu%%  %s%s\n", p,
                    static_cast<unsigned long long>(plan.pipeline_share_pct[p]),
                    BottleneckName(plan.pipeline_labels[p]),
                    p == plan.top_pipeline ? "  <- critical" : "");
      out << line;
    }
  }
  return out.str();
}

std::string RenderQueryCriticalPath(const TaskDag& dag,
                                    const std::vector<PipelineVerdict>& verdicts,
                                    const std::vector<std::string>& pipeline_names) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "=== Critical path: %llu of %llu wall cycles (%llu%%) over %zu of %zu tasks "
                "===\n",
                static_cast<unsigned long long>(dag.critical_work_cycles),
                static_cast<unsigned long long>(dag.wall_cycles),
                static_cast<unsigned long long>(
                    dag.wall_cycles == 0 ? 0 : 100 * dag.critical_work_cycles / dag.wall_cycles),
                dag.critical_path.size(), dag.nodes.size());
  out << line;
  for (const PipelineCriticality& p : dag.pipelines) {
    const PipelineVerdict* verdict = nullptr;
    for (const PipelineVerdict& v : verdicts) {
      if (v.pipeline == p.pipeline) {
        verdict = &v;
        break;
      }
    }
    const char* name = p.pipeline < pipeline_names.size() ? pipeline_names[p.pipeline].c_str()
                                                          : "";
    std::snprintf(
        line, sizeof(line),
        "pipeline %2u %-20s share %3llu%%  tasks %4llu (crit %4llu, stolen %4llu)  %s\n",
        p.pipeline, name, static_cast<unsigned long long>(p.share_pct),
        static_cast<unsigned long long>(p.tasks),
        static_cast<unsigned long long>(p.critical_tasks),
        static_cast<unsigned long long>(p.stolen_tasks),
        verdict == nullptr ? "?" : BottleneckName(verdict->label));
    out << line;
    if (verdict != nullptr && verdict->label != Bottleneck::kInsufficientData) {
      std::snprintf(line, sizeof(line),
                    "             mem stall %3llu%% (remote share %3llu%%)  stolen %3llu%%\n",
                    static_cast<unsigned long long>(verdict->mem_stall_pct),
                    static_cast<unsigned long long>(verdict->remote_share_pct),
                    static_cast<unsigned long long>(verdict->stolen_pct));
      out << line;
    }
  }
  return out.str();
}

std::string SerializeAnalysis(const TaskDag& dag,
                              const std::vector<PipelineVerdict>& verdicts) {
  std::ostringstream out;
  out << SerializeDag(dag);
  for (const PipelineVerdict& v : verdicts) {
    out << "verdict " << v.pipeline << " " << BottleneckName(v.label) << " " << v.cycles << " "
        << v.mem_stall_cycles << " " << v.remote_stall_cycles << " " << v.stolen_cycles << " "
        << v.mem_stall_pct << " " << v.remote_share_pct << " " << v.stolen_pct << "\n";
  }
  return out.str();
}

void WriteCritPathJson(const TaskDag& dag, const std::vector<PipelineVerdict>& verdicts,
                       std::ostream& out) {
  out << "{\n";
  out << "  \"tasks\": " << dag.nodes.size() << ",\n";
  out << "  \"wall_cycles\": " << dag.wall_cycles << ",\n";
  out << "  \"critical_work_cycles\": " << dag.critical_work_cycles << ",\n";
  out << "  \"critical_idle_cycles\": " << dag.critical_idle_cycles << ",\n";
  out << "  \"critical_path_tasks\": " << dag.critical_path.size() << ",\n";
  out << "  \"pipelines\": [";
  for (size_t i = 0; i < dag.pipelines.size(); ++i) {
    const PipelineCriticality& p = dag.pipelines[i];
    const PipelineVerdict* verdict = i < verdicts.size() ? &verdicts[i] : nullptr;
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"pipeline\": " << p.pipeline << ", \"share_pct\": " << p.share_pct
        << ", \"tasks\": " << p.tasks << ", \"critical_tasks\": " << p.critical_tasks
        << ", \"stolen_tasks\": " << p.stolen_tasks << ", \"label\": \""
        << (verdict == nullptr ? "?" : BottleneckName(verdict->label)) << "\"}";
  }
  out << "\n  ]\n";
  out << "}\n";
}

}  // namespace dfp
