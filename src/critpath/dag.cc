#include "src/critpath/dag.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace dfp {
namespace {

const char* TaskKindName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kHostStep:
      return "host";
    case TaskKind::kMorsel:
      return "morsel";
    case TaskKind::kSequentialPipeline:
      return "pipeline";
    case TaskKind::kSort:
      return "sort";
  }
  return "?";
}

// Canonical node order: barrier groups first, then time, then worker, then the morsel range
// (which disambiguates zero-duration same-start tasks deterministically).
bool CanonicalLess(const TaskBoundary& a, const TaskBoundary& b) {
  if (a.step != b.step) return a.step < b.step;
  if (a.start_tsc != b.start_tsc) return a.start_tsc < b.start_tsc;
  if (a.worker_id != b.worker_id) return a.worker_id < b.worker_id;
  return a.morsel_begin < b.morsel_begin;
}

uint64_t SatSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

}  // namespace

TaskDag BuildTaskDag(std::vector<TaskBoundary> tasks) {
  TaskDag dag;
  if (tasks.empty()) {
    return dag;
  }
  // Single-worker runs (and replayed v5 streams) already arrive in canonical order — the
  // executor appends boundaries in execution order, which for one worker is exactly
  // (step, start_tsc). Skip the re-sort then: is_sorted is one linear pass and the resulting
  // DAG is identical either way (asserted by the determinism test).
  if (!std::is_sorted(tasks.begin(), tasks.end(), CanonicalLess)) {
    std::sort(tasks.begin(), tasks.end(), CanonicalLess);
  }
  dag.nodes.reserve(tasks.size());
  for (TaskBoundary& task : tasks) {
    TaskNode node;
    node.task = task;
    dag.nodes.push_back(node);
  }

  // Contiguous [begin, end) index ranges of equal-step nodes, in step order.
  struct StepRange {
    uint32_t begin = 0;
    uint32_t end = 0;
  };
  std::vector<StepRange> steps;
  steps.reserve(dag.nodes.empty() ? 0 : dag.nodes.back().task.step + 1);
  dag.critical_path.reserve(dag.nodes.size());
  for (uint32_t i = 0; i < dag.nodes.size(); ++i) {
    if (steps.empty() || dag.nodes[steps.back().begin].task.step != dag.nodes[i].task.step) {
      steps.push_back(StepRange{i, i + 1});
    } else {
      steps.back().end = i + 1;
    }
  }

  // Same-worker chains within each step (canonical order is time order per worker).
  {
    std::map<uint32_t, uint32_t> last_on_worker;
    for (const StepRange& range : steps) {
      last_on_worker.clear();
      for (uint32_t i = range.begin; i < range.end; ++i) {
        auto [it, inserted] = last_on_worker.try_emplace(dag.nodes[i].task.worker_id, i);
        if (!inserted) {
          dag.nodes[i].chain_pred = it->second;
          dag.nodes[it->second].chain_succ = i;
          it->second = i;
        }
      }
    }
  }

  dag.start_cycles = UINT64_MAX;
  for (const TaskNode& node : dag.nodes) {
    dag.start_cycles = std::min(dag.start_cycles, node.task.start_tsc);
    dag.wall_cycles = std::max(dag.wall_cycles, node.task.end_tsc);
  }

  // Backward pass of the critical-path method. A task's latest finish is bounded by its
  // same-worker chain successor's latest start and by the barrier into the next step — which
  // every task of the step shares, so the barrier constraint folds into one value (the minimum
  // latest start over the next step) instead of quadratic edges.
  uint64_t next_barrier_ls = dag.wall_cycles;
  for (size_t s = steps.size(); s-- > 0;) {
    const StepRange& range = steps[s];
    uint64_t min_ls = UINT64_MAX;
    for (uint32_t i = range.end; i-- > range.begin;) {
      TaskNode& node = dag.nodes[i];
      uint64_t lf = next_barrier_ls;
      if (node.chain_succ != kNoTaskNode) {
        const TaskNode& succ = dag.nodes[node.chain_succ];
        lf = std::min(lf, SatSub(succ.latest_finish, succ.duration()));
      }
      node.latest_finish = lf;
      node.slack = SatSub(lf, node.task.end_tsc);
      min_ls = std::min(min_ls, SatSub(lf, node.duration()));
    }
    next_barrier_ls = min_ls;
  }

  // Critical path: walk backward from the last-finishing task, following the same-worker chain
  // when one exists and otherwise crossing the barrier to the latest-finishing task of the
  // previous step. Ties break to the lowest canonical index, keeping the walk deterministic.
  uint32_t sink = 0;
  for (uint32_t i = 1; i < dag.nodes.size(); ++i) {
    if (dag.nodes[i].task.end_tsc > dag.nodes[sink].task.end_tsc) {
      sink = i;
    }
  }
  size_t step_of = steps.size();
  while (steps[--step_of].begin > sink || sink >= steps[step_of].end) {
  }
  uint32_t cur = sink;
  while (true) {
    dag.nodes[cur].critical = true;
    dag.critical_path.push_back(cur);
    dag.critical_work_cycles += dag.nodes[cur].duration();
    if (dag.nodes[cur].chain_pred != kNoTaskNode) {
      cur = dag.nodes[cur].chain_pred;
      continue;
    }
    if (step_of == 0) {
      break;
    }
    const StepRange& prev = steps[--step_of];
    uint32_t best = prev.begin;
    for (uint32_t i = prev.begin + 1; i < prev.end; ++i) {
      if (dag.nodes[i].task.end_tsc > dag.nodes[best].task.end_tsc) {
        best = i;
      }
    }
    cur = best;
  }
  std::reverse(dag.critical_path.begin(), dag.critical_path.end());
  dag.critical_idle_cycles =
      SatSub(dag.wall_cycles, dag.start_cycles + dag.critical_work_cycles);

  // Per-pipeline criticality and counter aggregates.
  std::map<uint32_t, PipelineCriticality> pipelines;
  for (const TaskNode& node : dag.nodes) {
    if (node.task.pipeline == kNoPipeline) {
      continue;
    }
    PipelineCriticality& p = pipelines[node.task.pipeline];
    p.pipeline = node.task.pipeline;
    ++p.tasks;
    p.cycles += node.duration();
    if (node.critical) {
      ++p.critical_tasks;
      p.critical_cycles += node.duration();
    }
    if (node.task.stolen) {
      ++p.stolen_tasks;
      p.stolen_cycles += node.duration();
    }
    p.instructions += node.task.instructions;
    p.loads += node.task.loads;
    p.l1_misses += node.task.l1_misses;
    p.l2_misses += node.task.l2_misses;
    p.l3_misses += node.task.l3_misses;
    p.remote_dram += node.task.remote_dram;
  }
  dag.pipelines.reserve(pipelines.size());
  for (auto& [id, p] : pipelines) {
    (void)id;
    p.share_pct =
        dag.critical_work_cycles == 0 ? 0 : 100 * p.critical_cycles / dag.critical_work_cycles;
    dag.pipelines.push_back(p);
  }
  return dag;
}

std::string SerializeDag(const TaskDag& dag) {
  std::ostringstream out;
  out << "# dfp task dag v1\n";
  out << "summary " << dag.nodes.size() << " " << dag.start_cycles << " " << dag.wall_cycles
      << " " << dag.critical_work_cycles << " " << dag.critical_idle_cycles << " "
      << dag.critical_path.size() << "\n";
  for (size_t i = 0; i < dag.nodes.size(); ++i) {
    const TaskNode& node = dag.nodes[i];
    const TaskBoundary& t = node.task;
    out << "node " << i << " " << t.step << " " << static_cast<uint32_t>(t.kind) << " "
        << t.pipeline << " " << t.worker_id << " " << t.start_tsc << " " << t.end_tsc << " "
        << (t.stolen ? 1 : 0) << " " << node.slack << " " << (node.critical ? 1 : 0) << " "
        << t.morsel_begin << " " << t.morsel_end << " " << t.instructions << " " << t.loads
        << " " << t.l1_misses << " " << t.l2_misses << " " << t.l3_misses << " "
        << t.remote_dram << "\n";
  }
  if (!dag.critical_path.empty()) {
    out << "path";
    for (uint32_t i : dag.critical_path) {
      out << " " << i;
    }
    out << "\n";
  }
  for (const PipelineCriticality& p : dag.pipelines) {
    out << "pipeline " << p.pipeline << " " << p.tasks << " " << p.critical_tasks << " "
        << p.cycles << " " << p.critical_cycles << " " << p.share_pct << " " << p.stolen_tasks
        << " " << p.stolen_cycles << "\n";
  }
  return out.str();
}

std::string RenderSlackTable(const TaskDag& dag, size_t top) {
  std::ostringstream out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "=== Slack table (%zu tasks, wall %llu, critical path %llu cycles over %zu "
                "tasks) ===\n",
                dag.nodes.size(), static_cast<unsigned long long>(dag.wall_cycles),
                static_cast<unsigned long long>(dag.critical_work_cycles),
                dag.critical_path.size());
  out << line;
  if (dag.nodes.empty()) {
    return out.str();
  }
  out << "node   step  kind      pipeline  worker        start          end     cycles  "
         "slack\n";
  std::vector<uint32_t> order(dag.nodes.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (dag.nodes[a].slack != dag.nodes[b].slack) {
      return dag.nodes[a].slack < dag.nodes[b].slack;
    }
    return a < b;
  });
  const size_t rows = std::min(top, order.size());
  for (size_t r = 0; r < rows; ++r) {
    const TaskNode& node = dag.nodes[order[r]];
    char pipeline[16];
    if (node.task.pipeline == kNoPipeline) {
      std::snprintf(pipeline, sizeof(pipeline), "-");
    } else {
      std::snprintf(pipeline, sizeof(pipeline), "%u", node.task.pipeline);
    }
    std::snprintf(line, sizeof(line),
                  "%5u  %4u  %-8s  %8s  %6u  %11llu  %11llu  %9llu  %5llu%s\n", order[r],
                  node.task.step, TaskKindName(node.task.kind), pipeline, node.task.worker_id,
                  static_cast<unsigned long long>(node.task.start_tsc),
                  static_cast<unsigned long long>(node.task.end_tsc),
                  static_cast<unsigned long long>(node.duration()),
                  static_cast<unsigned long long>(node.slack),
                  node.critical ? "  *critical*" : "");
    out << line;
  }
  if (rows < order.size()) {
    std::snprintf(line, sizeof(line), "... %zu more tasks\n", order.size() - rows);
    out << line;
  }
  return out.str();
}

}  // namespace dfp
