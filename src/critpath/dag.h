// Per-query task DAGs and critical-path analysis over the morsel-driven executor's schedule.
//
// ParallelRun emits a TaskBoundary for every work unit it executes (host step, morsel,
// sequential pipeline run, sort) with start/end timestamps, worker id, exec-step index, and
// per-task PMU counter deltas. Those records determine the run's task DAG exactly: within one
// exec step a worker's tasks form a serial chain (the worker is a resource — each task waits
// for the previous one on the same core), and a barrier separates consecutive exec steps
// (every task of step N+1 waits on every task of step N, mirroring ParallelRun::Barrier).
// BuildTaskDag reconstructs that DAG and runs the classic critical-path method over the
// *realized* schedule: the latest finish of a task is the latest time it could have ended
// without delaying the final barrier, its slack is latest finish minus actual finish, and the
// critical path is the zero-slack chain walked backward from the last-finishing task. From the
// path we derive each pipeline's criticality share — the fraction of the critical path spent
// inside that pipeline's tasks — which is what the sampling governor and tier controller
// consume: it answers "which pipeline actually gates this query's latency", where raw cycle
// totals only answer "which pipeline burns the most cycles in aggregate".
//
// Everything here is integer arithmetic over recorded timestamps, so analysis of the same run
// (or of a recorded v5 sample stream, or of a trace replay) is bit-reproducible.
#ifndef DFP_SRC_CRITPATH_DAG_H_
#define DFP_SRC_CRITPATH_DAG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/pmu/sample.h"

namespace dfp {

// Sentinel node index ("no predecessor/successor").
inline constexpr uint32_t kNoTaskNode = 0xFFFFFFFF;

// One task of the DAG: the executor's boundary record plus the CPM results computed over it.
struct TaskNode {
  TaskBoundary task;
  uint32_t chain_pred = kNoTaskNode;  // Same-worker predecessor within the same exec step.
  uint32_t chain_succ = kNoTaskNode;  // Same-worker successor within the same exec step.
  uint64_t latest_finish = 0;  // Latest end_tsc that would not have delayed the final barrier.
  uint64_t slack = 0;          // latest_finish - end_tsc; 0 on the critical path.
  bool critical = false;       // Lies on the critical path.

  uint64_t duration() const { return task.duration(); }
};

// Criticality and counter aggregates of one pipeline's tasks (morsels + sequential runs).
struct PipelineCriticality {
  uint32_t pipeline = 0;
  uint64_t tasks = 0;
  uint64_t critical_tasks = 0;
  uint64_t cycles = 0;           // Summed task durations.
  uint64_t critical_cycles = 0;  // Summed durations of this pipeline's critical-path tasks.
  uint64_t share_pct = 0;        // 100 * critical_cycles / dag.critical_work_cycles.
  uint64_t stolen_tasks = 0;
  uint64_t stolen_cycles = 0;
  // PMU counter sums over the pipeline's tasks — the classifier's inputs.
  uint64_t instructions = 0;
  uint64_t loads = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_misses = 0;
  uint64_t l3_misses = 0;
  uint64_t remote_dram = 0;
};

struct TaskDag {
  // Canonical node order: (step, start_tsc, worker, morsel_begin) ascending — independent of
  // the order boundaries were collected in, so two analyses of the same run agree node for
  // node.
  std::vector<TaskNode> nodes;
  // Critical path as node indices, source to sink (empty for an empty DAG).
  std::vector<uint32_t> critical_path;
  uint64_t wall_cycles = 0;           // max end_tsc over all tasks.
  uint64_t start_cycles = 0;          // min start_tsc over all tasks.
  uint64_t critical_work_cycles = 0;  // Summed durations along the critical path.
  // Wall time not covered by critical-path work (scheduler gaps before/along the path);
  // wall = start + critical work + idle by construction of the backward walk.
  uint64_t critical_idle_cycles = 0;
  // Ascending by pipeline id; covers pipeline tasks only (host steps and sorts contribute to
  // the path but belong to no pipeline, so shares need not sum to 100).
  std::vector<PipelineCriticality> pipelines;
};

// Builds the DAG and runs the critical-path method. Tolerates any input the executor can
// produce: an empty vector yields an empty DAG, a single-worker run degenerates to one chain
// (every task critical), endgame-split morsels are ordinary nodes.
TaskDag BuildTaskDag(std::vector<TaskBoundary> tasks);

// Deterministic line-oriented serialization of the full analysis (nodes with slack, the
// critical path, per-pipeline criticality). Two runs of the same workload serialize
// byte-identically; used by the determinism tests and the replay DAG-identity check.
std::string SerializeDag(const TaskDag& dag);

// Human-readable slack table: the `top` lowest-slack tasks (criticality order; deterministic
// tie-break by canonical node index) plus a summary line.
std::string RenderSlackTable(const TaskDag& dag, size_t top = 16);

}  // namespace dfp

#endif  // DFP_SRC_CRITPATH_DAG_H_
