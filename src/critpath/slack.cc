#include "src/critpath/slack.h"

#include <algorithm>
#include <utility>

namespace dfp {
namespace {

uint32_t BucketOf(uint64_t begin, uint64_t rows) {
  if (rows == 0) {
    return 0;
  }
  uint64_t bucket = begin * kSlackBuckets / rows;
  return static_cast<uint32_t>(std::min<uint64_t>(bucket, kSlackBuckets - 1));
}

uint64_t Ewma(uint64_t old_value, uint64_t observed) {
  return (3 * old_value + observed) / 4;
}

}  // namespace

uint64_t StepSlack::SlackAt(uint64_t begin) const {
  return bucket_slack[BucketOf(begin, rows)];
}

const StepSlack* PlanSlack::FindStep(uint32_t step, uint32_t pipeline) const {
  for (const StepSlack& s : steps) {
    if (s.step == step && s.pipeline == pipeline) {
      return &s;
    }
    if (s.step > step) {
      break;
    }
  }
  return nullptr;
}

void SlackStore::Observe(uint64_t fingerprint, const std::string& name, const TaskDag& dag) {
  ++generation_;
  PlanSlack& plan = plans_[fingerprint];
  plan.fingerprint = fingerprint;
  plan.name = name;
  plan.generation = generation_;
  ++plan.executions;
  plan.critical_path_cycles = plan.executions == 1
                                  ? dag.critical_work_cycles
                                  : Ewma(plan.critical_path_cycles, dag.critical_work_cycles);

  // This run's per-(step, pipeline) observation: the row extent and the minimum slack any of
  // the bucket's tasks showed. Two passes because the bucket boundaries need the final extent.
  struct RunStep {
    uint64_t rows = 0;
    uint64_t min_slack[kSlackBuckets];
    RunStep() { std::fill(min_slack, min_slack + kSlackBuckets, UINT64_MAX); }
  };
  std::map<std::pair<uint32_t, uint32_t>, RunStep> run;
  for (const TaskNode& node : dag.nodes) {
    if (node.task.pipeline == kNoPipeline) {
      continue;
    }
    RunStep& rs = run[{node.task.step, node.task.pipeline}];
    rs.rows = std::max(rs.rows, node.task.morsel_end);
  }
  for (const TaskNode& node : dag.nodes) {
    if (node.task.pipeline == kNoPipeline) {
      continue;
    }
    RunStep& rs = run[{node.task.step, node.task.pipeline}];
    uint64_t& bucket = rs.min_slack[BucketOf(node.task.morsel_begin, rs.rows)];
    bucket = std::min(bucket, node.slack);
  }

  // Fold into the stored profile. steps stays sorted by (step, pipeline) because std::map
  // iterates the run observations in exactly that order and merging preserves it.
  std::vector<StepSlack> merged;
  merged.reserve(std::max(plan.steps.size(), run.size()));
  auto stored = plan.steps.begin();
  for (auto& [key, rs] : run) {
    while (stored != plan.steps.end() &&
           std::make_pair(stored->step, stored->pipeline) < key) {
      merged.push_back(*stored++);  // Step not seen this run (e.g. pruned pipeline): keep.
    }
    StepSlack out;
    if (stored != plan.steps.end() && std::make_pair(stored->step, stored->pipeline) == key) {
      out = *stored++;
    } else {
      out.step = key.first;
      out.pipeline = key.second;
    }
    out.rows = std::max(out.rows, rs.rows);
    for (uint32_t b = 0; b < kSlackBuckets; ++b) {
      if (rs.min_slack[b] == UINT64_MAX) {
        continue;  // No task landed in this bucket this run: keep the prior estimate.
      }
      out.bucket_slack[b] = out.bucket_slack[b] == UINT64_MAX
                                ? rs.min_slack[b]
                                : Ewma(out.bucket_slack[b], rs.min_slack[b]);
    }
    merged.push_back(out);
  }
  while (stored != plan.steps.end()) {
    merged.push_back(*stored++);
  }
  plan.steps = std::move(merged);

  // Age out fingerprints the service stopped seeing: their placement hints would be applied to
  // plans whose schedules may have drifted arbitrarily far from the folded observations.
  for (auto it = plans_.begin(); it != plans_.end();) {
    if (generation_ - it->second.generation > max_age_) {
      it = plans_.erase(it);
    } else {
      ++it;
    }
  }
}

const PlanSlack* SlackStore::Find(uint64_t fingerprint) const {
  auto it = plans_.find(fingerprint);
  return it == plans_.end() ? nullptr : &it->second;
}

uint64_t SlackStore::ExpectedCriticalPathCycles(uint64_t fingerprint) const {
  const PlanSlack* plan = Find(fingerprint);
  return plan == nullptr ? 0 : plan->critical_path_cycles;
}

PlanSlack& SlackStore::LoadPlan(uint64_t fingerprint) {
  PlanSlack& plan = plans_[fingerprint];
  plan.fingerprint = fingerprint;
  return plan;
}

}  // namespace dfp
