// Roofline-style bottleneck classification of pipelines, from per-task PMU counter deltas.
//
// For each pipeline of a task DAG the classifier estimates how many of its cycles were
// *reclaimable* memory stalls by pricing the counter deltas with the VCPU cost model's
// latencies: an access that stopped at L2 costs the L2 hit latency, one that stopped at L3 the
// L3 hit latency, and a remote-DRAM access the NUMA penalty — the same constants the simulator
// charged, so the estimate is exact accounting, not a guess. The local-DRAM latency of a miss
// is deliberately NOT counted: for a streaming operator that traffic is compulsory — it IS the
// memory roofline — and a pipeline at that roofline has nothing to reclaim from placement or
// access pattern. Each label names the remedy:
//
//   steal-starved      stolen-task cycles  >= steal_pct% of the pipeline's cycles — the
//                      pipeline's home deques drained and workers lived off steals; fix the
//                      partitioning, not the code.
//   remote-DRAM-bound  reclaimable stall >= mem_bound_pct% of cycles AND the remote-penalty
//                      share of it is >= remote_share_pct% — the misses go to the wrong
//                      socket; fix placement or scheduling.
//   cache-bound        reclaimable stall >= mem_bound_pct% with cache-hierarchy hit latency
//                      dominating — fix the access pattern.
//   compute-bound      everything else: the cycles are instruction execution plus compulsory
//                      streaming traffic — the pipeline sits on its roofline; optimize the
//                      kernel itself.
//
// A pipeline without tasks (or below min_cycles) gets the explicit insufficient-data label
// instead of a division by zero or a coin-flip between labels. All rules are integer
// comparisons over counters and fixed thresholds, so verdicts are bit-reproducible and a
// replayed trace classifies identically to the recorded run.
#ifndef DFP_SRC_CRITPATH_CLASSIFY_H_
#define DFP_SRC_CRITPATH_CLASSIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/critpath/dag.h"

namespace dfp {

enum class Bottleneck : uint8_t {
  kComputeBound = 0,
  kCacheBound = 1,
  kRemoteDramBound = 2,
  kStealStarved = 3,
  kInsufficientData = 4,
};
inline constexpr int kBottleneckLabels = 5;

// Stable lowercase-hyphen names ("compute-bound", ...), used by reports and the service
// profile's `crit` lines.
const char* BottleneckName(Bottleneck label);
// Inverse of BottleneckName; throws dfp::Error on an unknown name.
Bottleneck BottleneckFromName(const std::string& name);

// Cycle prices of the memory hierarchy, mirroring vcpu/cache.h and vcpu/cost_model.h. Kept as
// explicit integers here so classification of a recorded stream does not depend on the live
// simulator's configuration — the stream's counters were produced under these defaults.
struct ClassifierThresholds {
  uint64_t l2_hit_cycles = 12;          // CacheConfig::l2_latency.
  uint64_t l3_hit_cycles = 42;          // CacheConfig::l3_latency.
  uint64_t remote_penalty_cycles = 130; // kRemoteDramPenaltyCycles.
  uint64_t min_cycles = 1;              // Below this the verdict is insufficient-data.
  uint64_t mem_bound_pct = 15;          // Reclaimable-stall share that leaves compute-bound.
  uint64_t remote_share_pct = 50;       // Remote share of the stall estimate for remote-DRAM.
  uint64_t steal_pct = 50;              // Stolen-cycle share of the pipeline for steal-starved.
};

struct PipelineVerdict {
  uint32_t pipeline = 0;
  Bottleneck label = Bottleneck::kInsufficientData;
  uint64_t cycles = 0;              // Pipeline task cycles the percentages are relative to.
  uint64_t mem_stall_cycles = 0;    // Priced reclaimable-stall estimate (cache + remote).
  uint64_t remote_stall_cycles = 0; // Remote-DRAM penalty part of the estimate.
  uint64_t stolen_cycles = 0;
  uint64_t mem_stall_pct = 0;       // 100 * mem_stall / cycles.
  uint64_t remote_share_pct = 0;    // 100 * remote_stall / mem_stall.
  uint64_t stolen_pct = 0;          // 100 * stolen / cycles.
};

// Classifies one pipeline's aggregates (rules above, applied in order: insufficient-data,
// steal-starved, remote-DRAM-bound, cache-bound, compute-bound).
PipelineVerdict ClassifyPipeline(const PipelineCriticality& p,
                                 const ClassifierThresholds& thresholds = {});

// Classifies every pipeline of the DAG, ascending by pipeline id.
std::vector<PipelineVerdict> ClassifyPipelines(const TaskDag& dag,
                                               const ClassifierThresholds& thresholds = {});

}  // namespace dfp

#endif  // DFP_SRC_CRITPATH_CLASSIFY_H_
