#include "src/interp/interpreter.h"

#include <algorithm>
#include <bit>
#include <map>
#include <unordered_map>

#include "src/plan/eval.h"
#include "src/util/check.h"

namespace dfp {
namespace {

using Row = std::vector<int64_t>;
using Rows = std::vector<Row>;

// Hashable key wrapper for grouping/joining.
struct KeyHash {
  size_t operator()(const Row& key) const {
    size_t hash = 14695981039346656037ull;
    for (int64_t value : key) {
      hash = (hash ^ static_cast<size_t>(value)) * 1099511628211ull;
    }
    return hash;
  }
};

struct AggState {
  int64_t sum_int = 0;
  double sum_double = 0;
  int64_t count = 0;
  int64_t extreme_int = 0;
  double extreme_double = 0;
  bool seen = false;
};

class PlanInterpreter {
 public:
  explicit PlanInterpreter(Database& db) : db_(db) {
    ctx_.strings = &db.strings();
  }

  Rows Execute(const PhysicalOp& op) {
    switch (op.kind) {
      case OpKind::kTableScan:
        return ExecuteScan(op);
      case OpKind::kFilter:
        return ExecuteFilter(op);
      case OpKind::kMap:
        return ExecuteMap(op);
      case OpKind::kHashJoin:
        return ExecuteJoin(op);
      case OpKind::kGroupBy:
        return ExecuteGroupBy(op);
      case OpKind::kGroupJoin:
        return ExecuteGroupJoin(op);
      case OpKind::kSort:
        return ExecuteSort(op);
      case OpKind::kLimit: {
        Rows rows = Execute(*op.child(0));
        if (rows.size() > static_cast<size_t>(op.limit)) {
          rows.resize(static_cast<size_t>(op.limit));
        }
        return rows;
      }
      case OpKind::kResultSink:
        return Execute(*op.child(0));
    }
    DFP_UNREACHABLE();
  }

 private:
  int64_t Eval(const Expr& expr, const Row& row) {
    ctx_.tuple = row;
    return EvalScalar(expr, ctx_);
  }

  Rows ExecuteScan(const PhysicalOp& op) {
    const Table& table = *op.table;
    Rows rows;
    rows.reserve(table.row_count());
    const size_t columns = table.schema().columns.size();
    for (uint64_t r = 0; r < table.row_count(); ++r) {
      Row row(columns);
      for (size_t c = 0; c < columns; ++c) {
        row[c] = table.Get(db_.mem(), c, r);
      }
      rows.push_back(std::move(row));
    }
    return rows;
  }

  Rows ExecuteFilter(const PhysicalOp& op) {
    Rows input = Execute(*op.child(0));
    Rows output;
    for (Row& row : input) {
      if (Eval(*op.exprs[0], row) != 0) {
        output.push_back(std::move(row));
      }
    }
    return output;
  }

  Rows ExecuteMap(const PhysicalOp& op) {
    Rows input = Execute(*op.child(0));
    Rows output;
    output.reserve(input.size());
    for (Row& row : input) {
      if (op.projecting) {
        Row projected;
        projected.reserve(op.exprs.size());
        for (const ExprPtr& expr : op.exprs) {
          projected.push_back(Eval(*expr, row));
        }
        output.push_back(std::move(projected));
      } else {
        for (const ExprPtr& expr : op.exprs) {
          row.push_back(Eval(*expr, row));
        }
        output.push_back(std::move(row));
      }
    }
    return output;
  }

  Rows ExecuteJoin(const PhysicalOp& op) {
    Rows build = Execute(*op.child(0));
    Rows probe = Execute(*op.child(1));
    std::unordered_map<Row, std::vector<const Row*>, KeyHash> table;
    for (const Row& row : build) {
      Row key;
      for (int slot : op.build_keys) {
        key.push_back(row[static_cast<size_t>(slot)]);
      }
      table[key].push_back(&row);
    }
    Rows output;
    for (Row& row : probe) {
      Row key;
      for (int slot : op.probe_keys) {
        key.push_back(row[static_cast<size_t>(slot)]);
      }
      auto it = table.find(key);
      switch (op.join_type) {
        case JoinType::kInner:
          if (it != table.end()) {
            for (const Row* match : it->second) {
              Row combined = row;
              for (int slot : op.build_payload) {
                combined.push_back((*match)[static_cast<size_t>(slot)]);
              }
              output.push_back(std::move(combined));
            }
          }
          break;
        case JoinType::kSemi:
          if (it != table.end()) {
            output.push_back(std::move(row));
          }
          break;
        case JoinType::kAnti:
          if (it == table.end()) {
            output.push_back(std::move(row));
          }
          break;
      }
    }
    return output;
  }

  void UpdateAgg(const Expr& agg, AggState& state, const Row& row) {
    int64_t input = 0;
    if (agg.left != nullptr) {
      input = Eval(*agg.left, row);
    }
    const ColumnType in_type = agg.left != nullptr ? agg.left->type : ColumnType::kInt64;
    switch (agg.agg) {
      case AggOp::kSum:
      case AggOp::kAvg:
        if (in_type == ColumnType::kDouble) {
          state.sum_double += std::bit_cast<double>(input);
        } else {
          state.sum_int += input;
        }
        ++state.count;
        break;
      case AggOp::kCount:
      case AggOp::kCountStar:
        ++state.count;
        break;
      case AggOp::kMin:
      case AggOp::kMax: {
        if (in_type == ColumnType::kDouble) {
          double value = std::bit_cast<double>(input);
          if (!state.seen || (agg.agg == AggOp::kMin ? value < state.extreme_double
                                                     : value > state.extreme_double)) {
            state.extreme_double = value;
          }
        } else {
          if (!state.seen ||
              (agg.agg == AggOp::kMin ? input < state.extreme_int : input > state.extreme_int)) {
            state.extreme_int = input;
          }
        }
        state.seen = true;
        break;
      }
    }
  }

  int64_t FinalizeAgg(const Expr& agg, const AggState& state) {
    const ColumnType in_type = agg.left != nullptr ? agg.left->type : ColumnType::kInt64;
    switch (agg.agg) {
      case AggOp::kSum:
        return in_type == ColumnType::kDouble ? std::bit_cast<int64_t>(state.sum_double)
                                              : state.sum_int;
      case AggOp::kCount:
      case AggOp::kCountStar:
        return state.count;
      case AggOp::kMin:
      case AggOp::kMax:
        return in_type == ColumnType::kDouble ? std::bit_cast<int64_t>(state.extreme_double)
                                              : state.extreme_int;
      case AggOp::kAvg: {
        // Matches the generated finalization exactly: promote the sum to double, divide by the
        // count as double (0/0 yields NaN for empty groupjoin groups).
        double sum;
        if (in_type == ColumnType::kDouble) {
          sum = state.sum_double;
        } else if (in_type == ColumnType::kDecimal) {
          sum = static_cast<double>(state.sum_int) / 100.0;
        } else {
          sum = static_cast<double>(state.sum_int);
        }
        return std::bit_cast<int64_t>(sum / static_cast<double>(state.count));
      }
    }
    DFP_UNREACHABLE();
  }

  Rows ExecuteGroupBy(const PhysicalOp& op) {
    Rows input = Execute(*op.child(0));
    std::unordered_map<Row, std::vector<AggState>, KeyHash> groups;
    std::vector<Row> order;  // Deterministic output order (first appearance).
    for (const Row& row : input) {
      Row key;
      for (int slot : op.group_keys) {
        key.push_back(row[static_cast<size_t>(slot)]);
      }
      auto [it, inserted] = groups.try_emplace(key, op.exprs.size());
      if (inserted) {
        order.push_back(key);
      }
      for (size_t a = 0; a < op.exprs.size(); ++a) {
        UpdateAgg(*op.exprs[a], it->second[a], row);
      }
    }
    Rows output;
    output.reserve(order.size());
    for (const Row& key : order) {
      Row row = key;
      const std::vector<AggState>& states = groups[key];
      for (size_t a = 0; a < op.exprs.size(); ++a) {
        row.push_back(FinalizeAgg(*op.exprs[a], states[a]));
      }
      output.push_back(std::move(row));
    }
    return output;
  }

  Rows ExecuteGroupJoin(const PhysicalOp& op) {
    Rows build = Execute(*op.child(0));
    Rows probe = Execute(*op.child(1));
    // One group per build row (build keys assumed unique, as in the compiled engine).
    std::unordered_map<Row, size_t, KeyHash> index;
    std::vector<std::vector<AggState>> states;
    for (const Row& row : build) {
      Row key;
      for (int slot : op.build_keys) {
        key.push_back(row[static_cast<size_t>(slot)]);
      }
      DFP_CHECK(index.emplace(key, states.size()).second);
      states.emplace_back(op.exprs.size());
    }
    for (const Row& row : probe) {
      Row key;
      for (int slot : op.probe_keys) {
        key.push_back(row[static_cast<size_t>(slot)]);
      }
      auto it = index.find(key);
      if (it == index.end()) {
        continue;
      }
      for (size_t a = 0; a < op.exprs.size(); ++a) {
        UpdateAgg(*op.exprs[a], states[it->second][a], row);
      }
    }
    Rows output;
    output.reserve(build.size());
    for (size_t g = 0; g < build.size(); ++g) {
      Row row;
      for (int slot : op.build_payload) {
        row.push_back(build[g][static_cast<size_t>(slot)]);
      }
      for (size_t a = 0; a < op.exprs.size(); ++a) {
        row.push_back(FinalizeAgg(*op.exprs[a], states[g][a]));
      }
      output.push_back(std::move(row));
    }
    return output;
  }

  Rows ExecuteSort(const PhysicalOp& op) {
    Rows rows = Execute(*op.child(0));
    const std::vector<OutputColumn>& schema = op.child(0)->output;
    std::stable_sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
      for (const SortItem& item : op.sort_items) {
        const size_t slot = static_cast<size_t>(item.slot);
        const ColumnType type = schema[slot].type;
        int cmp = 0;
        if (type == ColumnType::kDouble) {
          double lhs = std::bit_cast<double>(a[slot]);
          double rhs = std::bit_cast<double>(b[slot]);
          cmp = lhs < rhs ? -1 : (lhs > rhs ? 1 : 0);
        } else if (type == ColumnType::kString) {
          auto lhs = db_.strings().Get(static_cast<uint64_t>(a[slot]));
          auto rhs = db_.strings().Get(static_cast<uint64_t>(b[slot]));
          int raw = lhs.compare(rhs);
          cmp = raw < 0 ? -1 : (raw > 0 ? 1 : 0);
        } else {
          cmp = a[slot] < b[slot] ? -1 : (a[slot] > b[slot] ? 1 : 0);
        }
        if (cmp != 0) {
          return item.descending ? cmp > 0 : cmp < 0;
        }
      }
      return false;
    });
    if (op.limit >= 0 && rows.size() > static_cast<size_t>(op.limit)) {
      rows.resize(static_cast<size_t>(op.limit));
    }
    return rows;
  }

  Database& db_;
  EvalContext ctx_;
};

}  // namespace

Result InterpretPlan(Database& db, const PhysicalOp& root) {
  PlanInterpreter interpreter(db);
  Rows rows = interpreter.Execute(root);
  return Result(root.output, std::move(rows));
}

}  // namespace dfp
