// Tuple-at-a-time reference executor for physical plans.
//
// Runs entirely host-side (no cost model, no VCPU) and is the correctness oracle for the
// compiling engine: every query in the test suite is executed by both and the results compared.
// Aggregation and expression semantics replicate the generated code exactly (see
// src/plan/eval.h), including NaN averages for empty groupjoin groups.
#ifndef DFP_SRC_INTERP_INTERPRETER_H_
#define DFP_SRC_INTERP_INTERPRETER_H_

#include "src/engine/database.h"
#include "src/engine/result.h"
#include "src/plan/physical.h"

namespace dfp {

Result InterpretPlan(Database& db, const PhysicalOp& root);

}  // namespace dfp

#endif  // DFP_SRC_INTERP_INTERPRETER_H_
